#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace charles {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

// Relaxed ordering: the threshold is an independent knob — no other memory
// is published through it, so readers only need atomicity, not ordering.
void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}
LogLevel GetLogThreshold() {
  return g_threshold.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace charles
