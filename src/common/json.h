#ifndef CHARLES_COMMON_JSON_H_
#define CHARLES_COMMON_JSON_H_

/// \file
/// \brief A small reflection-free JSON writer.
///
/// The engine emits machine-readable diagnostics (SummaryList::ToJson,
/// metrics snapshots, Chrome trace exports, bench artifacts) and every one
/// of those call sites used to hand-roll printf escaping. JsonWriter owns
/// the three things printf gets wrong: string escaping (control characters,
/// quotes, backslashes), comma placement (a state stack tracks whether the
/// current container already has a member), and doubles (shortest
/// round-trippable form via %.17g; NaN/Inf become null because JSON has no
/// spelling for them). It writes into one growing std::string — no
/// intermediate DOM, no allocations beyond the output buffer.
///
/// Usage:
/// \code
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name").String("p99");
///   w.Key("buckets").BeginArray().Int(1).Int(2).EndArray();
///   w.EndObject();
///   std::string out = w.str();
/// \endcode
///
/// Misuse (a value where a key is required, EndObject inside an array, ...)
/// fails a CHARLES_CHECK — the writer is for trusted in-process producers,
/// not a general serialization framework.

#include <cstdint>
#include <string>
#include <vector>

namespace charles {

/// Streaming JSON emitter with automatic comma/keying discipline.
class JsonWriter {
 public:
  JsonWriter() = default;

  /// Opens a JSON object (`{`). Valid at the root, as an array element, or
  /// after Key() inside an object.
  JsonWriter& BeginObject();
  /// Closes the innermost object (`}`).
  JsonWriter& EndObject();
  /// Opens a JSON array (`[`).
  JsonWriter& BeginArray();
  /// Closes the innermost array (`]`).
  JsonWriter& EndArray();

  /// Emits an object key. Must be directly inside an object, and must be
  /// followed by exactly one value (scalar or container).
  JsonWriter& Key(const std::string& name);

  /// Emits a string value with full escaping.
  JsonWriter& String(const std::string& value);
  /// Emits a signed integer value.
  JsonWriter& Int(int64_t value);
  /// Emits an unsigned integer value (run ids and span ids are uint64).
  JsonWriter& Uint(uint64_t value);
  /// Emits a double. Finite values use %.17g (round-trippable); NaN and
  /// infinities are emitted as null.
  JsonWriter& Double(double value);
  /// Emits true/false.
  JsonWriter& Bool(bool value);
  /// Emits null.
  JsonWriter& Null();

  /// The document so far. Call after the root container is closed.
  const std::string& str() const { return out_; }

  /// Appends `raw` escaped (with surrounding quotes) to `*out` — the single
  /// escaping routine, exposed for producers that build JSON fragments
  /// outside the writer (bench fprintf paths).
  static void AppendEscaped(const std::string& raw, std::string* out);

 private:
  // One frame per open container: 'O' = object (expects key or '}'),
  // 'A' = array. `counts_` tracks members emitted so far for commas.
  void BeforeValue();
  void Append(const char* text);

  std::string out_;
  std::vector<char> stack_;
  std::vector<int64_t> counts_;
  bool pending_key_ = false;
  int64_t root_values_ = 0;
};

}  // namespace charles

#endif  // CHARLES_COMMON_JSON_H_
