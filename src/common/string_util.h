#ifndef CHARLES_COMMON_STRING_UTIL_H_
#define CHARLES_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace charles {

/// Splits `input` on `delimiter`; an empty input yields one empty piece.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces, std::string_view separator);

/// Strips ASCII whitespace from both ends.
std::string_view TrimView(std::string_view input);
std::string Trim(std::string_view input);

std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

bool StartsWith(std::string_view input, std::string_view prefix);
bool EndsWith(std::string_view input, std::string_view suffix);

/// Case-insensitive equality for ASCII strings.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict full-string parses; nullopt on any trailing garbage or overflow.
std::optional<int64_t> ParseInt64(std::string_view input);
std::optional<double> ParseDouble(std::string_view input);
std::optional<bool> ParseBool(std::string_view input);

/// Formats a double compactly: integral values without a decimal point,
/// otherwise up to `max_decimals` digits with trailing zeros trimmed.
std::string FormatDouble(double value, int max_decimals = 6);

/// Pads/truncates to a fixed width (left-aligned). Used by table printers.
std::string PadRight(std::string_view input, size_t width);
std::string PadLeft(std::string_view input, size_t width);

}  // namespace charles

#endif  // CHARLES_COMMON_STRING_UTIL_H_
