#ifndef CHARLES_COMMON_RESULT_H_
#define CHARLES_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace charles {

/// \brief Either a value of type T or a non-OK Status explaining its absence.
///
/// The value-or-error vocabulary type of the library (Arrow's Result /
/// absl::StatusOr shape). Typical consumption:
///
/// \code
///   CHARLES_ASSIGN_OR_RETURN(Table table, CsvReader::ReadFile(path));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  /// Passing an OK status is a programmer error and turns into kInternal.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    if (std::get<Status>(storage_).ok()) {
      storage_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The error status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  /// \name Value accessors. CHECK-fail when no value is held.
  /// @{
  const T& ValueOrDie() const& {
    CHARLES_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    CHARLES_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(storage_);
  }
  T ValueOrDie() && {
    CHARLES_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(storage_));
  }
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  /// @}

  /// Moves the value out without checking; only for macro internals that have
  /// already verified ok().
  T ValueUnsafe() && { return std::move(std::get<T>(storage_)); }

  /// Returns the value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(storage_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> storage_;
};

}  // namespace charles

#endif  // CHARLES_COMMON_RESULT_H_
