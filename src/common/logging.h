#ifndef CHARLES_COMMON_LOGGING_H_
#define CHARLES_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace charles {

/// Severity of a log message; kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Stream-backed single-message logger; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage in CHARLES_VLOG's conditional. operator& binds
/// looser than operator<<, so the whole << chain evaluates (or is skipped)
/// as one expression of type void on both branches of ?: .
struct LogVoidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal

/// Messages below this level are suppressed (default kInfo). The threshold
/// lives in one std::atomic — workers and pool threads adjust and read it
/// concurrently without a data race.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace charles

#define CHARLES_LOG(level)                                                 \
  ::charles::internal::LogMessage(::charles::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// True when a CHARLES_LOG(level) message would actually be emitted.
#define CHARLES_LOG_IS_ON(level) \
  (::charles::LogLevel::k##level >= ::charles::GetLogThreshold())

/// Like CHARLES_LOG but checks the threshold *before* constructing the
/// message, so suppressed statements skip the ostringstream and every
/// argument's formatting entirely — safe on hot paths (per-task worker
/// logging). Fatal messages always emit via CHARLES_LOG/CHECK; do not
/// route them through CHARLES_VLOG.
#define CHARLES_VLOG(level)          \
  !CHARLES_LOG_IS_ON(level)          \
      ? (void)0                      \
      : ::charles::internal::LogVoidify() & CHARLES_LOG(level)

/// CHECK macros guard against programmer errors (never data errors — those
/// get a Status). Failing a CHECK logs and aborts.
#define CHARLES_CHECK(condition)       \
  if (!(condition))                    \
  CHARLES_LOG(Fatal) << "Check failed: " #condition " "

#define CHARLES_CHECK_OK(status_expr)                     \
  do {                                                    \
    ::charles::Status _charles_check_s_ = (status_expr);  \
    CHARLES_CHECK(_charles_check_s_.ok())                 \
        << "status = " << _charles_check_s_.ToString();   \
  } while (false)

#define CHARLES_CHECK_EQ(a, b) CHARLES_CHECK((a) == (b))
#define CHARLES_CHECK_NE(a, b) CHARLES_CHECK((a) != (b))
#define CHARLES_CHECK_LT(a, b) CHARLES_CHECK((a) < (b))
#define CHARLES_CHECK_LE(a, b) CHARLES_CHECK((a) <= (b))
#define CHARLES_CHECK_GT(a, b) CHARLES_CHECK((a) > (b))
#define CHARLES_CHECK_GE(a, b) CHARLES_CHECK((a) >= (b))

#ifdef NDEBUG
#define CHARLES_DCHECK(condition) \
  if (false) CHARLES_LOG(Fatal)
#else
#define CHARLES_DCHECK(condition) CHARLES_CHECK(condition)
#endif

#endif  // CHARLES_COMMON_LOGGING_H_
