#ifndef CHARLES_COMMON_LOGGING_H_
#define CHARLES_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace charles {

/// Severity of a log message; kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Stream-backed single-message logger; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Messages below this level are suppressed (default kInfo).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace charles

#define CHARLES_LOG(level)                                                 \
  ::charles::internal::LogMessage(::charles::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// CHECK macros guard against programmer errors (never data errors — those
/// get a Status). Failing a CHECK logs and aborts.
#define CHARLES_CHECK(condition)       \
  if (!(condition))                    \
  CHARLES_LOG(Fatal) << "Check failed: " #condition " "

#define CHARLES_CHECK_OK(status_expr)                     \
  do {                                                    \
    ::charles::Status _charles_check_s_ = (status_expr);  \
    CHARLES_CHECK(_charles_check_s_.ok())                 \
        << "status = " << _charles_check_s_.ToString();   \
  } while (false)

#define CHARLES_CHECK_EQ(a, b) CHARLES_CHECK((a) == (b))
#define CHARLES_CHECK_NE(a, b) CHARLES_CHECK((a) != (b))
#define CHARLES_CHECK_LT(a, b) CHARLES_CHECK((a) < (b))
#define CHARLES_CHECK_LE(a, b) CHARLES_CHECK((a) <= (b))
#define CHARLES_CHECK_GT(a, b) CHARLES_CHECK((a) > (b))
#define CHARLES_CHECK_GE(a, b) CHARLES_CHECK((a) >= (b))

#ifdef NDEBUG
#define CHARLES_DCHECK(condition) \
  if (false) CHARLES_LOG(Fatal)
#else
#define CHARLES_DCHECK(condition) CHARLES_CHECK(condition)
#endif

#endif  // CHARLES_COMMON_LOGGING_H_
