#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace charles {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view TrimView(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

std::string Trim(std::string_view input) { return std::string(TrimView(input)); }

std::string ToLower(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() && input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<int64_t> ParseInt64(std::string_view input) {
  input = TrimView(input);
  if (input.empty()) return std::nullopt;
  int64_t value = 0;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view input) {
  input = TrimView(input);
  if (input.empty()) return std::nullopt;
  // std::from_chars for double is unreliable across stdlibs; use strtod with a
  // NUL-terminated copy.
  std::string buf(input);
  errno = 0;
  char* endptr = nullptr;
  double value = std::strtod(buf.c_str(), &endptr);
  if (errno == ERANGE || endptr != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<bool> ParseBool(std::string_view input) {
  input = TrimView(input);
  if (EqualsIgnoreCase(input, "true") || input == "1") return true;
  if (EqualsIgnoreCase(input, "false") || input == "0") return false;
  return std::nullopt;
}

std::string FormatDouble(double value, int max_decimals) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  double rounded = std::round(value);
  if (std::abs(value - rounded) < 1e-9 && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", rounded);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string out(buf);
  // Trim trailing zeros but keep at least one decimal digit.
  size_t dot = out.find('.');
  if (dot != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    out.erase(last + 1);
  }
  return out;
}

std::string PadRight(std::string_view input, size_t width) {
  std::string out(input.substr(0, std::max(width, input.size())));
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string PadLeft(std::string_view input, size_t width) {
  std::string out;
  if (input.size() < width) out.append(width - input.size(), ' ');
  out += input;
  return out;
}

}  // namespace charles
