#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace charles {

void JsonWriter::AppendEscaped(const std::string& raw, std::string* out) {
  out->push_back('"');
  for (char c : raw) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    CHARLES_CHECK_EQ(root_values_, 0) << "JsonWriter: multiple root values";
    ++root_values_;
    return;
  }
  if (stack_.back() == 'O') {
    CHARLES_CHECK(pending_key_)
        << "JsonWriter: value inside an object requires Key() first";
    pending_key_ = false;
    return;
  }
  if (counts_.back() > 0) out_.push_back(',');
  ++counts_.back();
}

void JsonWriter::Append(const char* text) { out_ += text; }

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back('O');
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CHARLES_CHECK(!stack_.empty() && stack_.back() == 'O')
      << "JsonWriter: EndObject with no open object";
  CHARLES_CHECK(!pending_key_) << "JsonWriter: EndObject after dangling Key()";
  out_.push_back('}');
  stack_.pop_back();
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back('A');
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CHARLES_CHECK(!stack_.empty() && stack_.back() == 'A')
      << "JsonWriter: EndArray with no open array";
  out_.push_back(']');
  stack_.pop_back();
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  CHARLES_CHECK(!stack_.empty() && stack_.back() == 'O')
      << "JsonWriter: Key() outside an object";
  CHARLES_CHECK(!pending_key_) << "JsonWriter: two Key() calls in a row";
  if (counts_.back() > 0) out_.push_back(',');
  ++counts_.back();
  AppendEscaped(name, &out_);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(value, &out_);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  Append(buf);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  Append(buf);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    Append("null");
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  Append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  Append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  Append("null");
  return *this;
}

}  // namespace charles
