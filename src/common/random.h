#ifndef CHARLES_COMMON_RANDOM_H_
#define CHARLES_COMMON_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace charles {

/// \brief Deterministic random source used by every stochastic component.
///
/// Wraps std::mt19937_64 behind named distributions so that seeds flow
/// explicitly: identical seeds produce identical pipelines end-to-end, on any
/// platform with the same standard library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CHARLES_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean/stddev.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    CHARLES_CHECK(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Index drawn from an unnormalized non-negative weight vector.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// A derived seed, for fanning out independent child Rngs.
  uint64_t NextSeed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace charles

#endif  // CHARLES_COMMON_RANDOM_H_
