#ifndef CHARLES_COMMON_STATUS_H_
#define CHARLES_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace charles {

/// \brief Machine-readable category of a Status.
///
/// Mirrors the Arrow/RocksDB convention: a small closed set of categories, a
/// free-form human-readable message alongside.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kIOError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kResourceExhausted,
  kUnknown,
};

/// \brief Returns the canonical name of a StatusCode ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a payload.
///
/// ChARLES never throws across library boundaries: every fallible public API
/// returns a Status (or a Result<T>, see result.h). Statuses are cheap to
/// copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Named constructors, one per category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  /// @}

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

  /// Prepends context to the message, keeping the code. No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  /// Aborts the process with the status message if not OK. For use in tests
  /// and main()s, never in library code.
  void AbortIfNotOk() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace charles

/// Evaluates an expression returning Status; propagates it on failure.
#define CHARLES_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::charles::Status _charles_status_ = (expr);   \
    if (!_charles_status_.ok()) return _charles_status_; \
  } while (false)

#define CHARLES_CONCAT_IMPL(x, y) x##y
#define CHARLES_CONCAT(x, y) CHARLES_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs` (which may include a declaration), on failure propagates the status.
#define CHARLES_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  CHARLES_ASSIGN_OR_RETURN_IMPL(                                  \
      CHARLES_CONCAT(_charles_result_, __COUNTER__), lhs, rexpr)

#define CHARLES_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto&& result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).ValueUnsafe()

#endif  // CHARLES_COMMON_STATUS_H_
