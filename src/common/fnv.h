#ifndef CHARLES_COMMON_FNV_H_
#define CHARLES_COMMON_FNV_H_

/// \file
/// \brief FNV-1a hashing primitives, shared by the leaf-fit cache keys and
/// the engine's run fingerprint so the algorithm and constants live in one
/// place.

#include <cstddef>
#include <cstdint>

namespace charles {

/// FNV-1a 64-bit offset basis.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
/// FNV-1a 64-bit prime.
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/// Folds `len` raw bytes into the running FNV-1a hash `h`.
inline uint64_t FnvMixBytes(uint64_t h, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

}  // namespace charles

#endif  // CHARLES_COMMON_FNV_H_
