#include "common/random.h"

#include <numeric>

namespace charles {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CHARLES_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  CHARLES_CHECK(total > 0.0) << "WeightedIndex requires a positive total weight";
  double ticket = Uniform(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (ticket < cumulative) return i;
  }
  return weights.size() - 1;
}

}  // namespace charles
