#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace charles {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnknown:
      return "Unknown error";
  }
  return "Bad status code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

void Status::AbortIfNotOk() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace charles
