#include "common/combinatorics.h"

#include <limits>

#include "common/logging.h"

namespace charles {

namespace {

void EnumerateOfSize(int n, int k, std::vector<std::vector<int>>* out) {
  std::vector<int> current(k);
  for (int i = 0; i < k; ++i) current[i] = i;
  while (true) {
    out->push_back(current);
    // Advance to the next k-combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && current[i] == n - k + i) --i;
    if (i < 0) break;
    ++current[i];
    for (int j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;
  }
}

}  // namespace

std::vector<std::vector<int>> EnumerateSubsets(int n, int max_size) {
  CHARLES_CHECK_GE(n, 0);
  std::vector<std::vector<int>> out;
  if (n == 0 || max_size <= 0) return out;
  int limit = std::min(n, max_size);
  for (int k = 1; k <= limit; ++k) EnumerateOfSize(n, k, &out);
  return out;
}

int64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, guarding against overflow.
    if (result > std::numeric_limits<int64_t>::max() / (n - k + i)) {
      return std::numeric_limits<int64_t>::max();
    }
    result = result * (n - k + i) / i;
  }
  return result;
}

int64_t CountSubsets(int n, int max_size) {
  int64_t total = 0;
  int limit = std::min(n, max_size);
  for (int k = 1; k <= limit; ++k) {
    int64_t c = BinomialCoefficient(n, k);
    if (total > std::numeric_limits<int64_t>::max() - c) {
      return std::numeric_limits<int64_t>::max();
    }
    total += c;
  }
  return total;
}

}  // namespace charles
