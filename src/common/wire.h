#ifndef CHARLES_COMMON_WIRE_H_
#define CHARLES_COMMON_WIRE_H_

/// \file
/// \brief Raw-bytes framing primitives shared by the wire serializers
/// (SufficientStats, ErrorPartials, ShardTask, ShardTaskResult).
///
/// The formats built on these are same-architecture pipe/socket protocols:
/// scalars are copied bit-for-bit in native byte order, which is what makes
/// a double survive a round trip exactly — the property the distributed
/// merge's bit-identity rests on.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace charles {
namespace wire {

/// Appends `size` raw bytes to `out`.
inline void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

/// Bounds-checked read of `size` bytes into `data`, advancing `*cursor`.
/// Returns false (cursor unchanged) when fewer than `size` bytes remain.
inline bool ReadRaw(const unsigned char** cursor, const unsigned char* end,
                    void* data, size_t size) {
  if (static_cast<size_t>(end - *cursor) < size) return false;
  std::memcpy(data, *cursor, size);
  *cursor += size;
  return true;
}

/// Appends one trivially copyable scalar bit-for-bit.
template <typename T>
inline void AppendScalar(std::string* out, const T& value) {
  AppendRaw(out, &value, sizeof(T));
}

/// Bounds-checked scalar read; false (cursor unchanged) on underrun.
template <typename T>
inline bool ReadScalar(const unsigned char** cursor, const unsigned char* end,
                       T* value) {
  return ReadRaw(cursor, end, value, sizeof(T));
}

/// Appends a scalar vector as `count | elements`.
template <typename T>
inline void AppendVector(std::string* out, const std::vector<T>& values) {
  int64_t count = static_cast<int64_t>(values.size());
  AppendScalar(out, count);
  if (count > 0) AppendRaw(out, values.data(), values.size() * sizeof(T));
}

/// Reads a `count | elements` scalar vector. The count is validated against
/// the bytes actually present *before* any allocation, so a corrupt or
/// hostile length field fails with `false` instead of a giant reserve().
template <typename T>
inline bool ReadVector(const unsigned char** cursor, const unsigned char* end,
                       std::vector<T>* values) {
  int64_t count = 0;
  if (!ReadScalar(cursor, end, &count) || count < 0 ||
      count > static_cast<int64_t>((end - *cursor) / sizeof(T))) {
    return false;
  }
  values->resize(static_cast<size_t>(count));
  return count == 0 ||
         ReadRaw(cursor, end, values->data(), values->size() * sizeof(T));
}

}  // namespace wire
}  // namespace charles

#endif  // CHARLES_COMMON_WIRE_H_
