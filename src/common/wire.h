#ifndef CHARLES_COMMON_WIRE_H_
#define CHARLES_COMMON_WIRE_H_

/// \file
/// \brief Raw-bytes framing primitives shared by the wire serializers
/// (SufficientStats, ShardResult).
///
/// The formats built on these are same-architecture pipe/socket protocols:
/// scalars are copied bit-for-bit in native byte order, which is what makes
/// a double survive a round trip exactly — the property the distributed
/// merge's bit-identity rests on.

#include <cstring>
#include <string>

namespace charles {
namespace wire {

/// Appends `size` raw bytes to `out`.
inline void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

/// Bounds-checked read of `size` bytes into `data`, advancing `*cursor`.
/// Returns false (cursor unchanged) when fewer than `size` bytes remain.
inline bool ReadRaw(const unsigned char** cursor, const unsigned char* end,
                    void* data, size_t size) {
  if (static_cast<size_t>(end - *cursor) < size) return false;
  std::memcpy(data, *cursor, size);
  *cursor += size;
  return true;
}

}  // namespace wire
}  // namespace charles

#endif  // CHARLES_COMMON_WIRE_H_
