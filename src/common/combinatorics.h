#ifndef CHARLES_COMMON_COMBINATORICS_H_
#define CHARLES_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace charles {

/// \brief Enumerates every subset of {0, .., n-1} with 1 <= |subset| <= max_size.
///
/// Subsets are emitted in increasing cardinality, then lexicographic order,
/// so callers that truncate still see all small (more interpretable) subsets
/// first. This drives the ChARLES (C, T) candidate enumeration.
std::vector<std::vector<int>> EnumerateSubsets(int n, int max_size);

/// Number of subsets EnumerateSubsets(n, max_size) yields: sum_{k=1..m} C(n,k).
int64_t CountSubsets(int n, int max_size);

/// Binomial coefficient C(n, k); saturates at INT64_MAX on overflow.
int64_t BinomialCoefficient(int n, int k);

}  // namespace charles

#endif  // CHARLES_COMMON_COMBINATORICS_H_
