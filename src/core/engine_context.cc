#include "core/engine_context.h"

namespace charles {

EngineContext::EngineContext(EngineContextOptions options) {
  num_threads_ = options.num_threads > 0 ? options.num_threads
                                         : ThreadPool::HardwareConcurrency();
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  int shards = options.cache_shards > 0 ? options.cache_shards : num_threads_ * 4;
  leaf_cache_ = std::make_unique<SharedLeafFitCache>(shards);
}

}  // namespace charles
