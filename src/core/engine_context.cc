#include "core/engine_context.h"

namespace charles {

EngineContext::EngineContext(EngineContextOptions options) {
  num_threads_ = options.num_threads > 0 ? options.num_threads
                                         : ThreadPool::HardwareConcurrency();
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  int shards = options.cache_shards > 0 ? options.cache_shards : num_threads_ * 4;
  size_t max_entries = options.max_cache_entries > 0
                           ? static_cast<size_t>(options.max_cache_entries)
                           : 0;
  // A bounded cache never gets more shards than entries: the per-shard
  // budget floors at one, so extra shards would silently raise the bound.
  if (max_entries > 0 && static_cast<size_t>(shards) > max_entries) {
    shards = static_cast<int>(max_entries);
  }
  leaf_cache_ = std::make_unique<SharedLeafFitCache>(shards, max_entries);
}

}  // namespace charles
