#include "core/engine_context.h"

#include <chrono>

#include "obs/metrics.h"

namespace charles {

namespace {

/// Admission / concurrency metrics. Static-local cached pointers: one
/// registry lookup per process, relaxed atomics per event.
obs::Counter* AdmittedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().counter("engine.runs_admitted");
  return counter;
}

obs::Counter* QueuedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().counter("engine.runs_queued");
  return counter;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().counter("engine.runs_rejected");
  return counter;
}

obs::Gauge* ActiveRunsGauge() {
  static obs::Gauge* const gauge =
      obs::MetricsRegistry::Global().gauge("engine.active_runs");
  return gauge;
}

}  // namespace

EngineContext::EngineContext(EngineContextOptions options) {
  num_threads_ = options.num_threads > 0 ? options.num_threads
                                         : ThreadPool::HardwareConcurrency();
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  int shards = options.cache_shards > 0 ? options.cache_shards : num_threads_ * 4;
  size_t max_entries = options.max_cache_entries > 0
                           ? static_cast<size_t>(options.max_cache_entries)
                           : 0;
  // A bounded cache never gets more shards than entries: the per-shard
  // budget floors at one, so extra shards would silently raise the bound.
  if (max_entries > 0 && static_cast<size_t>(shards) > max_entries) {
    shards = static_cast<int>(max_entries);
  }
  leaf_cache_ = std::make_unique<SharedLeafFitCache>(shards, max_entries);
  max_concurrent_runs_ = options.max_concurrent_runs > 0 ? options.max_concurrent_runs : 0;
  admission_ = options.admission;
}

Result<EngineContext::RunSlot> EngineContext::AdmitRun(const StopToken* stop) {
  if (stop != nullptr && stop->stop_requested()) {
    return Status::Cancelled("run cancelled before admission");
  }
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (max_concurrent_runs_ > 0 && active_runs_ >= max_concurrent_runs_) {
    if (admission_ == AdmissionPolicy::kReject) {
      runs_rejected_.fetch_add(1, std::memory_order_relaxed);
      RejectedCounter()->Increment();
      return Status::ResourceExhausted(
          "EngineContext: " + std::to_string(active_runs_) + " of " +
          std::to_string(max_concurrent_runs_) +
          " concurrent runs active (admission policy: reject)");
    }
    runs_queued_.fetch_add(1, std::memory_order_relaxed);
    QueuedCounter()->Increment();
    if (stop == nullptr) {
      admission_cv_.wait(lock,
                         [this] { return active_runs_ < max_concurrent_runs_; });
    } else {
      // A StopToken has no notification channel into this condition
      // variable, so the queued wait polls it at a coarse tick — cheap
      // against run lengths, prompt against human timeouts.
      while (!admission_cv_.wait_for(
          lock, std::chrono::milliseconds(20),
          [this] { return active_runs_ < max_concurrent_runs_; })) {
        if (stop->stop_requested()) {
          return Status::Cancelled("run cancelled while queued for admission");
        }
      }
    }
  }
  ++active_runs_;
  AdmittedCounter()->Increment();
  ActiveRunsGauge()->Set(active_runs_);
  return RunSlot(this);
}

void EngineContext::FinishRun() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --active_runs_;
    ActiveRunsGauge()->Set(active_runs_);
  }
  admission_cv_.notify_one();
}

int EngineContext::active_runs() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return active_runs_;
}

}  // namespace charles
