#ifndef CHARLES_CORE_EXPLAIN_H_
#define CHARLES_CORE_EXPLAIN_H_

#include <string>

#include "core/summary.h"

namespace charles {

/// \brief Options for ExplainSummary.
struct ExplainOptions {
  /// Noun used for rows ("employees", "billionaires", "rows").
  std::string entity_noun = "rows";
  /// Include the score line at the end.
  bool include_scores = true;
};

/// \brief Renders a change summary as English prose, one sentence per CT —
/// the phrasing the paper's introduction uses ("Employees who have a PhD
/// receive a 5% increase on last year's bonus, plus flat $1000").
///
/// Transformation phrasing is derived from the rule's shape:
///  - a·old_target + b, a > 1: "increased by (a−1)% (plus b)"
///  - a·old_target + b, a < 1: "decreased by (1−a)% (...)"
///  - old_target + b:          "increased/decreased by a flat b"
///  - constant:                "set to b"
///  - anything else:           "recomputed as <equation>"
///  - no change:               "kept their previous <target>"
std::string ExplainSummary(const ChangeSummary& summary,
                           const ExplainOptions& options = {});

/// One CT as a sentence (without the coverage prefix).
std::string ExplainTransform(const LinearTransform& transform);

}  // namespace charles

#endif  // CHARLES_CORE_EXPLAIN_H_
