#include "core/summary.h"

#include <algorithm>

#include "common/string_util.h"

namespace charles {

std::string ConditionalTransform::ToString() const {
  return condition->ToString() + "  →  " + transform.ToString();
}

Result<std::vector<double>> ChangeSummary::Apply(const Table& source) const {
  CHARLES_ASSIGN_OR_RETURN(const Column* target_col,
                           source.ColumnByName(target_attribute_));
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> predicted, target_col->ToDoubles());
  std::vector<bool> claimed(static_cast<size_t>(source.num_rows()), false);
  for (const ConditionalTransform& ct : cts_) {
    CHARLES_ASSIGN_OR_RETURN(RowSet matched, FilterRows(source, *ct.condition));
    // First matching CT wins on overlap.
    std::vector<int64_t> fresh;
    for (int64_t row : matched) {
      if (!claimed[static_cast<size_t>(row)]) {
        fresh.push_back(row);
        claimed[static_cast<size_t>(row)] = true;
      }
    }
    RowSet rows(std::move(fresh));
    if (rows.empty()) continue;
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values, ct.transform.Apply(source, rows));
    for (int64_t i = 0; i < rows.size(); ++i) {
      predicted[static_cast<size_t>(rows[i])] = values[static_cast<size_t>(i)];
    }
  }
  return predicted;
}

std::string ChangeSummary::Signature() const {
  std::vector<std::string> parts;
  parts.reserve(cts_.size());
  for (const ConditionalTransform& ct : cts_) parts.push_back(ct.ToString());
  std::sort(parts.begin(), parts.end());
  return Join(parts, " ;; ");
}

std::string ChangeSummary::ToString() const {
  std::string out;
  for (size_t i = 0; i < cts_.size(); ++i) {
    out += "  CT" + std::to_string(i + 1) + ": " + cts_[i].ToString() + "   [" +
           FormatDouble(cts_[i].coverage * 100.0, 1) + "% coverage]\n";
  }
  out += "  score=" + FormatDouble(scores_.score, 4) +
         " (accuracy=" + FormatDouble(scores_.accuracy, 4) +
         ", interpretability=" + FormatDouble(scores_.interpretability, 4) + ")\n";
  return out;
}

}  // namespace charles
