#ifndef CHARLES_CORE_CHARLES_H_
#define CHARLES_CORE_CHARLES_H_

/// \file
/// \brief The ChARLES public facade.
///
/// ChARLES (Change-Aware Recovery of Latent Evolution Semantics) derives
/// ranked, human-interpretable summaries of how a relational snapshot evolved
/// into another. Minimal usage:
///
/// \code
///   #include "core/charles.h"
///
///   charles::CharlesOptions options;
///   options.target_attribute = "bonus";
///   options.key_columns = {"name"};
///   CHARLES_ASSIGN_OR_RETURN(charles::SummaryList result,
///                            charles::SummarizeChanges(snapshot_2016,
///                                                      snapshot_2017, options));
///   std::cout << result.summaries[0].ToString();
///   std::cout << result.summaries[0].tree()->Render();   // Figure-2 view
/// \endcode

#include "core/engine.h"           // IWYU pragma: export
#include "core/engine_context.h"   // IWYU pragma: export
#include "core/explain.h"          // IWYU pragma: export
#include "core/feature_augment.h"  // IWYU pragma: export
#include "core/model_tree.h"       // IWYU pragma: export
#include "core/multi_target.h"     // IWYU pragma: export
#include "core/normality.h"        // IWYU pragma: export
#include "core/options.h"          // IWYU pragma: export
#include "core/partition_finder.h" // IWYU pragma: export
#include "core/scoring.h"          // IWYU pragma: export
#include "core/setup_assistant.h"  // IWYU pragma: export
#include "core/sql_gen.h"          // IWYU pragma: export
#include "core/stop_token.h"       // IWYU pragma: export
#include "core/summary.h"          // IWYU pragma: export
#include "core/transform.h"        // IWYU pragma: export
#include "csv/csv_reader.h"        // IWYU pragma: export
#include "csv/csv_writer.h"        // IWYU pragma: export
#include "diff/diff.h"             // IWYU pragma: export
#include "expr/parser.h"           // IWYU pragma: export
#include "table/table_builder.h"   // IWYU pragma: export

#endif  // CHARLES_CORE_CHARLES_H_
