#ifndef CHARLES_CORE_OPTIONS_H_
#define CHARLES_CORE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace charles {

/// \brief Weights of the interpretability sub-scores.
///
/// Interpretability(S) = Σ weight_i · subscore_i with Σ weight_i = 1
/// (normalized at use). The five sub-scores mirror the paper's §2
/// desiderata: smaller summaries, simpler conditions, simpler
/// transformations, higher coverage, higher normality.
struct ScoreWeights {
  double summary_size = 0.25;
  double condition_simplicity = 0.20;
  double transform_simplicity = 0.20;
  double coverage = 0.20;
  double normality = 0.15;
};

/// \brief Options for normality snapping of transformation constants.
struct NormalityOptions {
  /// Snap fitted coefficients to "nice" values when the accuracy guard
  /// allows (the paper prefers "5%" over "2.479%").
  bool enable_snapping = true;
  /// A snapped coefficient may move by at most this relative amount.
  double max_relative_coefficient_shift = 0.05;
  /// Snapping is reverted if the partition's mean absolute error grows by
  /// more than this fraction of the mean absolute target value.
  double max_relative_accuracy_loss = 0.01;
  /// A model fitting its partition within this MAE is "exact"; snapping may
  /// never push an exact model above this threshold (a nicer constant is not
  /// worth breaking a perfect rule). The engine sets this from
  /// CharlesOptions::numeric_tolerance.
  double exactness_tolerance = 1e-6;
};

/// \brief Which executor runs distributed shard work (see docs/distributed.md).
enum class ShardBackendKind {
  /// Shards execute on the run's own thread pool (the EngineContext pool
  /// when attached) — zero serialization, the default.
  kInProcess,
  /// Each shard executes in a forked worker process and ships its result
  /// back over a pipe — the wire-format-proving backend, and the template
  /// for future multi-box dispatch.
  kSubprocess,
  /// Shards execute on networked charles_worker daemons (remote_workers
  /// lists their addresses). The input ships once per (snapshot, plan);
  /// tasks reuse the subprocess wire formats, so remote output is
  /// bit-identical to in-process output. Workers that die mid-shard are
  /// marked unhealthy and their tasks reassigned.
  kRemote,
};

/// \brief All knobs of the ChARLES pipeline, with the paper's defaults.
///
/// Novices can set only target_attribute and key_columns; every other field
/// has the default the demo uses.
struct CharlesOptions {
  /// The numeric attribute whose evolution is to be explained (paper: aᵢ).
  std::string target_attribute;
  /// Primary-key columns identifying entities across snapshots.
  std::vector<std::string> key_columns;

  /// Maximum condition attributes per summary (paper: c, demo default 3).
  int max_condition_attrs = 3;
  /// Maximum transformation attributes per linear model (paper: t, default 2).
  int max_transform_attrs = 2;
  /// Accuracy weight in Score = α·Accuracy + (1−α)·Interpretability.
  double alpha = 0.5;
  /// Summaries returned (paper: "10 top-scoring summaries").
  int top_n = 10;

  /// Setup assistant: minimum association for auto-selected candidates
  /// (paper: "correlation with the target attribute greater than 0.5").
  double correlation_threshold = 0.5;
  /// Shortlist caps — the candidate pools subsets are enumerated from.
  int max_condition_candidates = 6;
  int max_transform_candidates = 5;
  /// If fewer candidates clear the threshold, the assistant keeps this many
  /// top-ranked ones anyway so the engine always has something to explore.
  /// Four condition slots give weakly-associated-but-essential attributes
  /// (an experience threshold that only matters inside one segment) room to
  /// make the pool on small samples.
  int min_condition_candidates = 4;
  int min_transform_candidates = 2;

  /// Manual overrides; leave empty to let the setup assistant choose.
  std::vector<std::string> condition_attributes;
  std::vector<std::string> transform_attributes;
  /// Always offer the target's previous value as a transformation feature
  /// (bonus_new = f(bonus_old, ...)).
  bool include_old_target_in_transform = true;

  /// Partition discovery: k-means is run for k = 1..max_clusters on the
  /// residuals from the global fit.
  int max_clusters = 6;
  /// Decision-tree depth for condition induction; 0 means "use
  /// max_condition_attrs".
  int tree_max_depth = 0;
  /// Partitions smaller than this are not worth a conditional transformation.
  int64_t min_partition_size = 1;
  /// Cap on distinct partitionings carried into transformation discovery;
  /// when exceeded, partitionings whose conditions describe their clusters
  /// best (highest label agreement, then fewer partitions) are kept. Bounds
  /// the search the paper warns "can explode".
  int max_partitions = 512;

  /// Worker threads for the engine's search phases (clustering, condition
  /// induction, transformation fitting). 0 means "use hardware concurrency";
  /// 1 runs fully serial. Parallel runs produce ranked output identical to
  /// serial runs — the reduction is deterministic and order-independent.
  /// Ignored when the engine is attached to an EngineContext: the context's
  /// long-lived pool (and its thread count) is used instead.
  int num_threads = 0;

  /// Fit leaf transformations from additively accumulated sufficient
  /// statistics (XᵀX, Xᵀy) with a p×p Cholesky solve, falling back to the
  /// row-level Householder QR on ill-conditioned leaves. One scan per leaf
  /// serves every transformation subset, so phase-3 fit cost no longer
  /// scales with rows × subsets. Off = always use the QR-per-leaf path
  /// (the two paths agree to ~1e-9 on well-conditioned data; either way
  /// parallel output stays bit-identical to serial).
  bool use_sufficient_stats = true;

  /// \name Distributed shard execution (docs/distributed.md).
  /// @{
  /// Row-range shards the leaf-statistics sweep is split into. 0 (default)
  /// = no sharding: the engine accumulates leaf moments itself. >= 1 routes
  /// the sweep through the shard Coordinator: the aligned diff is split
  /// into `num_shards` contiguous block-aligned row ranges (clamped to the
  /// block count), each executed by `shard_backend`, and the per-leaf
  /// moments are merged exactly — output is bit-identical to the unsharded
  /// engine at every shard count. Requires use_sufficient_stats.
  int num_shards = 0;
  /// Executor for the shards when num_shards >= 1.
  ShardBackendKind shard_backend = ShardBackendKind::kInProcess;
  /// Block size (rows) of the canonical block-structured moment
  /// accumulation — the determinism unit of distributed execution: shard
  /// boundaries always fall on block boundaries, so per-block partials are
  /// identical under any sharding and their ordered Merge fold yields
  /// bit-identical moments. Smaller blocks allow more shards on small data
  /// but add one Merge per block. Changing it changes results at the
  /// ~1e-12 level (a different, equally valid floating-point evaluation
  /// order), so compare runs only at a fixed block size.
  int64_t stats_block_rows = 4096;
  /// Intra-block compute kernel for the canonical folds
  /// (linalg/kernels/kernel.h): "auto" (default — the vectorized kernel
  /// when the build's ISA is usable on this CPU), "scalar" (the reference
  /// fold), or "simd". Every kernel produces **bit-identical** results —
  /// the vectorized kernel only reorganizes work across independent
  /// accumulators, never within one accumulation chain — so this switches
  /// speed, not output; SummaryList::kernel_used reports what actually ran.
  std::string kernel_backend = "auto";
  /// Batched multi-leaf fold path (linalg/batch_fold.h): "auto" (default —
  /// sweeps that fold two or more leaves/probes over the same rows stage
  /// each canonical block once and fold all accumulators against the staged
  /// buffers), "on" (batch every fold that has a batched form, including
  /// single-accumulator sweeps), or "off" (the per-leaf PR 7 path
  /// everywhere). Like kernel_backend, every mode is **bit-identical** —
  /// staging copies column slices bit-for-bit and replays the same per-block
  /// fold order — so this switches memory traffic, not output.
  /// SummaryList::kernel_used gains a "+batch" suffix when any blocks were
  /// staged; batched_blocks_staged / batched_fold_accumulators /
  /// batch_leaves_per_block_max report how much batching happened.
  std::string batch_fold = "auto";

  /// \name Remote backend (shard_backend = kRemote only).
  /// Worker addresses ("host:port" each) of the charles_worker fleet.
  std::vector<std::string> remote_workers;
  /// Deadline for connecting to (and handshaking with) a worker.
  int remote_connect_timeout_ms = 2'000;
  /// Deadline for one install or task round trip; 0 = no deadline. Scale
  /// with snapshot size.
  int remote_task_timeout_ms = 30'000;
  /// Transport-failure retries per shard task beyond the first attempt;
  /// each retry reassigns the task to another healthy worker.
  int remote_max_task_retries = 2;
  /// Base of the exponential retry backoff (base × 2^attempt, capped).
  int remote_retry_backoff_ms = 50;
  /// Period of the background worker health sweep; <= 0 disables it
  /// (unhealthy workers are then re-probed only when the fleet runs dry).
  int remote_health_check_interval_ms = 0;
  /// @}

  /// Upper bound on entries in the shared leaf-fit cache the run publishes
  /// to: the run-local cross-worker cache, and — when the engine is attached
  /// to an EngineContext — the context's cross-run cache, which is trimmed
  /// to this bound (least-recently-used first) at the end of each run.
  /// 0 = unbounded. Evictions are reported in SummaryList and EngineContext
  /// diagnostics. See also EngineContextOptions::max_cache_entries, which
  /// bounds the context cache at insert time.
  int64_t max_cache_entries = 0;

  /// Record a trace of this run: every pipeline stage, shard dispatch and
  /// merge, and — over the remote wire — worker-side task execution becomes
  /// a span in one TraceRecorder (src/obs/trace.h), exported via
  /// `SummaryList::trace->ToChromeTraceJson()` for about:tracing/Perfetto.
  /// Off (the default) costs nothing: spans are inert, no allocation
  /// happens on hot paths, and no trace context rides the wire. Tracing
  /// observes and never reorders the canonical folds, so enabling it does
  /// not perturb results (docs/observability.md).
  bool trace = false;

  /// Numeric cells differing by at most this are "unchanged".
  double numeric_tolerance = 1e-6;
  /// Tolerate entities present in only one snapshot (they are excluded from
  /// the analysis). Off by default: the paper assumes identical entity sets.
  bool allow_insert_delete = false;
  /// Seed for every stochastic component (k-means restarts).
  uint64_t seed = 42;

  ScoreWeights weights;
  NormalityOptions normality;

  /// Validates ranges (alpha in [0,1], positive caps, non-empty target/keys).
  Status Validate() const;
};

}  // namespace charles

#endif  // CHARLES_CORE_OPTIONS_H_
