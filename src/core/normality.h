#ifndef CHARLES_CORE_NORMALITY_H_
#define CHARLES_CORE_NORMALITY_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "expr/expr.h"
#include "linalg/error_partials.h"
#include "linalg/matrix.h"
#include "ml/linear_regression.h"

namespace charles {

/// \brief How "normal" (human-friendly) a numeric constant is, in [0, 1].
///
/// The paper's examples anchor the scale: 5% (0.05) is more normal than
/// 2.479%, and "Age > 25" more normal than "Age > 23.796". The score decays
/// with the number of significant decimal digits the constant needs:
/// one digit (5, 0.05, 1000) → 1.0; each extra digit costs 0.2, floored at 0.
/// Zero is perfectly normal.
double NumberNormality(double value);

/// \brief The "nicest" value within `tolerance` (relative) of `value`.
///
/// Scans round lattices (1, 2, 2.5, 5 × powers of ten) from coarse to fine
/// and returns the nicest candidate within the allowed shift; returns
/// `value` unchanged when nothing nicer is close enough.
double SnapNumber(double value, double tolerance);

/// All nicer-than-`value` lattice candidates within `tolerance` (relative),
/// ordered nicest-first (ties towards the closer candidate). SnapModel walks
/// this list per constant under its accuracy guard.
std::vector<double> SnapCandidates(double value, double tolerance);

/// \brief Mean normality of a fitted model's non-trivial constants.
///
/// Averages NumberNormality over non-zero coefficients and a non-zero
/// intercept; a bare identity/empty model scores 1.0.
double ModelNormality(const LinearModel& model);

/// \brief Mean normality of the numeric literals in a condition.
///
/// Conditions without numeric literals (pure categorical equalities, TRUE)
/// score 1.0.
double ConditionNormality(const Expr& condition);

/// \brief How SnapModel evaluates its accuracy-guard baseline exactly.
///
/// Without a spec, the baseline MAE is a plain serial Σ|residual| / n — the
/// historical (row-order-dependent) computation of the QR path. With a spec,
/// the baseline comes from the canonical block fold of
/// linalg/error_partials.h instead, which makes the snap guard
/// *decomposition-invariant*: a coordinator that merged the same partials
/// from row-range shards supplies `baseline` and gets the bit-identical
/// guard a central scan would have computed.
struct SnapErrorSpec {
  /// Pre-merged exact L1 partials of `model` on (x, y) — e.g. a distributed
  /// kErrorPartials rollup. When null, SnapModel folds the baseline itself
  /// from `rows`/`block_rows` (bit-identical to the merged form).
  const ErrorPartials* baseline = nullptr;
  /// Ascending global row indices of the partition (size = y.size()) and the
  /// run's canonical block size; both required.
  const std::vector<int64_t>* rows = nullptr;
  int64_t block_rows = 0;

  bool valid() const { return rows != nullptr && block_rows >= 1; }
};

/// \brief Snaps a model's coefficients to nice values, guarded by accuracy.
///
/// Each coefficient (and the intercept) is moved to the nicest lattice value
/// within options.max_relative_coefficient_shift. The snapped model is kept
/// only if its mean absolute error on (x, y) grows by at most
/// options.max_relative_accuracy_loss × mean(|y|); otherwise the original is
/// returned. Diagnostics (r2/mae/rmse) are recomputed either way.
/// `error_spec` (optional) selects the exact-L1 baseline evaluation; see
/// SnapErrorSpec.
LinearModel SnapModel(const LinearModel& model, const Matrix& x,
                      const std::vector<double>& y, const NormalityOptions& options,
                      const SnapErrorSpec* error_spec = nullptr);

}  // namespace charles

#endif  // CHARLES_CORE_NORMALITY_H_
