#ifndef CHARLES_CORE_NORMALITY_H_
#define CHARLES_CORE_NORMALITY_H_

#include <vector>

#include "core/options.h"
#include "expr/expr.h"
#include "linalg/matrix.h"
#include "ml/linear_regression.h"

namespace charles {

/// \brief How "normal" (human-friendly) a numeric constant is, in [0, 1].
///
/// The paper's examples anchor the scale: 5% (0.05) is more normal than
/// 2.479%, and "Age > 25" more normal than "Age > 23.796". The score decays
/// with the number of significant decimal digits the constant needs:
/// one digit (5, 0.05, 1000) → 1.0; each extra digit costs 0.2, floored at 0.
/// Zero is perfectly normal.
double NumberNormality(double value);

/// \brief The "nicest" value within `tolerance` (relative) of `value`.
///
/// Scans round lattices (1, 2, 2.5, 5 × powers of ten) from coarse to fine
/// and returns the nicest candidate within the allowed shift; returns
/// `value` unchanged when nothing nicer is close enough.
double SnapNumber(double value, double tolerance);

/// All nicer-than-`value` lattice candidates within `tolerance` (relative),
/// ordered nicest-first (ties towards the closer candidate). SnapModel walks
/// this list per constant under its accuracy guard.
std::vector<double> SnapCandidates(double value, double tolerance);

/// \brief Mean normality of a fitted model's non-trivial constants.
///
/// Averages NumberNormality over non-zero coefficients and a non-zero
/// intercept; a bare identity/empty model scores 1.0.
double ModelNormality(const LinearModel& model);

/// \brief Mean normality of the numeric literals in a condition.
///
/// Conditions without numeric literals (pure categorical equalities, TRUE)
/// score 1.0.
double ConditionNormality(const Expr& condition);

/// \brief Snaps a model's coefficients to nice values, guarded by accuracy.
///
/// Each coefficient (and the intercept) is moved to the nicest lattice value
/// within options.max_relative_coefficient_shift. The snapped model is kept
/// only if its mean absolute error on (x, y) grows by at most
/// options.max_relative_accuracy_loss × mean(|y|); otherwise the original is
/// returned. Diagnostics (r2/mae/rmse) are recomputed either way.
LinearModel SnapModel(const LinearModel& model, const Matrix& x,
                      const std::vector<double>& y, const NormalityOptions& options);

}  // namespace charles

#endif  // CHARLES_CORE_NORMALITY_H_
