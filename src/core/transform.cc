#include "core/transform.h"

#include <cmath>

namespace charles {

LinearTransform LinearTransform::NoChange(std::string target_attribute) {
  return LinearTransform(Kind::kNoChange, std::move(target_attribute), LinearModel{});
}

LinearTransform LinearTransform::Linear(std::string target_attribute, LinearModel model) {
  return LinearTransform(Kind::kLinear, std::move(target_attribute), std::move(model));
}

Result<Matrix> LinearTransform::GatherFeatures(const Table& source,
                                               const RowSet& rows) const {
  Matrix x(rows.size(), static_cast<int64_t>(model_.feature_names.size()));
  for (size_t f = 0; f < model_.feature_names.size(); ++f) {
    CHARLES_ASSIGN_OR_RETURN(const Column* col,
                             source.ColumnByName(model_.feature_names[f]));
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values, col->GatherDoubles(rows));
    for (int64_t r = 0; r < rows.size(); ++r) {
      x.At(r, static_cast<int64_t>(f)) = values[static_cast<size_t>(r)];
    }
  }
  return x;
}

Result<std::vector<double>> LinearTransform::Apply(const Table& source,
                                                   const RowSet& rows) const {
  if (kind_ == Kind::kNoChange) {
    CHARLES_ASSIGN_OR_RETURN(const Column* col, source.ColumnByName(target_attribute_));
    return col->GatherDoubles(rows);
  }
  CHARLES_ASSIGN_OR_RETURN(Matrix x, GatherFeatures(source, rows));
  return model_.PredictBatch(x);
}

int LinearTransform::Complexity() const {
  if (kind_ == Kind::kNoChange) return 0;
  return model_.NumActiveTerms();
}

std::string LinearTransform::ToString() const {
  if (kind_ == Kind::kNoChange) return "no change";
  // Display copy: the target's own old value reads as old_<attr>, the new
  // value as new_<attr>.
  LinearModel display = model_;
  for (std::string& name : display.feature_names) {
    if (name == target_attribute_) name = "old_" + name;
  }
  return display.ToString("new_" + target_attribute_);
}

bool LinearTransform::Equals(const LinearTransform& other, double tolerance) const {
  if (kind_ != other.kind_ || target_attribute_ != other.target_attribute_) return false;
  if (kind_ == Kind::kNoChange) return true;
  if (model_.feature_names != other.model_.feature_names) return false;
  if (std::abs(model_.intercept - other.model_.intercept) > tolerance) return false;
  for (size_t i = 0; i < model_.coefficients.size(); ++i) {
    if (std::abs(model_.coefficients[i] - other.model_.coefficients[i]) > tolerance) {
      return false;
    }
  }
  return true;
}

}  // namespace charles
