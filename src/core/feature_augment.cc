#include "core/feature_augment.h"

#include <algorithm>
#include <cmath>

#include "table/table_builder.h"

namespace charles {

namespace {

bool IsExcluded(const std::string& name, const AugmentOptions& options) {
  return std::find(options.exclude.begin(), options.exclude.end(), name) !=
         options.exclude.end();
}

Result<std::vector<int>> SelectAttributes(const Table& table,
                                          const AugmentOptions& options) {
  std::vector<int> selected;
  if (!options.attributes.empty()) {
    for (const std::string& name : options.attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, table.schema().FieldIndex(name));
      if (!IsNumeric(table.schema().field(idx).type)) {
        return Status::TypeError("cannot augment non-numeric attribute '" + name + "'");
      }
      selected.push_back(idx);
    }
    return selected;
  }
  for (int c = 0; c < table.num_columns(); ++c) {
    const Field& field = table.schema().field(c);
    if (IsNumeric(field.type) && !IsExcluded(field.name, options)) {
      selected.push_back(c);
    }
  }
  return selected;
}

/// True iff every non-NULL value is strictly positive (log-eligible).
bool StrictlyPositive(const Column& column) {
  for (int64_t r = 0; r < column.length(); ++r) {
    if (column.IsNull(r)) continue;
    if (column.GetValue(r).AsDouble().ValueOrDie() <= 0.0) return false;
  }
  return true;
}

struct DerivedColumn {
  std::string name;
  Column data;
};

Result<std::vector<DerivedColumn>> DeriveColumns(const Table& table,
                                                 const std::vector<int>& attrs,
                                                 const AugmentOptions& options) {
  std::vector<DerivedColumn> derived;
  auto unary = [&](int attr, const std::string& prefix,
                   double (*fn)(double)) -> Status {
    const Column& column = table.column(attr);
    Column out(TypeKind::kDouble);
    for (int64_t r = 0; r < column.length(); ++r) {
      if (column.IsNull(r)) {
        out.AppendNull();
      } else {
        CHARLES_ASSIGN_OR_RETURN(double v, column.GetValue(r).AsDouble());
        CHARLES_RETURN_NOT_OK(out.Append(Value(fn(v))));
      }
    }
    derived.push_back(
        DerivedColumn{prefix + table.schema().field(attr).name, std::move(out)});
    return Status::OK();
  };

  for (int attr : attrs) {
    if (options.log_features && StrictlyPositive(table.column(attr))) {
      CHARLES_RETURN_NOT_OK(unary(attr, "log_", [](double v) { return std::log(v); }));
    }
    if (options.square_features) {
      CHARLES_RETURN_NOT_OK(unary(attr, "sq_", [](double v) { return v * v; }));
    }
  }
  if (options.interaction_features) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      for (size_t j = i + 1; j < attrs.size(); ++j) {
        const Column& a = table.column(attrs[i]);
        const Column& b = table.column(attrs[j]);
        Column out(TypeKind::kDouble);
        for (int64_t r = 0; r < a.length(); ++r) {
          if (a.IsNull(r) || b.IsNull(r)) {
            out.AppendNull();
          } else {
            CHARLES_ASSIGN_OR_RETURN(double va, a.GetValue(r).AsDouble());
            CHARLES_ASSIGN_OR_RETURN(double vb, b.GetValue(r).AsDouble());
            CHARLES_RETURN_NOT_OK(out.Append(Value(va * vb)));
          }
        }
        derived.push_back(
            DerivedColumn{table.schema().field(attrs[i]).name + "_x_" +
                              table.schema().field(attrs[j]).name,
                          std::move(out)});
      }
    }
  }
  return derived;
}

}  // namespace

Result<Table> AugmentWithNonlinearFeatures(const Table& table,
                                           const AugmentOptions& options) {
  CHARLES_ASSIGN_OR_RETURN(std::vector<int> attrs, SelectAttributes(table, options));
  CHARLES_ASSIGN_OR_RETURN(std::vector<DerivedColumn> derived,
                           DeriveColumns(table, attrs, options));
  std::vector<Field> fields = table.schema().fields();
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(table.num_columns()) + derived.size());
  for (int c = 0; c < table.num_columns(); ++c) columns.push_back(table.column(c));
  for (DerivedColumn& d : derived) {
    fields.push_back(Field{d.name, TypeKind::kDouble, true});
    columns.push_back(std::move(d.data));
  }
  CHARLES_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

Result<std::pair<Table, Table>> AugmentSnapshots(const Table& source,
                                                 const Table& target,
                                                 const AugmentOptions& options) {
  // The derived-column set must agree on both sides (the diff engine
  // requires equal schemas), so the attribute list is resolved once against
  // the source and reused verbatim on both snapshots. Log columns need joint
  // eligibility (strictly positive in *both* snapshots), so they go in a
  // second pass restricted to the jointly-eligible attributes; squares and
  // interactions are unconditional and keep the full list.
  CHARLES_ASSIGN_OR_RETURN(std::vector<int> attrs, SelectAttributes(source, options));
  AugmentOptions polynomial = options;
  polynomial.log_features = false;
  polynomial.attributes.clear();
  AugmentOptions logs;
  logs.log_features = true;
  logs.square_features = false;
  logs.interaction_features = false;
  for (int attr : attrs) {
    const std::string& name = source.schema().field(attr).name;
    CHARLES_ASSIGN_OR_RETURN(int target_idx, target.schema().FieldIndex(name));
    polynomial.attributes.push_back(name);
    if (options.log_features && StrictlyPositive(source.column(attr)) &&
        StrictlyPositive(target.column(target_idx))) {
      logs.attributes.push_back(name);
    }
  }
  auto augment_both_passes = [&](const Table& table) -> Result<Table> {
    CHARLES_ASSIGN_OR_RETURN(Table polynomial_pass,
                             AugmentWithNonlinearFeatures(table, polynomial));
    if (logs.attributes.empty()) return polynomial_pass;
    return AugmentWithNonlinearFeatures(polynomial_pass, logs);
  };
  CHARLES_ASSIGN_OR_RETURN(Table augmented_source, augment_both_passes(source));
  CHARLES_ASSIGN_OR_RETURN(Table augmented_target, augment_both_passes(target));
  if (!augmented_source.schema().Equals(augmented_target.schema())) {
    return Status::Internal("augmented snapshots diverged in schema");
  }
  return std::make_pair(std::move(augmented_source), std::move(augmented_target));
}

}  // namespace charles
