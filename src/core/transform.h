#ifndef CHARLES_CORE_TRANSFORM_H_
#define CHARLES_CORE_TRANSFORM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ml/linear_regression.h"
#include "table/row_set.h"
#include "table/table.h"

namespace charles {

/// \brief The "what changed" half of a conditional transformation.
///
/// Either a linear update rule over source-side attribute values
/// (`new_bonus = 1.05 × old_bonus + 1000`) or the explicit no-change
/// transformation (Figure 2's `None` leaf). Feature names refer to columns
/// of the *source* snapshot; the target attribute's own old value is a
/// legitimate feature and is displayed with an `old_` prefix.
class LinearTransform {
 public:
  enum class Kind { kLinear, kNoChange };

  /// Default-constructs a no-change transformation with an empty target;
  /// exists so aggregates holding a LinearTransform stay default-buildable.
  LinearTransform() : LinearTransform(Kind::kNoChange, "", LinearModel{}) {}

  /// The no-change transformation: new value = old value.
  static LinearTransform NoChange(std::string target_attribute);

  /// A fitted linear rule over the model's feature columns.
  static LinearTransform Linear(std::string target_attribute, LinearModel model);

  Kind kind() const { return kind_; }
  bool is_no_change() const { return kind_ == Kind::kNoChange; }
  const std::string& target_attribute() const { return target_attribute_; }
  /// The fitted model; meaningful only for kLinear.
  const LinearModel& model() const { return model_; }
  LinearModel* mutable_model() { return &model_; }

  /// \brief Predicted new target values for `rows` of the source snapshot.
  ///
  /// Gathers the model's feature columns from `source` (no-change gathers
  /// the target column itself) and evaluates the rule row by row.
  Result<std::vector<double>> Apply(const Table& source, const RowSet& rows) const;

  /// Feature matrix the model consumes, gathered from `source` at `rows`.
  Result<Matrix> GatherFeatures(const Table& source, const RowSet& rows) const;

  /// Number of variables in the rule (0 for no-change) — the paper's
  /// transformation-complexity measure.
  int Complexity() const;

  /// `new_bonus = 1.05 × old_bonus + 1000` or `no change`.
  std::string ToString() const;

  /// Structural equality within `tolerance` on all constants.
  bool Equals(const LinearTransform& other, double tolerance = 1e-9) const;

 private:
  LinearTransform(Kind kind, std::string target, LinearModel model)
      : kind_(kind), target_attribute_(std::move(target)), model_(std::move(model)) {}

  Kind kind_;
  std::string target_attribute_;
  LinearModel model_;
};

}  // namespace charles

#endif  // CHARLES_CORE_TRANSFORM_H_
