#ifndef CHARLES_CORE_MULTI_TARGET_H_
#define CHARLES_CORE_MULTI_TARGET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"

namespace charles {

/// \brief Options for SummarizeAllChangedAttributes.
struct MultiTargetOptions {
  /// Per-attribute engine configuration; target_attribute is overwritten per
  /// run, everything else (keys, c, t, alpha, ...) applies to every run.
  CharlesOptions base;
  /// At most this many target attributes are analyzed, most-changed first
  /// (by fraction of rows whose value changed).
  int max_attributes = 4;
  /// Attributes with a change fraction below this are skipped entirely.
  double min_change_fraction = 0.001;
};

/// \brief One attribute's share of a multi-target report.
struct AttributeSummaries {
  std::string attribute;
  double change_fraction = 0.0;
  SummaryList summaries;
};

/// \brief A full-snapshot change report across every evolved attribute.
struct MultiTargetReport {
  std::vector<AttributeSummaries> per_attribute;

  /// Concatenated per-attribute top summaries, most-changed attribute first.
  std::string ToString() const;
};

/// \brief Runs ChARLES once per changed numeric attribute (the paper's demo
/// picks one target; real snapshots usually evolve several).
///
/// The diff is computed once; numeric non-key attributes are ranked by their
/// change fraction and the engine runs for the top ones. Attributes the
/// policy never touched are skipped.
Result<MultiTargetReport> SummarizeAllChangedAttributes(const Table& source,
                                                        const Table& target,
                                                        const MultiTargetOptions& options);

}  // namespace charles

#endif  // CHARLES_CORE_MULTI_TARGET_H_
