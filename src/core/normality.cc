#include "core/normality.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"

namespace charles {

namespace {

/// Number of significant decimal digits needed to write `value` exactly
/// (up to 9 digits of precision; beyond that we call it 10).
int SignificantDigits(double value) {
  value = std::abs(value);
  if (value <= 1e-300) return 1;  // zero
  // Normalize into [1, 10).
  int exponent = static_cast<int>(std::floor(std::log10(value)));
  double mantissa = value / std::pow(10.0, exponent);
  for (int digits = 1; digits <= 9; ++digits) {
    double scaled = mantissa * std::pow(10.0, digits - 1);
    if (std::abs(scaled - std::round(scaled)) < 1e-6 * std::max(1.0, scaled)) {
      return digits;
    }
  }
  return 10;
}

void RecomputeDiagnostics(LinearModel* model, const Matrix& x,
                          const std::vector<double>& y) {
  std::vector<double> predicted = model->PredictBatch(x);
  model->mae = MeanAbsoluteError(predicted, y);
  model->rmse = RootMeanSquaredError(predicted, y);
  double total_var = Variance(y);
  if (total_var <= 1e-300) {
    model->r2 = model->rmse <= 1e-9 ? 1.0 : 0.0;
  } else {
    double ss = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      double e = y[i] - predicted[i];
      ss += e * e;
    }
    model->r2 = 1.0 - (ss / static_cast<double>(y.size())) / total_var;
  }
}

}  // namespace

double NumberNormality(double value) {
  int digits = SignificantDigits(value);
  double score = 1.0 - 0.2 * static_cast<double>(digits - 1);
  return score < 0.0 ? 0.0 : score;
}

std::vector<double> SnapCandidates(double value, double tolerance) {
  std::vector<double> candidates;
  if (std::abs(value) <= 1e-300) return candidates;
  double magnitude = std::abs(value);
  int exponent = static_cast<int>(std::floor(std::log10(magnitude)));
  // Lattice steps scaled by descending powers of ten; chosen so common human
  // constants (25, 250, 0.05, 1000) are reachable.
  static const double kStepMantissas[] = {1.0, 0.5, 0.25, 0.2, 0.1};
  for (int e = exponent + 1; e >= exponent - 3; --e) {
    double base = std::pow(10.0, e);
    for (double mantissa : kStepMantissas) {
      double step = mantissa * base;
      double candidate = std::round(value / step) * step;
      if (candidate == 0.0) continue;
      if (std::abs(candidate - value) <= tolerance * magnitude &&
          NumberNormality(candidate) > NumberNormality(value)) {
        candidates.push_back(candidate);
      }
    }
  }
  // Nicest first; ties broken towards the closer candidate. Deduplicate.
  std::sort(candidates.begin(), candidates.end(), [value](double a, double b) {
    double na = NumberNormality(a);
    double nb = NumberNormality(b);
    if (na != nb) return na > nb;
    return std::abs(a - value) < std::abs(b - value);
  });
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return candidates;
}

double SnapNumber(double value, double tolerance) {
  std::vector<double> candidates = SnapCandidates(value, tolerance);
  return candidates.empty() ? value : candidates[0];
}

double ModelNormality(const LinearModel& model) {
  double total = 0.0;
  int count = 0;
  for (double c : model.coefficients) {
    if (std::abs(c) <= 1e-12) continue;
    total += NumberNormality(c);
    ++count;
  }
  if (std::abs(model.intercept) > 1e-9) {
    total += NumberNormality(model.intercept);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 1.0;
}

double ConditionNormality(const Expr& condition) {
  std::vector<Value> literals;
  condition.CollectLiterals(&literals);
  double total = 0.0;
  int count = 0;
  for (const Value& v : literals) {
    if (!IsNumeric(v.kind())) continue;
    total += NumberNormality(v.AsDouble().ValueOrDie());
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 1.0;
}

LinearModel SnapModel(const LinearModel& model, const Matrix& x,
                      const std::vector<double>& y, const NormalityOptions& options,
                      const SnapErrorSpec* error_spec) {
  if (!options.enable_snapping || y.empty()) return model;

  size_t n = y.size();
  LinearModel snapped = model;

  // Residuals of the current snapped state, maintained incrementally: this
  // loop sits inside every leaf fit of the phase-3 sweep, and candidate
  // evaluation via full model re-prediction (one matrix pass plus an
  // allocation per candidate) used to dominate the fit. Perturbing one
  // constant by δ shifts row i's residual by exactly δ·x_ic (δ for the
  // intercept), so a candidate's MAE is a single allocation-free pass.
  std::vector<double> predicted = snapped.PredictBatch(x);
  std::vector<double> residuals(n);
  for (size_t i = 0; i < n; ++i) residuals[i] = y[i] - predicted[i];
  auto mae_of = [&](const std::vector<double>& r) {
    double total = 0.0;
    for (double e : r) total += std::abs(e);
    return total / static_cast<double>(n);
  };
  // Accuracy-guard baseline: shard-merged exact partials when supplied, the
  // equivalent canonical block fold when only the fold geometry is, and the
  // historical serial sum otherwise (see SnapErrorSpec).
  double baseline_mae;
  if (error_spec != nullptr && error_spec->baseline != nullptr) {
    baseline_mae = error_spec->baseline->mae();
  } else if (error_spec != nullptr && error_spec->valid()) {
    baseline_mae =
        AccumulateAbsBlocks(residuals, *error_spec->rows, error_spec->block_rows)
            .mae();
  } else {
    baseline_mae = mae_of(residuals);
  }

  // Accuracy guard: snapped models may lose at most this much MAE relative
  // to the target scale — except exact models, which must stay exact.
  double scale = 0.0;
  for (double v : y) scale += std::abs(v);
  scale /= static_cast<double>(n);
  double allowed_mae = baseline_mae + options.max_relative_accuracy_loss *
                                          std::max(scale, 1e-12);
  if (baseline_mae <= options.exactness_tolerance) {
    allowed_mae = options.exactness_tolerance;
  }

  // Greedy per-constant snapping, iterated to a fixpoint: for each
  // coefficient (then the intercept), try candidates from nicest to least
  // nice and keep the first that stays within the accuracy budget.
  // Evaluating per constant (rather than all-at-once) lets 1.0502 snap to
  // 1.05 even though the even-nicer 1.0 would wreck the fit; iterating lets
  // a slope snap unlock an intercept snap that was individually too costly.
  // `column` indexes the perturbed feature; -1 perturbs the intercept.
  auto try_constant = [&](double* constant, int64_t column) -> bool {
    double original = *constant;
    if (original == 0.0) return false;
    // Zero first: it is the nicest constant of all (drops the term entirely)
    // and unreachable through relative-tolerance lattice candidates, yet it
    // is exactly right for fits carrying a floating-point residue like
    // "+ 0.00008".
    std::vector<double> candidates = {0.0};
    for (double candidate :
         SnapCandidates(original, options.max_relative_coefficient_shift)) {
      candidates.push_back(candidate);
    }
    for (double candidate : candidates) {
      double delta = candidate - original;
      double total = 0.0;
      if (column < 0) {
        for (size_t i = 0; i < n; ++i) total += std::abs(residuals[i] - delta);
      } else {
        for (size_t i = 0; i < n; ++i) {
          total += std::abs(residuals[i] -
                            delta * x.At(static_cast<int64_t>(i), column));
        }
      }
      if (total / static_cast<double>(n) <= allowed_mae) {
        *constant = candidate;
        if (column < 0) {
          for (size_t i = 0; i < n; ++i) residuals[i] -= delta;
        } else {
          for (size_t i = 0; i < n; ++i) {
            residuals[i] -= delta * x.At(static_cast<int64_t>(i), column);
          }
        }
        return true;
      }
    }
    return false;
  };
  for (int pass = 0; pass < 3; ++pass) {
    bool changed_this_pass = false;
    for (size_t c = 0; c < snapped.coefficients.size(); ++c) {
      changed_this_pass |=
          try_constant(&snapped.coefficients[c], static_cast<int64_t>(c));
    }
    changed_this_pass |= try_constant(&snapped.intercept, -1);
    if (!changed_this_pass) break;
  }

  // Final diagnostics from the final constants — full re-prediction, exactly
  // as the QR path computes them, so incremental-residual drift can never
  // leak into a reported mae/rmse/r².
  RecomputeDiagnostics(&snapped, x, y);
  return snapped;
}

}  // namespace charles
