#ifndef CHARLES_CORE_SQL_GEN_H_
#define CHARLES_CORE_SQL_GEN_H_

#include <string>

#include "common/result.h"
#include "core/summary.h"

namespace charles {

/// \brief Options for ToSqlUpdate.
struct SqlGenOptions {
  /// Table name the UPDATE targets.
  std::string table_name = "snapshot";
  /// true: one UPDATE with a CASE expression (all reads see pre-update
  /// values — always safe). false: one UPDATE per CT (equivalent only
  /// because engine partitions are disjoint; a warning comment is emitted).
  bool single_statement = true;
  /// Indentation for the CASE arms.
  std::string indent = "  ";
};

/// \brief Renders a change summary as executable SQL.
///
/// A ChARLES summary *is* the update that turned the source snapshot into
/// (an approximation of) the target; this makes that operational — the
/// "interpretable, executable summaries" idea of Sutton et al.'s Data-Diff,
/// applied to ChARLES's conditional transformations:
///
/// \code{.sql}
///   UPDATE snapshot SET bonus = CASE
///     WHEN edu = 'PhD' THEN 1.05 * bonus + 1000
///     WHEN edu = 'MS' AND exp >= 3 THEN 1.04 * bonus + 800
///     ELSE bonus
///   END;
/// \endcode
///
/// Conditions render via the expression printer (already SQL-compatible:
/// `=`, `!=`, `AND`, `IN (...)`); transformations expand to arithmetic over
/// the old column values. No-change CTs become `ELSE`-preserving arms.
Result<std::string> ToSqlUpdate(const ChangeSummary& summary,
                                const SqlGenOptions& options = {});

}  // namespace charles

#endif  // CHARLES_CORE_SQL_GEN_H_
