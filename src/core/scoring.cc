#include "core/scoring.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/normality.h"
#include "linalg/stats.h"

namespace charles {

Scorer::Scorer(const CharlesOptions& options, std::vector<double> y_old,
               std::vector<double> y_new)
    : options_(options),  // copied: see header
      y_old_(std::move(y_old)),
      y_new_(std::move(y_new)) {
  CHARLES_CHECK_EQ(y_old_.size(), y_new_.size());
  baseline_l1_ = L1Distance(y_old_, y_new_);
  double sum = 0.0;
  for (double v : y_new_) sum += std::abs(v);
  target_scale_ = y_new_.empty() ? 1.0 : std::max(sum / static_cast<double>(y_new_.size()), 1e-12);
  // "Exact" means practically right: within 0.1% of the target's scale (or
  // the configured tolerance if larger). A hard zero band would make the
  // exactness term collapse under any measurement noise, at which point
  // partition quality stops influencing accuracy at all.
  constexpr double kExactnessBand = 0.001;
  exact_tolerance_ =
      std::max(options_.numeric_tolerance, kExactnessBand * target_scale_);
}

double Scorer::Accuracy(const std::vector<double>& y_hat) const {
  CHARLES_CHECK_EQ(y_hat.size(), y_new_.size());
  // The row scan is itself a (degenerate, single-chain) ScorePartials fold:
  // L1Distance sums |ŷᵢ − y_newᵢ| in index order from zero, exactly the
  // chain Accumulate replays, so this wrapper and AccuracyFromPartials
  // agree bit-for-bit whenever the partials were folded as one chain.
  ScorePartials partials;
  for (size_t i = 0; i < y_hat.size(); ++i) {
    partials.Accumulate(y_new_[i], y_hat[i], exact_tolerance_);
  }
  return AccuracyFromPartials(partials);
}

double Scorer::AccuracyFromPartials(const ScorePartials& partials) const {
  const double l1 = partials.abs_error_sum;
  double exactness = partials.n > 0
                         ? static_cast<double>(partials.exact_count) /
                               static_cast<double>(partials.n)
                         : 0.0;
  double l1_explained;
  if (baseline_l1_ > 1e-12) {
    l1_explained = std::clamp(1.0 - l1 / baseline_l1_, 0.0, 1.0);
  } else {
    // Nothing changed between the snapshots: a summary is accurate iff it
    // also predicts "no change" (scale-normalized inverse distance).
    double mae =
        partials.n > 0 ? l1 / static_cast<double>(partials.n) : 0.0;
    l1_explained = 1.0 / (1.0 + mae / target_scale_);
  }
  return 0.5 * l1_explained + 0.5 * exactness;
}

ScoreBreakdown Scorer::InterpretabilityOnly(const ChangeSummary& summary) const {
  ScoreBreakdown breakdown;
  const auto& cts = summary.cts();
  int64_t n = static_cast<int64_t>(y_old_.size());

  if (cts.empty()) {
    // The empty summary explains nothing but is maximally simple.
    breakdown.summary_size = 1.0;
    breakdown.condition_simplicity = 1.0;
    breakdown.transform_simplicity = 1.0;
    breakdown.coverage = 0.0;
    breakdown.normality = 1.0;
  } else {
    breakdown.summary_size =
        1.0 / (1.0 + 0.25 * (static_cast<double>(cts.size()) - 1.0));

    double cond_total = 0.0;
    double tran_total = 0.0;
    double norm_total = 0.0;
    int64_t covered = 0;
    for (const ConditionalTransform& ct : cts) {
      cond_total += 1.0 / (1.0 + 0.5 * static_cast<double>(ct.condition->NumDescriptors()));
      tran_total += 1.0 / (1.0 + 0.5 * static_cast<double>(ct.transform.Complexity()));
      double transform_normality = ct.transform.is_no_change()
                                       ? 1.0
                                       : ModelNormality(ct.transform.model());
      norm_total += 0.5 * (ConditionNormality(*ct.condition) + transform_normality);
      covered += ct.rows.size();
    }
    double count = static_cast<double>(cts.size());
    breakdown.condition_simplicity = cond_total / count;
    breakdown.transform_simplicity = tran_total / count;
    breakdown.normality = norm_total / count;
    // Coverage: the fraction of rows some CT explains. Engine-built
    // summaries partition the data (coverage 1); the term differentiates
    // partial summaries such as cell-diff baselines.
    breakdown.coverage =
        n > 0 ? std::min(1.0, static_cast<double>(covered) / static_cast<double>(n)) : 0.0;
  }

  const ScoreWeights& w = options_.weights;
  double weight_sum = w.summary_size + w.condition_simplicity + w.transform_simplicity +
                      w.coverage + w.normality;
  breakdown.interpretability =
      (w.summary_size * breakdown.summary_size +
       w.condition_simplicity * breakdown.condition_simplicity +
       w.transform_simplicity * breakdown.transform_simplicity +
       w.coverage * breakdown.coverage + w.normality * breakdown.normality) /
      weight_sum;
  // Readability budget: past ~10 CTs a summary is a change log, not an
  // explanation — no per-CT simplicity can compensate (this is what sinks
  // the exhaustive cell-level diff in experiment E6). Within the budget the
  // factor is 1 and the weighted blend above is untouched.
  constexpr double kReadabilityBudget = 10.0;
  if (!cts.empty() && static_cast<double>(cts.size()) > kReadabilityBudget) {
    breakdown.interpretability *= kReadabilityBudget / static_cast<double>(cts.size());
  }
  return breakdown;
}

ScoreBreakdown Scorer::Score(const ChangeSummary& summary,
                             const std::vector<double>& y_hat) const {
  ScoreBreakdown breakdown = InterpretabilityOnly(summary);
  breakdown.accuracy = Accuracy(y_hat);
  breakdown.score = options_.alpha * breakdown.accuracy +
                    (1.0 - options_.alpha) * breakdown.interpretability;
  return breakdown;
}

ScoreBreakdown Scorer::ScoreFromPartials(const ChangeSummary& summary,
                                         const ScorePartials& partials) const {
  CHARLES_CHECK_EQ(static_cast<size_t>(partials.n), y_new_.size());
  ScoreBreakdown breakdown = InterpretabilityOnly(summary);
  breakdown.accuracy = AccuracyFromPartials(partials);
  breakdown.score = options_.alpha * breakdown.accuracy +
                    (1.0 - options_.alpha) * breakdown.interpretability;
  return breakdown;
}

Result<ScoreBreakdown> Scorer::ApplyAndScore(const ChangeSummary& summary,
                                             const Table& source) const {
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_hat, summary.Apply(source));
  return Score(summary, y_hat);
}

}  // namespace charles
