#include "core/model_tree.h"

#include <algorithm>

#include "common/string_util.h"

namespace charles {

namespace {

int LeafCount(const ModelTreeNode& node) {
  if (node.is_leaf) return 1;
  return LeafCount(*node.yes) + LeafCount(*node.no);
}

int Depth(const ModelTreeNode& node) {
  if (node.is_leaf) return 0;
  return 1 + std::max(Depth(*node.yes), Depth(*node.no));
}

std::string LeafText(const ModelTreeNode& node) {
  std::string text = node.transform.has_value() ? node.transform->ToString() : "None";
  text += "   [" + FormatDouble(node.coverage * 100.0, 1) + "% of rows]";
  return text;
}

void RenderNode(const ModelTreeNode& node, const std::string& prefix, std::string* out) {
  if (node.is_leaf) {
    // Root-level leaf (single-partition summary).
    *out += prefix + LeafText(node) + "\n";
    return;
  }
  *out += prefix.empty() ? node.split->ToString() + "?\n" : "";
  // YES branch.
  if (node.yes->is_leaf) {
    *out += prefix + "├─ YES → " + LeafText(*node.yes) + "\n";
  } else {
    *out += prefix + "├─ YES ─ " + node.yes->split->ToString() + "?\n";
    RenderNode(*node.yes, prefix + "│  ", out);
  }
  // NO branch.
  if (node.no->is_leaf) {
    *out += prefix + "└─ NO  → " + LeafText(*node.no) + "\n";
  } else {
    *out += prefix + "└─ NO  ─ " + node.no->split->ToString() + "?\n";
    RenderNode(*node.no, prefix + "   ", out);
  }
}

}  // namespace

int ModelTree::num_leaves() const { return LeafCount(*root_); }
int ModelTree::depth() const { return Depth(*root_); }

std::string ModelTree::Render() const {
  std::string out;
  RenderNode(*root_, "", &out);
  return out;
}

}  // namespace charles
