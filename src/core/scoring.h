#ifndef CHARLES_CORE_SCORING_H_
#define CHARLES_CORE_SCORING_H_

#include <vector>

#include "core/options.h"
#include "core/summary.h"
#include "linalg/score_partials.h"

namespace charles {

/// \brief Computes Score(S) = α · Accuracy(S) + (1 − α) · Interpretability(S).
///
/// **Accuracy** blends two [0, 1] views of the paper's "inverse L1 distance
/// between D̂s(aᵢ) and Dt(aᵢ)":
///
///   L1-explained  = clamp(1 − L1(ŷ, y_new) / L1(y_old, y_new), 0, 1)
///   exactness     = |{i : |ŷᵢ − y_newᵢ| ≤ band}| / n,
///                   band = max(numeric_tolerance, 0.1% of mean |y_new|)
///   Accuracy(S)   = ½ · L1-explained + ½ · exactness
///
/// The exactness term encodes the paper's emphasis that {R1, R2, R3}
/// "accurately explains the change trend" while the coarse R4 "does not
/// accurately capture the change": a summary whose rules are *right* for the
/// rows they govern outranks one that is merely close on average. On noisy
/// data exactness is uniformly ≈ 0 and ranking degenerates gracefully to the
/// L1 view. The do-nothing summary scores 0 when everything changed; with
/// identical snapshots (nothing to explain) a summary that leaves the data
/// unchanged scores 1.
///
/// **Interpretability** is the weighted mean of five [0, 1] sub-scores, one
/// per §2 desideratum:
///  - summary_size:        1 / (1 + 0.25 · (#CTs − 1))
///  - condition_simplicity: mean over CTs of 1 / (1 + 0.5 · #descriptors)
///  - transform_simplicity: mean over CTs of 1 / (1 + 0.5 · #variables)
///  - coverage:            covered rows / n — penalizes unexplained rows
///  - normality:           mean over CTs of the average of condition and
///                         transformation constant-normality
///
/// Summaries larger than ~10 CTs additionally scale the blended
/// interpretability by 10/#CTs: beyond that budget a summary degenerates
/// into the exhaustive change list the paper's introduction rejects.
class Scorer {
 public:
  /// y_old / y_new are the aligned target vectors (pair order).
  Scorer(const CharlesOptions& options, std::vector<double> y_old,
         std::vector<double> y_new);

  /// Scores a summary given the predictions it makes on the source rows
  /// (`y_hat`, aligned with y_old/y_new). The row-scan path: kept for
  /// external callers and baselines; the engine's hot loop scores from
  /// partials instead (ScoreFromPartials).
  ScoreBreakdown Score(const ChangeSummary& summary,
                       const std::vector<double>& y_hat) const;

  /// Scores a summary from accumulated accuracy partials — the row-free
  /// path. `partials` must cover every aligned row exactly once (n equal to
  /// the target length) and must have been folded with exact_tolerance().
  ScoreBreakdown ScoreFromPartials(const ChangeSummary& summary,
                                   const ScorePartials& partials) const;

  /// Convenience: applies the summary to `source` and scores the result.
  Result<ScoreBreakdown> ApplyAndScore(const ChangeSummary& summary,
                                       const Table& source) const;

  /// The accuracy component alone (used by baselines and ablations).
  double Accuracy(const std::vector<double>& y_hat) const;

  /// The accuracy component from partials: the identical L1-explained /
  /// exactness blend, fed by (Σ|ŷ − y_new|, exact count, n) instead of a
  /// fresh row scan. Given partials whose sum replays the row scan's addend
  /// chain, the result is bit-identical to Accuracy().
  double AccuracyFromPartials(const ScorePartials& partials) const;

  /// The interpretability component alone.
  ScoreBreakdown InterpretabilityOnly(const ChangeSummary& summary) const;

  /// The exactness band: max(numeric_tolerance, 0.1% of mean |y_new|) —
  /// what every ScorePartials fold feeding this scorer must use, and what
  /// the kScorePartials shard round ships to workers.
  double exact_tolerance() const { return exact_tolerance_; }

  /// Aligned row count (the n every covering partials fold must reach).
  int64_t num_rows() const { return static_cast<int64_t>(y_new_.size()); }

 private:
  // Held by value: a Scorer must stay valid past the options object it was
  // built from (callers often pass temporaries).
  CharlesOptions options_;
  std::vector<double> y_old_;
  std::vector<double> y_new_;
  double baseline_l1_ = 0.0;
  double target_scale_ = 1.0;
  double exact_tolerance_ = 0.0;
};

}  // namespace charles

#endif  // CHARLES_CORE_SCORING_H_
