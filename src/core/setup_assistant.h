#ifndef CHARLES_CORE_SETUP_ASSISTANT_H_
#define CHARLES_CORE_SETUP_ASSISTANT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "diff/diff.h"

namespace charles {

/// \brief One attribute the setup assistant shortlisted, with its measured
/// association to the observed change.
struct AttributeCandidate {
  std::string name;
  /// Strength of association in [0, 1]: max over |Pearson| (numeric) or
  /// correlation ratio η (categorical) against the change signals.
  double association = 0.0;
  bool numeric = false;
  /// True if association cleared CharlesOptions::correlation_threshold
  /// (below-threshold candidates may still be kept to honour the minimum
  /// candidate counts).
  bool above_threshold = false;
};

/// \brief The shortlists the engine enumerates subsets from.
struct SetupResult {
  /// Ranked candidates for conditions (A_cond), best first.
  std::vector<AttributeCandidate> condition_candidates;
  /// Ranked numeric candidates for transformations (A_tran), best first.
  /// Includes the target attribute itself (its old value) when
  /// include_old_target_in_transform is set.
  std::vector<AttributeCandidate> transform_candidates;

  /// Condition candidate names, in rank order.
  std::vector<std::string> ConditionNames() const;
  /// Transformation candidate names, in rank order.
  std::vector<std::string> TransformNames() const;

  /// Two-line rendering of both shortlists with association scores.
  std::string ToString() const;
};

/// \brief Correlation-based attribute shortlisting (paper, §2 "Setup
/// assistant").
///
/// For every non-key attribute the assistant measures how strongly it
/// associates with the observed change of the target attribute. Three change
/// signals are probed and the strongest association wins:
///  - the absolute delta (new − old),
///  - the relative delta ((new − old) / |old|),
///  - the changed/unchanged indicator.
/// Numeric attributes additionally probe the new target value itself (a
/// transformation-style association). Numeric attributes use |Pearson|;
/// categoricals use the correlation ratio η.
///
/// Candidates with association above options.correlation_threshold make the
/// shortlist; if fewer than the configured minimum clear it, the top-ranked
/// below-threshold ones are kept as well (flagged via above_threshold).
class SetupAssistant {
 public:
  static Result<SetupResult> Analyze(const SnapshotDiff& diff,
                                     const CharlesOptions& options);
};

}  // namespace charles

#endif  // CHARLES_CORE_SETUP_ASSISTANT_H_
