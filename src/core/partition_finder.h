#ifndef CHARLES_CORE_PARTITION_FINDER_H_
#define CHARLES_CORE_PARTITION_FINDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "linalg/suffstats.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/linear_regression.h"
#include "table/table.h"

namespace charles {

class ThreadPool;

/// \brief Read-only cache of full columns converted to doubles.
///
/// Phase 1 gathers the per-T feature matrix once per transformation subset;
/// subsets overlap heavily, so without a cache the same column is converted
/// from its Value representation O(2^|A_tran|) times. Build() converts each
/// shortlisted column exactly once; lookups afterwards are immutable and
/// therefore safe from any number of concurrent workers.
class ColumnCache {
 public:
  ColumnCache() = default;

  /// Converts every named column of `source` to doubles. Fails if a column
  /// is missing or non-numeric.
  static Result<ColumnCache> Build(const Table& source,
                                   const std::vector<std::string>& attrs);

  /// The cached values for `name` (size = source rows), or nullptr if the
  /// column was not part of Build().
  const std::vector<double>* Find(const std::string& name) const {
    auto it = columns_.find(name);
    return it == columns_.end() ? nullptr : &it->second;
  }

  /// Resolves every name to its cached column, in order. Returns false —
  /// leaving `out` unspecified — if any column is missing; callers treat
  /// that as "this cache cannot serve the request" and fall back to their
  /// slow path. The shared front half of every gather/accumulate loop over
  /// cached columns.
  bool ResolveColumns(const std::vector<std::string>& names,
                      std::vector<const std::vector<double>*>* out) const {
    out->clear();
    out->reserve(names.size());
    for (const std::string& name : names) {
      const std::vector<double>* values = Find(name);
      if (values == nullptr) return false;
      out->push_back(values);
    }
    return true;
  }

  /// Inserts (or replaces) one column directly. This is how a remote worker
  /// reconstructs the coordinator's cache from shipped bytes — values arrive
  /// already converted, so routing them through Build() (which needs a
  /// Table) would be a pointless re-conversion. Not safe concurrently with
  /// readers; populate fully, then share read-only like a Build() result.
  void Insert(std::string name, std::vector<double> values) {
    columns_[std::move(name)] = std::move(values);
  }

  /// Number of cached columns.
  size_t size() const { return columns_.size(); }

 private:
  std::unordered_map<std::string, std::vector<double>> columns_;
};

/// \brief One candidate partitioning of the data: a fitted condition tree
/// whose leaves are the partitions.
struct PartitionCandidate {
  /// The condition-induction tree (kept for model-tree rendering).
  std::shared_ptr<const DecisionTree> tree;
  /// Its leaves: condition + row set per partition, YES-first order.
  std::vector<DecisionTree::Leaf> leaves;
  /// Number of residual clusters that seeded this partitioning.
  int k = 0;
  /// How faithfully the tree's leaves reproduce the cluster labels.
  double label_agreement = 0.0;
};

/// \brief Partition discovery (paper, §2 "Partition discovery").
///
/// For a fixed pair (C, T) of condition/transformation attribute subsets:
///  1. fit one global linear regression of the new target values on T over
///     the source snapshot;
///  2. k-means the *signed residuals* (each row's distance from the
///     regression line) for k = 1..max_clusters;
///  3. for each clustering, fit a small CART tree over the attributes in C
///     that predicts cluster membership — each leaf's root path is a
///     candidate partition condition.
///
/// Step 3 resolves the paper's cyclic dependency between patterns and
/// clusters: rows are grouped by how they *changed* (residual space) and the
/// groups are then *described* in attribute space. Structurally identical
/// partitionings arising from different k are deduplicated.
///
/// Beyond the paper's residual signal, step 2 also clusters two further
/// change signals — the raw delta (new − old) and the relative delta — and
/// pools the resulting labelings (deduplicated). The paper's §2 explicitly
/// frames its partitioning as one proof-of-concept choice; the extra signals
/// recover policies whose groups are separated by absolute or proportional
/// change but overlap in residual space. Ranking remains the sole arbiter.
///
/// Steps 1–2 depend only on T, step 3 only on C; the engine therefore calls
/// ClusterResiduals once per T and InduceCandidates once per (T, C).
class PartitionFinder {
 public:
  struct Input {
    /// Source snapshot; row i aligns with y_old[i]/y_new[i].
    const Table* source = nullptr;
    /// Old target values, one per source row.
    const std::vector<double>* y_old = nullptr;
    /// New target values, one per source row.
    const std::vector<double>* y_new = nullptr;
    /// Names of the transformation attributes T (numeric source columns);
    /// empty means intercept-only transformations.
    std::vector<std::string> transform_attrs;
    /// Optional column-gather cache covering (at least) `transform_attrs`;
    /// when set, feature matrices are filled from it instead of re-converting
    /// columns per T-subset. Must stay valid for the duration of the call.
    const ColumnCache* column_cache = nullptr;
    /// Optional pre-accumulated OLS moments over the run's full
    /// transformation shortlist and y_new, covering every source row. When
    /// set (and CharlesOptions::use_sufficient_stats allows), each
    /// T-subset's global model is a p×p sub-solve of these moments instead
    /// of an O(n·p²) QR — the engine accumulates them once per run and
    /// shares them across all T-subset workers. `shortlist_subset` maps
    /// `transform_attrs` (in order) to the stats' feature indices; both
    /// fields must be set together and the stats must stay valid for the
    /// duration of the call.
    const SufficientStats* shortlist_stats = nullptr;
    std::vector<int> shortlist_subset;
  };

  /// Result of steps 1–2: the global model and one clustering per k
  /// (k = 1..max_clusters, deduplicated count may be smaller for tiny data).
  struct ResidualClusterings {
    LinearModel global_model;
    std::vector<KMeansResult> clusterings;
  };

  /// Steps 1–2: global fit on T, k-means over the signed residuals. The
  /// delta/relative-delta signals are T-independent; pass
  /// include_delta_signals = false on all but the first call of a T sweep to
  /// avoid recomputing them.
  static Result<ResidualClusterings> ClusterResiduals(const Input& input,
                                                      const CharlesOptions& options,
                                                      bool include_delta_signals = true);

  /// Step 3: induce condition trees over `condition_attr_indices` for every
  /// row labeling; structurally identical partitionings are deduplicated
  /// within the call. `cache` (optional) must cover the attributes; the
  /// engine shares one across every (C, labeling) combination. `pool`
  /// (optional) fits the per-labeling trees in parallel; the dedup still
  /// walks labelings in order, so the result is identical to the serial one.
  /// Callers already running inside a pool task should pass nullptr and
  /// parallelize at their own level instead.
  static Result<std::vector<PartitionCandidate>> InduceCandidates(
      const Table& source, const std::vector<std::vector<int>>& labelings,
      const std::vector<int>& condition_attr_indices, const CharlesOptions& options,
      const TreeAttributeCache* cache = nullptr, ThreadPool* pool = nullptr);

  /// Renumbers labels in first-appearance order so structurally identical
  /// clusterings compare equal.
  static std::vector<int> CanonicalizeLabels(const std::vector<int>& labels);

  /// Convenience composition of the two phases for a single (C, T).
  static Result<std::vector<PartitionCandidate>> Find(
      const Input& input, const std::vector<int>& condition_attr_indices,
      const CharlesOptions& options, ThreadPool* pool = nullptr);

  /// The global model of step 1, exposed for diagnostics and benchmarks.
  static Result<LinearModel> FitGlobalModel(const Input& input);
};

}  // namespace charles

#endif  // CHARLES_CORE_PARTITION_FINDER_H_
