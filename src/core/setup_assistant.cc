#include "core/setup_assistant.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "linalg/stats.h"

namespace charles {

std::vector<std::string> SetupResult::ConditionNames() const {
  std::vector<std::string> names;
  names.reserve(condition_candidates.size());
  for (const AttributeCandidate& c : condition_candidates) names.push_back(c.name);
  return names;
}

std::vector<std::string> SetupResult::TransformNames() const {
  std::vector<std::string> names;
  names.reserve(transform_candidates.size());
  for (const AttributeCandidate& c : transform_candidates) names.push_back(c.name);
  return names;
}

std::string SetupResult::ToString() const {
  std::string out = "Condition candidates (A_cond):\n";
  for (const AttributeCandidate& c : condition_candidates) {
    out += "  " + PadRight(c.name, 24) + " assoc=" + FormatDouble(c.association, 3) +
           (c.above_threshold ? "" : "  (below threshold)") + "\n";
  }
  out += "Transformation candidates (A_tran):\n";
  for (const AttributeCandidate& c : transform_candidates) {
    out += "  " + PadRight(c.name, 24) + " assoc=" + FormatDouble(c.association, 3) +
           (c.above_threshold ? "" : "  (below threshold)") + "\n";
  }
  return out;
}

namespace {

/// Integer group ids for a (categorical or numeric) column, aligned with
/// the diff's pair order.
std::vector<int> GroupIds(const Table& source, int col,
                          const std::vector<SnapshotDiff::AlignedPair>& pairs) {
  std::unordered_map<Value, int, ValueHash> ids;
  std::vector<int> out;
  out.reserve(pairs.size());
  for (const auto& pair : pairs) {
    Value v = source.GetValue(pair.source_row, col);
    auto [it, inserted] = ids.emplace(std::move(v), static_cast<int>(ids.size()));
    out.push_back(it->second);
  }
  return out;
}

Result<std::vector<double>> NumericValues(const Table& source, int col,
                                          const std::vector<SnapshotDiff::AlignedPair>& pairs) {
  std::vector<int64_t> rows;
  rows.reserve(pairs.size());
  for (const auto& pair : pairs) rows.push_back(pair.source_row);
  return source.column(col).GatherDoubles(RowSet(std::move(rows)));
}

}  // namespace

Result<SetupResult> SetupAssistant::Analyze(const SnapshotDiff& diff,
                                            const CharlesOptions& options) {
  const Table& source = diff.source();
  const std::string& target = options.target_attribute;
  CHARLES_ASSIGN_OR_RETURN(int target_col, source.schema().FieldIndex(target));
  if (!IsNumeric(source.schema().field(target_col).type)) {
    return Status::TypeError("target attribute '" + target + "' is not numeric");
  }

  // Change signals, aligned with pair order.
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_old, diff.SourceValues(target));
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_new, diff.TargetValues(target));
  size_t n = y_old.size();
  std::vector<double> delta(n);
  std::vector<double> relative_delta(n);
  std::vector<double> changed(n);
  for (size_t i = 0; i < n; ++i) {
    delta[i] = y_new[i] - y_old[i];
    relative_delta[i] =
        std::abs(y_old[i]) > 1e-12 ? delta[i] / std::abs(y_old[i]) : delta[i];
    changed[i] = std::abs(delta[i]) > options.numeric_tolerance ? 1.0 : 0.0;
  }

  std::vector<AttributeCandidate> condition_all;
  std::vector<AttributeCandidate> transform_all;

  for (int col = 0; col < source.num_columns(); ++col) {
    const Field& field = source.schema().field(col);
    if (std::find(options.key_columns.begin(), options.key_columns.end(), field.name) !=
        options.key_columns.end()) {
      continue;  // keys identify entities; they never explain change
    }
    bool numeric = IsNumeric(field.type);

    if (field.name == target) {
      // The target's old value is a transformation feature, never a
      // condition attribute (the paper conditions on *other* features).
      if (options.include_old_target_in_transform) {
        double assoc = std::abs(PearsonCorrelation(y_old, y_new));
        transform_all.push_back(AttributeCandidate{field.name, assoc, true, false});
      }
      continue;
    }

    if (numeric) {
      Result<std::vector<double>> values_result = NumericValues(source, col, diff.pairs());
      if (!values_result.ok()) continue;  // NULLs: skip from auto-selection
      const std::vector<double>& values = *values_result;
      double assoc_cond = std::max({std::abs(PearsonCorrelation(values, delta)),
                                    std::abs(PearsonCorrelation(values, relative_delta)),
                                    std::abs(PearsonCorrelation(values, changed))});
      double assoc_tran =
          std::max(assoc_cond, std::abs(PearsonCorrelation(values, y_new)));
      condition_all.push_back(AttributeCandidate{field.name, assoc_cond, true, false});
      transform_all.push_back(AttributeCandidate{field.name, assoc_tran, true, false});
    } else {
      std::vector<int> groups = GroupIds(source, col, diff.pairs());
      // Adjusted eta: corrects the upward small-sample bias of raw eta so
      // many-category noise attributes do not crowd out real signals.
      double assoc = std::max({AdjustedCorrelationRatio(groups, delta),
                               AdjustedCorrelationRatio(groups, relative_delta),
                               AdjustedCorrelationRatio(groups, changed)});
      condition_all.push_back(AttributeCandidate{field.name, assoc, false, false});
    }
  }

  auto rank_and_cut = [](std::vector<AttributeCandidate> candidates, double threshold,
                         int min_keep, int max_keep) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const AttributeCandidate& a, const AttributeCandidate& b) {
                       return a.association > b.association;
                     });
    std::vector<AttributeCandidate> kept;
    for (AttributeCandidate& c : candidates) {
      c.above_threshold = c.association > threshold;
      bool need_more = static_cast<int>(kept.size()) < min_keep;
      if ((c.above_threshold || need_more) &&
          static_cast<int>(kept.size()) < max_keep) {
        kept.push_back(c);
      }
    }
    return kept;
  };

  SetupResult result;
  result.condition_candidates =
      rank_and_cut(std::move(condition_all), options.correlation_threshold,
                   options.min_condition_candidates, options.max_condition_candidates);
  result.transform_candidates =
      rank_and_cut(std::move(transform_all), options.correlation_threshold,
                   options.min_transform_candidates, options.max_transform_candidates);
  return result;
}

}  // namespace charles
