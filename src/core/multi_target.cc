#include "core/multi_target.h"

#include <algorithm>

#include "common/string_util.h"
#include "diff/diff.h"

namespace charles {

std::string MultiTargetReport::ToString() const {
  std::string out;
  for (const AttributeSummaries& entry : per_attribute) {
    out += "=== " + entry.attribute + " (" +
           FormatDouble(entry.change_fraction * 100.0, 1) + "% of rows changed) ===\n";
    if (entry.summaries.summaries.empty()) {
      out += "  (no summary found)\n";
      continue;
    }
    out += entry.summaries.summaries[0].ToString();
  }
  return out;
}

Result<MultiTargetReport> SummarizeAllChangedAttributes(
    const Table& source, const Table& target, const MultiTargetOptions& options) {
  if (options.base.key_columns.empty()) {
    return Status::InvalidArgument("base options must name the key columns");
  }
  DiffOptions diff_options;
  diff_options.key_columns = options.base.key_columns;
  diff_options.numeric_tolerance = options.base.numeric_tolerance;
  diff_options.allow_insert_delete = options.base.allow_insert_delete;
  CHARLES_ASSIGN_OR_RETURN(SnapshotDiff diff,
                           SnapshotDiff::Compute(source, target, diff_options));

  // Rank numeric non-key attributes by how much of the table they changed.
  std::vector<std::pair<double, std::string>> changed;
  for (const ColumnChangeStats& stats : diff.column_stats()) {
    if (!stats.numeric) continue;
    if (std::find(options.base.key_columns.begin(), options.base.key_columns.end(),
                  stats.name) != options.base.key_columns.end()) {
      continue;
    }
    if (stats.change_fraction < options.min_change_fraction) continue;
    changed.emplace_back(stats.change_fraction, stats.name);
  }
  std::stable_sort(changed.begin(), changed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (static_cast<int>(changed.size()) > options.max_attributes) {
    changed.resize(static_cast<size_t>(options.max_attributes));
  }

  MultiTargetReport report;
  for (const auto& [fraction, attribute] : changed) {
    CharlesOptions run_options = options.base;
    run_options.target_attribute = attribute;
    CHARLES_ASSIGN_OR_RETURN(SummaryList summaries,
                             SummarizeChanges(source, target, run_options));
    AttributeSummaries entry;
    entry.attribute = attribute;
    entry.change_fraction = fraction;
    entry.summaries = std::move(summaries);
    report.per_attribute.push_back(std::move(entry));
  }
  return report;
}

}  // namespace charles
