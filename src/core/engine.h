#ifndef CHARLES_CORE_ENGINE_H_
#define CHARLES_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/engine_context.h"
#include "core/options.h"
#include "core/partition_finder.h"
#include "core/setup_assistant.h"
#include "core/stop_token.h"
#include "core/summary.h"
#include "diff/diff.h"
#include "parallel/sharded_cache.h"
#include "table/table.h"

namespace charles {

/// \brief Output of one engine run: ranked summaries plus search diagnostics.
struct SummaryList {
  /// Top-N summaries, highest score first.
  std::vector<ChangeSummary> summaries;

  /// The attribute shortlists the run used (assistant output or overrides).
  SetupResult setup;

  /// \name Search-space diagnostics.
  /// @{
  int64_t condition_subsets = 0;    ///< |{C ⊆ A_cond : |C| ≤ c}|
  int64_t transform_subsets = 0;    ///< |{T ⊆ A_tran : |T| ≤ t}| (incl. ∅)
  int64_t labelings = 0;            ///< distinct clusterings pooled
  int64_t partitions = 0;           ///< distinct induced partitionings
  int64_t candidates_evaluated = 0; ///< summaries built and scored
  int64_t candidates_deduped = 0;   ///< dropped as structural duplicates
  int threads_used = 1;             ///< worker threads the run executed on
  int64_t leaf_fits_computed = 0;   ///< OLS leaf fits actually performed
  int64_t leaf_fits_reused = 0;     ///< leaf fits served from a cache
  /// Fits dropped from the shared leaf-fit cache by its LRU bound, as of the
  /// end of this run: per-run for a self-contained engine, cumulative across
  /// runs when attached to an EngineContext (the cache is shared). 0 when no
  /// bound is configured.
  int64_t leaf_fit_evictions = 0;
  /// \name Distributed shard execution (CharlesOptions::num_shards >= 1;
  /// all zero for unsharded runs). See docs/distributed.md.
  /// @{
  int shards_used = 0;               ///< row-range shards the plan executed
  int64_t shard_rows_scanned = 0;    ///< Σ leaf∩shard rows scanned by backends
  int64_t shard_blocks_merged = 0;   ///< per-block partials folded centrally
  double shard_seconds = 0.0;        ///< coordinator wall time (fan-out + merge)
  /// @}
  double elapsed_seconds = 0.0;
  double clustering_seconds = 0.0;  ///< phase 1: change-signal k-means
  double induction_seconds = 0.0;   ///< phase 2: condition trees
  double fitting_seconds = 0.0;     ///< phase 3: transforms + scoring
  /// @}

  /// Rendering of the ranked list (one block per summary).
  std::string ToString() const;
};

/// \brief One streamed snapshot of the phase-3 search, emitted after a
/// (partition, T) shard completes.
struct SummaryStreamUpdate {
  /// Current best-so-far ranking (at most CharlesOptions::top_n entries),
  /// ordered exactly as the final list orders summaries. Which summaries
  /// appear mid-run depends on scheduling; the \em last update's list equals
  /// the final ranked list.
  std::vector<ChangeSummary> provisional;
  /// (partition, T) shards finished so far, including this one.
  int64_t shards_completed = 0;
  /// Total (partition, T) shards of the run's phase 3.
  int64_t shards_total = 0;
  /// Seconds since the run started.
  double elapsed_seconds = 0.0;
  /// True on the final update of a run cancelled via its StopToken: the
  /// search stopped early, `provisional` is the best ranking known at the
  /// stop, and no further updates will arrive (the run resolves with
  /// Status::Cancelled). Always false on ordinary updates.
  bool cancelled = false;
};

/// \brief Callback channel receiving ranked partial results during a run.
///
/// Pass one to CharlesEngine::Find or FindAsync to observe the search as it
/// happens — a human-in-the-loop UI can show top-ranked summaries early and
/// let the user stop reading long before the sweep finishes. An update is
/// emitted whenever a completed shard changed the provisional set (shards
/// that only rediscover known summaries just advance shards_completed), and
/// always for the final shard, so every run emits at least one update and
/// the last update carries the final ranking. Updates are serialized (never
/// concurrent, even when one stream is shared by concurrent runs — Emit
/// holds the stream's own lock) and, within one run, arrive with strictly
/// increasing shards_completed, on whichever worker thread finished the
/// shard. Emission sits on the phase-3 critical path (workers queue behind
/// the run's merge lock while the callback executes), so the callback must
/// be cheap — hand the update to your own queue rather than doing I/O — and
/// must not call back into the emitting engine. Streaming never changes the
/// run's result: the final ranked list stays bit-identical to a run without
/// a stream, at any thread count.
class SummaryStream {
 public:
  using Callback = std::function<void(const SummaryStreamUpdate&)>;

  explicit SummaryStream(Callback callback) : callback_(std::move(callback)) {}

  SummaryStream(const SummaryStream&) = delete;
  SummaryStream& operator=(const SummaryStream&) = delete;

  /// Updates emitted so far (across every run this stream was passed to).
  int64_t updates_emitted() const {
    return updates_.load(std::memory_order_relaxed);
  }

 private:
  friend class CharlesEngine;

  /// Invokes the callback under the stream's own lock, so emissions stay
  /// serialized even when several concurrent runs share one stream.
  void Emit(const SummaryStreamUpdate& update) {
    std::lock_guard<std::mutex> lock(mu_);
    if (callback_) callback_(update);
    updates_.fetch_add(1, std::memory_order_relaxed);
  }

  Callback callback_;
  std::mutex mu_;
  std::atomic<int64_t> updates_{0};
};

/// \brief The ChARLES diff discovery engine (paper, Figure 3 right half).
///
/// Orchestrates the full pipeline: snapshot diff → attribute shortlists →
/// (C, T) subset enumeration → partition discovery → transformation
/// discovery (with normality snapping) → scoring → dedup → ranking.
///
/// An engine is stateless across runs; all state lives in the options (and
/// optionally an attached EngineContext), so one engine may serve concurrent
/// Find() calls from multiple threads.
class CharlesEngine {
 public:
  /// An engine owning its execution resources: each Find() spawns (and
  /// joins) a private pool of CharlesOptions::num_threads workers and uses a
  /// run-local leaf-fit cache.
  explicit CharlesEngine(CharlesOptions options) : options_(std::move(options)) {}

  /// \brief An engine attached to a long-lived EngineContext.
  ///
  /// Every Find() schedules on the context's pool and reuses its cross-run
  /// leaf-fit cache, so repeated queries skip thread spawn and re-fitting.
  /// The context's thread count supersedes CharlesOptions::num_threads (a
  /// null context behaves exactly like the single-argument constructor).
  /// The context must outlive the engine.
  CharlesEngine(CharlesOptions options, EngineContext* context)
      : options_(std::move(options)), context_(context) {}

  const CharlesOptions& options() const { return options_; }

  /// The attached context, or nullptr for a self-contained engine.
  EngineContext* context() const { return context_; }

  /// \brief Runs the pipeline over two snapshots with identical schemas and
  /// entity sets (paper assumptions; violations yield InvalidArgument).
  ///
  /// When `stream` is non-null, ranked partial results are emitted as
  /// phase-3 shards complete (see SummaryStream); the returned list is
  /// unaffected by streaming. When `stop` is non-null the search is
  /// cancellable (see StopToken): on a stop, the best ranking known so far
  /// is emitted on `stream` with `cancelled` set and the call resolves with
  /// Status::Cancelled.
  Result<SummaryList> Find(const Table& source, const Table& target,
                           SummaryStream* stream = nullptr,
                           const StopToken* stop = nullptr) const;

  /// \brief Non-blocking Find(): runs the search on a dedicated thread and
  /// resolves the future with its result.
  ///
  /// Combine with a SummaryStream to consume top-ranked summaries while the
  /// sweep is still running, and a StopToken to abandon it early (the
  /// future then resolves with Status::Cancelled). The engine, both tables,
  /// the stream, the token, and any attached context must stay alive until
  /// the future resolves.
  std::future<Result<SummaryList>> FindAsync(const Table& source,
                                             const Table& target,
                                             SummaryStream* stream = nullptr,
                                             const StopToken* stop = nullptr) const;

  /// Rvalue snapshots are rejected at compile time: the async thread reads
  /// the tables by reference, so a temporary would dangle before it resolves.
  std::future<Result<SummaryList>> FindAsync(Table&& source, const Table& target,
                                             SummaryStream* stream = nullptr,
                                             const StopToken* stop = nullptr) const =
      delete;
  std::future<Result<SummaryList>> FindAsync(const Table& source, Table&& target,
                                             SummaryStream* stream = nullptr,
                                             const StopToken* stop = nullptr) const =
      delete;

  /// Legacy name for Find() without streaming.
  Result<SummaryList> Run(const Table& source, const Table& target) const {
    return Find(source, target);
  }

  /// \name Leaf-fit cache machinery
  /// Shared with EngineContext; see engine_context.h. The nested aliases are
  /// kept so existing callers keep compiling.
  /// @{
  using LeafFit = ::charles::LeafFit;
  using RowIndicesHash = ::charles::RowIndicesHash;
  /// Thread-local tier: one per (worker, T), keyed by rows alone (lock-free).
  using LeafFitCache =
      std::unordered_map<std::vector<int64_t>, LeafFit, RowIndicesHash>;
  using LeafKey = ::charles::LeafKey;
  using LeafKeyHash = ::charles::LeafKeyHash;
  using SharedLeafFit = ::charles::SharedLeafFit;
  using SharedLeafFitCache = ::charles::SharedLeafFitCache;
  using SharedLeafStatsCache = ::charles::SharedLeafStatsCache;
  /// Thread-local tier of the per-leaf sufficient-statistics cache, keyed by
  /// rows alone (stats are T-independent). Values are shared_ptrs into the
  /// cross-worker tier, so promotion between tiers copies a handle.
  using LeafStatsCache =
      std::unordered_map<std::vector<int64_t>,
                         std::shared_ptr<const SufficientStats>, RowIndicesHash>;
  /// @}

  /// \brief Per-shard view of the run's sufficient-statistics machinery,
  /// threaded through BuildSummary into FitLeaf.
  ///
  /// `shortlist` names every transformation-candidate column in stats
  /// accumulation order; `t_subset` holds the current T's indices into that
  /// order. A leaf's stats are looked up in `local`, then `shared`, then
  /// accumulated in one scan over the leaf's rows (serial row order, so the
  /// moments are bit-identical on any thread) and published to both tiers.
  /// All pointers must outlive the BuildSummary call; any of them may be
  /// null, which (like a null workspace) disables the fast path.
  struct LeafStatsWorkspace {
    const std::vector<std::string>* shortlist = nullptr;
    const std::vector<int>* t_subset = nullptr;
    LeafStatsCache* local = nullptr;
    SharedLeafStatsCache* shared = nullptr;
    uint64_t fingerprint = 0;
    /// Block size of the canonical block-structured accumulation (see
    /// AccumulateRowBlocks); must be set to CharlesOptions::stats_block_rows
    /// so lazily accumulated leaves match coordinator-merged ones
    /// bit-for-bit. Deliberately defaulted to an invalid 0 — a workspace
    /// without an explicit block size disables the stats fast path (QR per
    /// leaf) rather than silently folding at a block size the rest of the
    /// run is not using.
    int64_t block_rows = 0;
    /// Per-leaf snap evidence from a distributed sweep, keyed by the leaf's
    /// row indices: max |y_new − y_old| over the leaf. When a leaf is
    /// present, FitLeaf decides no-change from it instead of rescanning the
    /// rows (max folds exactly across shards, so the decision is identical).
    /// Null or missing entries fall back to the serial scan.
    const std::unordered_map<std::vector<int64_t>, double, RowIndicesHash>*
        nochange_max_delta = nullptr;
  };

  /// Per-worker counters folded into SummaryList diagnostics at the barrier.
  struct LeafFitStats {
    int64_t computed = 0;     ///< FitLeaf invocations
    int64_t local_hits = 0;   ///< served by the worker's own cache
    int64_t shared_hits = 0;  ///< served via SharedLeafFitCache
  };

  /// \brief Builds and scores one summary for a fixed partitioning.
  ///
  /// Exposed for tests, baselines, and ablations: fits a transformation on
  /// every leaf (detecting no-change partitions), snaps constants, assembles
  /// predictions, and scores. `y_old`/`y_new` align with source rows. When
  /// `cache` is non-null, leaf fits are reused across calls sharing the same
  /// transformation subset. `shared_cache` (keyed by `t_index` and
  /// `cache_fingerprint`) additionally shares fits across workers of a
  /// parallel run and across runs of an EngineContext; `stats` tallies
  /// compute/reuse counts for diagnostics. `column_cache` (optional, must
  /// cover `transform_attrs` over `source`) lets leaf fits gather features
  /// from pre-converted columns instead of re-converting per leaf.
  /// `stats_workspace` (optional) enables the sufficient-statistics OLS fast
  /// path — one row scan per leaf shared across every T — with automatic QR
  /// fallback per leaf; see LeafStatsWorkspace.
  Result<ChangeSummary> BuildSummary(
      const Table& source, const std::vector<double>& y_old,
      const std::vector<double>& y_new, const PartitionCandidate& candidate,
      const std::vector<std::string>& transform_attrs,
      const std::vector<std::string>& condition_attrs, LeafFitCache* cache = nullptr,
      SharedLeafFitCache* shared_cache = nullptr, size_t t_index = 0,
      LeafFitStats* stats = nullptr, uint64_t cache_fingerprint = 0,
      const ColumnCache* column_cache = nullptr,
      const LeafStatsWorkspace* stats_workspace = nullptr) const;

 private:
  /// Fits one partition's transformation: no-change detection, OLS on T
  /// (sufficient-statistics solve when `stats_workspace` provides one, row-
  /// level QR otherwise or on ill-conditioning), normality snapping.
  /// `column_cache` as in BuildSummary.
  Result<LeafFit> FitLeaf(const Table& source, const std::vector<double>& y_old,
                          const std::vector<double>& y_new, const RowSet& rows,
                          const std::vector<std::string>& transform_attrs,
                          const ColumnCache* column_cache = nullptr,
                          const LeafStatsWorkspace* stats_workspace = nullptr) const;

  CharlesOptions options_;
  EngineContext* context_ = nullptr;
};

/// \brief One-call convenience API: SummarizeChanges(Ds, Dt, options).
Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options);

/// Same, attached to a long-lived context (serving / repeated queries).
Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options,
                                     EngineContext* context);

}  // namespace charles

#endif  // CHARLES_CORE_ENGINE_H_
