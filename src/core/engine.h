#ifndef CHARLES_CORE_ENGINE_H_
#define CHARLES_CORE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "linalg/error_partials.h"
#include "linalg/score_partials.h"
#include "core/engine_context.h"
#include "core/options.h"
#include "core/partition_finder.h"
#include "core/setup_assistant.h"
#include "core/stop_token.h"
#include "core/summary.h"
#include "diff/diff.h"
#include "distributed/remote_counters.h"
#include "parallel/sharded_cache.h"
#include "table/table.h"

namespace charles {

namespace obs {
class TraceRecorder;
}  // namespace obs

class Scorer;

/// \brief Output of one engine run: ranked summaries plus search diagnostics.
struct SummaryList {
  /// Top-N summaries, highest score first.
  std::vector<ChangeSummary> summaries;

  /// Run id: the run fingerprint as 16 lowercase hex digits. Every run has
  /// one (fingerprinting no longer requires an EngineContext); it tags
  /// coordinator and worker log lines and doubles as the trace id, so one
  /// id correlates logs, traces, and diagnostics across processes.
  std::string run_id;

  /// The run's trace (CharlesOptions::trace on; null otherwise). Holds
  /// every stage/dispatch/merge span plus imported worker spans; export
  /// with ToChromeTraceJson() (src/obs/trace.h, docs/observability.md).
  std::shared_ptr<obs::TraceRecorder> trace;

  /// The attribute shortlists the run used (assistant output or overrides).
  SetupResult setup;

  /// \name Search-space diagnostics.
  /// @{
  int64_t condition_subsets = 0;    ///< |{C ⊆ A_cond : |C| ≤ c}|
  int64_t transform_subsets = 0;    ///< |{T ⊆ A_tran : |T| ≤ t}| (incl. ∅)
  int64_t labelings = 0;            ///< distinct clusterings pooled
  int64_t partitions = 0;           ///< distinct induced partitionings
  int64_t candidates_evaluated = 0; ///< summaries built and scored
  int64_t candidates_deduped = 0;   ///< dropped as structural duplicates
  int threads_used = 1;             ///< worker threads the run executed on
  /// Intra-block compute kernel the run resolved and installed ("scalar",
  /// "simd", "simd-avx2"; see CharlesOptions::kernel_backend), with a
  /// "+batch" suffix when any sweep took the batched staged-block path
  /// (batched_blocks_staged > 0). Reporting only — every kernel and every
  /// batch_fold mode produces bit-identical output.
  std::string kernel_used;
  /// \name Batched-fold diagnostics (CharlesOptions::batch_fold; all zero
  /// when every sweep ran the per-leaf path). The histogram summary of
  /// leaves-per-staged-block is (count, mean, max) =
  /// (batched_blocks_staged, batch_leaves_per_block_mean(),
  /// batch_leaves_per_block_max).
  /// @{
  /// Canonical blocks materialized by the staging pool across all sweeps.
  int64_t batched_blocks_staged = 0;
  /// Accumulators (leaf moments, probes, signal partials) folded against
  /// staged blocks — Σ over staged blocks of that block's batch width.
  int64_t batched_fold_accumulators = 0;
  /// Widest single-block batch any sweep folded.
  int64_t batch_leaves_per_block_max = 0;
  /// Mean accumulators folded per staged block (0 when nothing staged).
  double batch_leaves_per_block_mean() const {
    return batched_blocks_staged > 0
               ? static_cast<double>(batched_fold_accumulators) /
                     static_cast<double>(batched_blocks_staged)
               : 0.0;
  }
  /// @}
  int64_t leaf_fits_computed = 0;   ///< OLS leaf fits actually performed
  int64_t leaf_fits_reused = 0;     ///< leaf fits served from a cache
  /// Fits dropped from the shared leaf-fit cache by its LRU bound, as of the
  /// end of this run: per-run for a self-contained engine, cumulative across
  /// runs when attached to an EngineContext (the cache is shared). 0 when no
  /// bound is configured.
  int64_t leaf_fit_evictions = 0;
  /// \name Distributed shard execution (CharlesOptions::num_shards >= 1;
  /// all zero for unsharded runs). See docs/distributed.md.
  /// @{
  int shards_used = 0;               ///< row-range shards of the executed plan
  int64_t shard_rows_scanned = 0;    ///< Σ rows scanned by backends, all tasks
  int64_t shard_blocks_merged = 0;   ///< per-block partials folded centrally
  double shard_seconds = 0.0;        ///< coordinator wall time (fan-out + merge)
  /// ShardTask executions dispatched to backends (one per shard per round).
  int64_t shard_tasks_executed = 0;
  /// Unique partition leaves swept by the kLeafMoments round.
  int64_t shard_moment_leaves_swept = 0;
  /// Unique partition leaves whose kLeafMoments work was *elided* because a
  /// warm EngineContext cache already holds every transformation subset's
  /// fit for them — the warm-rescan fix: a repeat run on a warm context
  /// issues zero moment tasks (see docs/distributed.md#warm-cache-elision).
  int64_t shard_moment_leaves_elided = 0;
  /// kErrorPartials probes whose exact Σ|y − ŷ| was merged from shards.
  int64_t shard_error_probes = 0;
  /// kScorePartials probes whose (Σ|y − ŷ|, exact count) was merged from
  /// shards — the row-free scoring currency (docs/distributed.md).
  int64_t shard_score_probes = 0;
  /// \name Per-task-kind coordinator wall times (fan-out + merge).
  /// @{
  double shard_signal_seconds = 0.0;  ///< kSignalStats round
  double shard_moments_seconds = 0.0; ///< kLeafMoments round
  double shard_error_seconds = 0.0;   ///< kErrorPartials round
  double shard_score_seconds = 0.0;   ///< kScorePartials round
  /// @}
  /// \name Row-free scoring (PR 10). A run on the partials path scores every
  /// candidate by merging per-leaf ScorePartials in leaf order; the counters
  /// below prove (or disprove) that no run-wide ŷ vector was ever built.
  /// @{
  /// Candidates scored row-free from merged per-leaf score partials.
  int64_t score_partials_candidates = 0;
  /// Candidates that fell back to materializing a run-wide ŷ and row-scan
  /// scoring. Zero for every engine-driven run; nonzero only for external
  /// BuildSummary callers that pass no run scorer.
  int64_t score_yhat_materializations = 0;
  /// Per-leaf score folds performed centrally (evidence misses / snapped
  /// models); folds served from shard evidence or a warm cache don't count.
  int64_t score_leaf_folds = 0;
  /// @}
  /// \name Remote backend (shard_backend = kRemote; empty/zero otherwise).
  /// @{
  /// Shard tasks dispatched to the worker fleet.
  int64_t remote_tasks_dispatched = 0;
  /// Transport-failure reassignments: a worker died or timed out mid-shard
  /// and the task was retried on another worker. Nonzero retries never
  /// change output — the kernel is deterministic and the merge block-ordered.
  int64_t remote_task_retries = 0;
  /// ShardInput bundles installed, summed over workers (stays at epochs ×
  /// workers-used, however many tasks ran).
  int64_t remote_input_installs = 0;
  /// Per-worker dispatch/health counters at the end of the run.
  std::vector<RemoteWorkerCounters> remote_workers;
  /// @}
  /// @}
  double elapsed_seconds = 0.0;
  double clustering_seconds = 0.0;  ///< phase 1: change-signal k-means
  double induction_seconds = 0.0;   ///< phase 2: condition trees
  double fitting_seconds = 0.0;     ///< phase 3: transforms + scoring
  /// @}

  /// Rendering of the ranked list (one block per summary).
  std::string ToString() const;

  /// Stable machine-readable diagnostics: the versioned RunDiagnostics
  /// schema (src/obs/diagnostics.h) rendered as one JSON object. Clients
  /// parse this instead of scraping C++ struct fields; additions are
  /// backward compatible and removals/renames bump `schema_version`
  /// (docs/observability.md#json-schema-versioning).
  std::string ToJson() const;
};

/// \brief One streamed snapshot of the phase-3 search, emitted after a
/// (partition, T) shard completes.
struct SummaryStreamUpdate {
  /// Current best-so-far ranking (at most CharlesOptions::top_n entries),
  /// ordered exactly as the final list orders summaries. Which summaries
  /// appear mid-run depends on scheduling; the \em last update's list equals
  /// the final ranked list.
  std::vector<ChangeSummary> provisional;
  /// (partition, T) shards finished so far, including this one.
  int64_t shards_completed = 0;
  /// Total (partition, T) shards of the run's phase 3.
  int64_t shards_total = 0;
  /// Seconds since the run started.
  double elapsed_seconds = 0.0;
  /// True on the final update of a run cancelled via its StopToken: the
  /// search stopped early, `provisional` is the best ranking known at the
  /// stop, and no further updates will arrive (the run resolves with
  /// Status::Cancelled). Always false on ordinary updates.
  bool cancelled = false;
};

/// \brief Callback channel receiving ranked partial results during a run.
///
/// Pass one to CharlesEngine::Find or FindAsync to observe the search as it
/// happens — a human-in-the-loop UI can show top-ranked summaries early and
/// let the user stop reading long before the sweep finishes. An update is
/// emitted whenever a completed shard changed the provisional set (shards
/// that only rediscover known summaries just advance shards_completed), and
/// always for the final shard, so every run emits at least one update and
/// the last update carries the final ranking.
///
/// Delivery is **buffered**: producers enqueue updates and return
/// immediately, and a dedicated drain thread owned by the stream invokes the
/// callback — so a slow consumer can never stall the phase-3 sweep (workers
/// used to queue behind the run's merge lock while the callback executed).
/// The callback runs on the drain thread, is never invoked concurrently
/// (even when one stream is shared by concurrent runs), and, within one run,
/// observes strictly increasing shards_completed in enqueue order. A run
/// flushes its stream before resolving, so every update — including the
/// final or cancelled one — is delivered before Find()/FindAsync() returns
/// its result. The callback may do I/O, but must not call back into the
/// emitting engine. Streaming never changes the run's result: the final
/// ranked list stays bit-identical to a run without a stream, at any thread
/// count.
class SummaryStream {
 public:
  using Callback = std::function<void(const SummaryStreamUpdate&)>;

  explicit SummaryStream(Callback callback)
      : callback_(std::move(callback)), drain_([this] { DrainLoop(); }) {}

  SummaryStream(const SummaryStream&) = delete;
  SummaryStream& operator=(const SummaryStream&) = delete;

  /// Delivers every still-queued update, then joins the drain thread.
  ~SummaryStream() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    queued_cv_.notify_all();
    drain_.join();
  }

  /// Updates delivered so far (across every run this stream was passed to).
  int64_t updates_emitted() const {
    return updates_.load(std::memory_order_relaxed);
  }

 private:
  friend class CharlesEngine;
  friend class RunPipeline;
  friend struct RunState;

  /// Enqueues one update for the drain thread; never blocks on the callback.
  void Emit(const SummaryStreamUpdate& update) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(update);
      ++enqueued_;
    }
    queued_cv_.notify_one();
  }

  /// Blocks until every update enqueued *before this call* has been
  /// delivered. Called by the pipeline driver on every exit path, so run
  /// results never race their own stream updates. Scoped by enqueue
  /// position, not queue emptiness: on a stream shared by concurrent runs,
  /// a finishing run never waits out updates other runs enqueue later.
  void Flush() {
    std::unique_lock<std::mutex> lock(mu_);
    const int64_t target = enqueued_;
    drained_cv_.wait(lock, [this, target] { return delivered_ >= target; });
  }

  void DrainLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      queued_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      SummaryStreamUpdate update = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      if (callback_) callback_(update);
      updates_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      ++delivered_;
      drained_cv_.notify_all();
    }
  }

  Callback callback_;
  std::mutex mu_;
  std::condition_variable queued_cv_;
  std::condition_variable drained_cv_;
  std::deque<SummaryStreamUpdate> queue_;
  bool stopping_ = false;
  int64_t enqueued_ = 0;   ///< updates ever queued; guarded by mu_
  int64_t delivered_ = 0;  ///< updates whose callback completed; guarded by mu_
  std::atomic<int64_t> updates_{0};
  std::thread drain_;
};

/// \brief The ChARLES diff discovery engine (paper, Figure 3 right half).
///
/// Orchestrates the full pipeline: snapshot diff → attribute shortlists →
/// (C, T) subset enumeration → partition discovery → transformation
/// discovery (with normality snapping) → scoring → dedup → ranking.
///
/// An engine is stateless across runs; all state lives in the options (and
/// optionally an attached EngineContext), so one engine may serve concurrent
/// Find() calls from multiple threads.
class CharlesEngine {
 public:
  /// An engine owning its execution resources: each Find() spawns (and
  /// joins) a private pool of CharlesOptions::num_threads workers and uses a
  /// run-local leaf-fit cache.
  explicit CharlesEngine(CharlesOptions options) : options_(std::move(options)) {}

  /// \brief An engine attached to a long-lived EngineContext.
  ///
  /// Every Find() schedules on the context's pool and reuses its cross-run
  /// leaf-fit cache, so repeated queries skip thread spawn and re-fitting.
  /// The context's thread count supersedes CharlesOptions::num_threads (a
  /// null context behaves exactly like the single-argument constructor).
  /// The context must outlive the engine.
  CharlesEngine(CharlesOptions options, EngineContext* context)
      : options_(std::move(options)), context_(context) {}

  const CharlesOptions& options() const { return options_; }

  /// The attached context, or nullptr for a self-contained engine.
  EngineContext* context() const { return context_; }

  /// \brief Runs the pipeline over two snapshots with identical schemas and
  /// entity sets (paper assumptions; violations yield InvalidArgument).
  ///
  /// When `stream` is non-null, ranked partial results are emitted as
  /// phase-3 shards complete (see SummaryStream); the returned list is
  /// unaffected by streaming. When `stop` is non-null the search is
  /// cancellable (see StopToken): on a stop, the best ranking known so far
  /// is emitted on `stream` with `cancelled` set and the call resolves with
  /// Status::Cancelled.
  Result<SummaryList> Find(const Table& source, const Table& target,
                           SummaryStream* stream = nullptr,
                           const StopToken* stop = nullptr) const;

  /// \brief Non-blocking Find(): runs the search on a dedicated thread and
  /// resolves the future with its result.
  ///
  /// Combine with a SummaryStream to consume top-ranked summaries while the
  /// sweep is still running, and a StopToken to abandon it early (the
  /// future then resolves with Status::Cancelled). The engine, both tables,
  /// the stream, the token, and any attached context must stay alive until
  /// the future resolves.
  std::future<Result<SummaryList>> FindAsync(const Table& source,
                                             const Table& target,
                                             SummaryStream* stream = nullptr,
                                             const StopToken* stop = nullptr) const;

  /// Rvalue snapshots are rejected at compile time: the async thread reads
  /// the tables by reference, so a temporary would dangle before it resolves.
  std::future<Result<SummaryList>> FindAsync(Table&& source, const Table& target,
                                             SummaryStream* stream = nullptr,
                                             const StopToken* stop = nullptr) const =
      delete;
  std::future<Result<SummaryList>> FindAsync(const Table& source, Table&& target,
                                             SummaryStream* stream = nullptr,
                                             const StopToken* stop = nullptr) const =
      delete;

  /// Legacy name for Find() without streaming.
  Result<SummaryList> Run(const Table& source, const Table& target) const {
    return Find(source, target);
  }

  /// \name Leaf-fit cache machinery
  /// Shared with EngineContext; see engine_context.h. The nested aliases are
  /// kept so existing callers keep compiling.
  /// @{
  using LeafFit = ::charles::LeafFit;
  using RowIndicesHash = ::charles::RowIndicesHash;
  /// Thread-local tier: one per (worker, T), keyed by rows alone (lock-free).
  using LeafFitCache =
      std::unordered_map<std::vector<int64_t>, LeafFit, RowIndicesHash>;
  using LeafKey = ::charles::LeafKey;
  using LeafKeyHash = ::charles::LeafKeyHash;
  using SharedLeafFit = ::charles::SharedLeafFit;
  using SharedLeafFitCache = ::charles::SharedLeafFitCache;
  using SharedLeafStatsCache = ::charles::SharedLeafStatsCache;
  /// Thread-local tier of the per-leaf sufficient-statistics cache, keyed by
  /// rows alone (stats are T-independent). Values are shared_ptrs into the
  /// cross-worker tier, so promotion between tiers copies a handle.
  using LeafStatsCache =
      std::unordered_map<std::vector<int64_t>,
                         std::shared_ptr<const SufficientStats>, RowIndicesHash>;
  /// \brief One leaf's exact score evidence from a distributed
  /// kScorePartials sweep: per transformation subset, the merged
  /// (Σ|y − ŷ|, exact-within-tolerance count, n) of the leaf's *unsnapped*
  /// fast-path model. `valid[t]` marks subsets whose probe was solved and
  /// evaluated; both vectors are indexed by t_index. The L1 component
  /// (ScorePartials::error()) doubles as the SnapModel accuracy baseline, so
  /// one score round replaces the former kErrorPartials round entirely.
  struct LeafScoreEvidence {
    std::vector<uint8_t> valid;
    std::vector<ScorePartials> partials;
  };
  /// Keyed by the leaf's row indices (like the no-change evidence), so
  /// per-fit lookups probe with the leaf's own vector — no key copies.
  using LeafScoreEvidenceMap =
      std::unordered_map<std::vector<int64_t>, LeafScoreEvidence, RowIndicesHash>;
  /// @}

  /// \brief Per-shard view of the run's sufficient-statistics machinery,
  /// threaded through BuildSummary into FitLeaf.
  ///
  /// `shortlist` names every transformation-candidate column in stats
  /// accumulation order; `t_subset` holds the current T's indices into that
  /// order. A leaf's stats are looked up in `local`, then `shared`, then
  /// accumulated in one scan over the leaf's rows (serial row order, so the
  /// moments are bit-identical on any thread) and published to both tiers.
  /// All pointers must outlive the BuildSummary call; any of them may be
  /// null, which (like a null workspace) disables the fast path.
  struct LeafStatsWorkspace {
    const std::vector<std::string>* shortlist = nullptr;
    const std::vector<int>* t_subset = nullptr;
    LeafStatsCache* local = nullptr;
    SharedLeafStatsCache* shared = nullptr;
    uint64_t fingerprint = 0;
    /// Block size of the canonical block-structured accumulation (see
    /// AccumulateRowBlocks); must be set to CharlesOptions::stats_block_rows
    /// so lazily accumulated leaves match coordinator-merged ones
    /// bit-for-bit. Deliberately defaulted to an invalid 0 — a workspace
    /// without an explicit block size disables the stats fast path (QR per
    /// leaf) rather than silently folding at a block size the rest of the
    /// run is not using.
    int64_t block_rows = 0;
    /// Per-leaf snap evidence from a distributed sweep, keyed by the leaf's
    /// row indices: max |y_new − y_old| over the leaf. When a leaf is
    /// present, FitLeaf decides no-change from it instead of rescanning the
    /// rows (max folds exactly across shards, so the decision is identical).
    /// Null or missing entries fall back to the serial scan.
    const std::unordered_map<std::vector<int64_t>, double, RowIndicesHash>*
        nochange_max_delta = nullptr;
    /// Exact score evidence from a distributed kScorePartials sweep, keyed
    /// by the leaf's row indices. When the current t_index is marked valid,
    /// FitLeaf hands the merged partials' L1 projection to SnapModel as the
    /// accuracy-guard baseline; when snapping is a no-op the partials also
    /// become the leaf's score fold verbatim — bit-identical to the central
    /// canonical fold they replace
    /// (docs/distributed.md#the-determinism-argument). Null or missing
    /// entries fold the same partials centrally.
    const LeafScoreEvidenceMap* score_evidence = nullptr;
    /// The run Scorer's exactness band (Scorer::exact_tolerance()). Every
    /// per-leaf ScorePartials fold must use the band of the scorer that will
    /// consume it; a negative value (the default) disables row-free scoring
    /// so a workspace built without a run scorer keeps the ŷ row-scan path.
    double score_tolerance = -1.0;
  };

  /// Per-worker counters folded into SummaryList diagnostics at the barrier.
  struct LeafFitStats {
    int64_t computed = 0;     ///< FitLeaf invocations
    int64_t local_hits = 0;   ///< served by the worker's own cache
    int64_t shared_hits = 0;  ///< served via SharedLeafFitCache
    /// Candidates scored row-free from merged per-leaf ScorePartials.
    int64_t score_partials_candidates = 0;
    /// Candidates scored by materializing a run-wide ŷ (no run scorer).
    int64_t score_yhat_materializations = 0;
    /// Per-leaf score folds performed centrally inside FitLeaf/BuildSummary.
    int64_t score_leaf_folds = 0;
  };

  /// \brief Builds and scores one summary for a fixed partitioning.
  ///
  /// Exposed for tests, baselines, and ablations: fits a transformation on
  /// every leaf (detecting no-change partitions), snaps constants, assembles
  /// predictions, and scores. `y_old`/`y_new` align with source rows. When
  /// `cache` is non-null, leaf fits are reused across calls sharing the same
  /// transformation subset. `shared_cache` (keyed by `t_index` and
  /// `cache_fingerprint`) additionally shares fits across workers of a
  /// parallel run and across runs of an EngineContext; `stats` tallies
  /// compute/reuse counts for diagnostics. `column_cache` (optional, must
  /// cover `transform_attrs` over `source`) lets leaf fits gather features
  /// from pre-converted columns instead of re-converting per leaf.
  /// `stats_workspace` (optional) enables the sufficient-statistics OLS fast
  /// path — one row scan per leaf shared across every T — with automatic QR
  /// fallback per leaf; see LeafStatsWorkspace. `scorer` (optional) is the
  /// run-level Scorer: when non-null and the workspace carries its
  /// score_tolerance, the summary is scored row-free by merging per-leaf
  /// ScorePartials in leaf order — no run-wide ŷ vector is ever built; when
  /// null, the call falls back to materializing ŷ and constructing a
  /// per-call Scorer (external/ablation path).
  Result<ChangeSummary> BuildSummary(
      const Table& source, const std::vector<double>& y_old,
      const std::vector<double>& y_new, const PartitionCandidate& candidate,
      const std::vector<std::string>& transform_attrs,
      const std::vector<std::string>& condition_attrs, LeafFitCache* cache = nullptr,
      SharedLeafFitCache* shared_cache = nullptr, size_t t_index = 0,
      LeafFitStats* stats = nullptr, uint64_t cache_fingerprint = 0,
      const ColumnCache* column_cache = nullptr,
      const LeafStatsWorkspace* stats_workspace = nullptr,
      const Scorer* scorer = nullptr) const;

 private:
  /// The staged pipeline Find() delegates to; stages call BuildSummary and
  /// read the engine's options/context (see core/run_pipeline.h).
  friend class RunPipeline;

  /// Fits one partition's transformation: no-change detection, OLS on T
  /// (sufficient-statistics solve when `stats_workspace` provides one, row-
  /// level QR otherwise or on ill-conditioning), normality snapping with an
  /// exact L1 baseline (shard-merged or centrally folded; see
  /// LeafStatsWorkspace::score_evidence), and — when the workspace carries a
  /// score_tolerance — a canonical per-leaf ScorePartials fold stored on the
  /// returned fit. `column_cache` as in BuildSummary.
  Result<LeafFit> FitLeaf(const Table& source, const std::vector<double>& y_old,
                          const std::vector<double>& y_new, const RowSet& rows,
                          const std::vector<std::string>& transform_attrs,
                          const ColumnCache* column_cache = nullptr,
                          const LeafStatsWorkspace* stats_workspace = nullptr,
                          size_t t_index = 0,
                          LeafFitStats* stats = nullptr) const;

  CharlesOptions options_;
  EngineContext* context_ = nullptr;
};

/// \brief One-call convenience API: SummarizeChanges(Ds, Dt, options).
Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options);

/// Same, attached to a long-lived context (serving / repeated queries).
Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options,
                                     EngineContext* context);

}  // namespace charles

#endif  // CHARLES_CORE_ENGINE_H_
