#ifndef CHARLES_CORE_ENGINE_H_
#define CHARLES_CORE_ENGINE_H_

#include <cstdint>
#include <unordered_map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "parallel/sharded_cache.h"
#include "core/partition_finder.h"
#include "core/setup_assistant.h"
#include "core/summary.h"
#include "diff/diff.h"
#include "table/table.h"

namespace charles {

/// \brief Output of one engine run: ranked summaries plus search diagnostics.
struct SummaryList {
  /// Top-N summaries, highest score first.
  std::vector<ChangeSummary> summaries;

  /// The attribute shortlists the run used (assistant output or overrides).
  SetupResult setup;

  /// \name Search-space diagnostics.
  /// @{
  int64_t condition_subsets = 0;    ///< |{C ⊆ A_cond : |C| ≤ c}|
  int64_t transform_subsets = 0;    ///< |{T ⊆ A_tran : |T| ≤ t}| (incl. ∅)
  int64_t labelings = 0;            ///< distinct clusterings pooled
  int64_t partitions = 0;           ///< distinct induced partitionings
  int64_t candidates_evaluated = 0; ///< summaries built and scored
  int64_t candidates_deduped = 0;   ///< dropped as structural duplicates
  int threads_used = 1;             ///< worker threads the run executed on
  int64_t leaf_fits_computed = 0;   ///< OLS leaf fits actually performed
  int64_t leaf_fits_reused = 0;     ///< leaf fits served from a cache
  double elapsed_seconds = 0.0;
  double clustering_seconds = 0.0;  ///< phase 1: change-signal k-means
  double induction_seconds = 0.0;   ///< phase 2: condition trees
  double fitting_seconds = 0.0;     ///< phase 3: transforms + scoring
  /// @}

  /// Rendering of the ranked list (one block per summary).
  std::string ToString() const;
};

/// \brief The ChARLES diff discovery engine (paper, Figure 3 right half).
///
/// Orchestrates the full pipeline: snapshot diff → attribute shortlists →
/// (C, T) subset enumeration → partition discovery → transformation
/// discovery (with normality snapping) → scoring → dedup → ranking.
class CharlesEngine {
 public:
  explicit CharlesEngine(CharlesOptions options) : options_(std::move(options)) {}

  const CharlesOptions& options() const { return options_; }

  /// Runs the pipeline over two snapshots with identical schemas and entity
  /// sets (paper assumptions; violations yield InvalidArgument).
  Result<SummaryList> Run(const Table& source, const Table& target) const;

  /// \brief A fitted leaf transformation, cacheable by (partition rows, T).
  ///
  /// Distinct condition trees frequently share leaves (the same row set
  /// described by different conditions); the engine memoizes leaf fits per
  /// transformation subset so each (rows, T) pair is fitted once.
  struct LeafFit {
    LinearTransform transform;
    std::vector<double> predictions;  ///< Aligned with the partition rows.
    double partition_mae = 0.0;
  };

  struct RowIndicesHash {
    size_t operator()(const std::vector<int64_t>& rows) const {
      size_t h = 0xcbf29ce484222325ull;
      for (int64_t r : rows) h = (h ^ static_cast<size_t>(r)) * 0x100000001b3ull;
      return h;
    }
  };
  using LeafFitCache =
      std::unordered_map<std::vector<int64_t>, LeafFit, RowIndicesHash>;

  /// \brief Key of the cross-worker leaf-fit cache: (T-subset index, rows).
  ///
  /// The transformation subset is part of the key because the same partition
  /// fitted on different T yields different models.
  struct LeafKey {
    size_t t_index = 0;
    std::vector<int64_t> rows;
    bool operator==(const LeafKey& other) const {
      return t_index == other.t_index && rows == other.rows;
    }
  };
  struct LeafKeyHash {
    size_t operator()(const LeafKey& key) const {
      return RowIndicesHash{}(key.rows) ^ (key.t_index * 0x9e3779b97f4a7c15ull);
    }
  };

  /// Lock-sharded cache shared by every worker of a parallel run. Workers
  /// consult their thread-local LeafFitCache first (lock-free), then this,
  /// and publish freshly computed fits here so other workers reuse them; the
  /// barrier merge therefore happens incrementally, shard by shard.
  using SharedLeafFitCache = ShardedCache<LeafKey, LeafFit, LeafKeyHash>;

  /// Per-worker counters folded into SummaryList diagnostics at the barrier.
  struct LeafFitStats {
    int64_t computed = 0;     ///< FitLeaf invocations
    int64_t local_hits = 0;   ///< served by the worker's own cache
    int64_t shared_hits = 0;  ///< served by another worker via SharedLeafFitCache
  };

  /// \brief Builds and scores one summary for a fixed partitioning.
  ///
  /// Exposed for tests, baselines, and ablations: fits a transformation on
  /// every leaf (detecting no-change partitions), snaps constants, assembles
  /// predictions, and scores. `y_old`/`y_new` align with source rows. When
  /// `cache` is non-null, leaf fits are reused across calls sharing the same
  /// transformation subset. `shared_cache` (keyed by `t_index`) additionally
  /// shares fits across workers of a parallel run; `stats` tallies
  /// compute/reuse counts for diagnostics.
  Result<ChangeSummary> BuildSummary(const Table& source,
                                     const std::vector<double>& y_old,
                                     const std::vector<double>& y_new,
                                     const PartitionCandidate& candidate,
                                     const std::vector<std::string>& transform_attrs,
                                     const std::vector<std::string>& condition_attrs,
                                     LeafFitCache* cache = nullptr,
                                     SharedLeafFitCache* shared_cache = nullptr,
                                     size_t t_index = 0,
                                     LeafFitStats* stats = nullptr) const;

 private:
  /// Fits one partition's transformation: no-change detection, OLS on T,
  /// normality snapping.
  Result<LeafFit> FitLeaf(const Table& source, const std::vector<double>& y_old,
                          const std::vector<double>& y_new, const RowSet& rows,
                          const std::vector<std::string>& transform_attrs) const;

  CharlesOptions options_;
};

/// \brief One-call convenience API: SummarizeChanges(Ds, Dt, options).
Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options);

}  // namespace charles

#endif  // CHARLES_CORE_ENGINE_H_
