#ifndef CHARLES_CORE_SUMMARY_H_
#define CHARLES_CORE_SUMMARY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_tree.h"
#include "core/transform.h"
#include "expr/expr.h"
#include "table/row_set.h"
#include "table/table.h"

namespace charles {

/// \brief One conditional transformation (CT): condition → transformation.
///
/// The paper's unit of explanation: "employees with a PhD (condition) got a
/// 5% bonus increase plus $1000 (transformation)".
struct ConditionalTransform {
  ExprPtr condition;
  LinearTransform transform;

  /// Source rows satisfying the condition when the CT was discovered.
  RowSet rows;
  /// rows.size() / table rows.
  double coverage = 0.0;
  /// Mean absolute error of the transformation on its partition.
  double partition_mae = 0.0;

  /// `edu = 'PhD'  →  new_bonus = 1.05 × old_bonus + 1000`.
  std::string ToString() const;
};

/// \brief Per-component interpretability detail, reported with each summary.
struct ScoreBreakdown {
  double accuracy = 0.0;
  double interpretability = 0.0;
  double score = 0.0;
  /// \name Interpretability sub-scores (each in [0, 1]).
  /// @{
  double summary_size = 0.0;
  double condition_simplicity = 0.0;
  double transform_simplicity = 0.0;
  double coverage = 0.0;
  double normality = 0.0;
  /// @}
};

/// \brief A change summary: a set of CTs whose conditions partition the data,
/// plus its scores and the linear model tree it renders as.
class ChangeSummary {
 public:
  ChangeSummary() = default;
  ChangeSummary(std::vector<ConditionalTransform> cts, std::string target_attribute)
      : cts_(std::move(cts)), target_attribute_(std::move(target_attribute)) {}

  const std::vector<ConditionalTransform>& cts() const { return cts_; }
  std::vector<ConditionalTransform>* mutable_cts() { return &cts_; }
  const std::string& target_attribute() const { return target_attribute_; }

  int num_cts() const { return static_cast<int>(cts_.size()); }

  /// \brief Predicted new target values for every row of `source`.
  ///
  /// Re-evaluates each CT's condition (so the summary can be applied to
  /// tables other than the one it was mined from); rows matching no CT keep
  /// their old value. When conditions overlap, the first matching CT wins.
  Result<std::vector<double>> Apply(const Table& source) const;

  /// Scores, attached by the Scorer.
  const ScoreBreakdown& scores() const { return scores_; }
  void set_scores(const ScoreBreakdown& scores) { scores_ = scores; }

  /// The Figure-2 rendering; may be null for hand-built summaries.
  std::shared_ptr<const ModelTree> tree() const { return tree_; }
  void set_tree(std::shared_ptr<const ModelTree> tree) { tree_ = std::move(tree); }

  /// Attribute bookkeeping for reporting which (C, T) produced the summary.
  const std::vector<std::string>& condition_attributes() const {
    return condition_attributes_;
  }
  const std::vector<std::string>& transform_attributes() const {
    return transform_attributes_;
  }
  void set_attributes(std::vector<std::string> condition_attrs,
                      std::vector<std::string> transform_attrs) {
    condition_attributes_ = std::move(condition_attrs);
    transform_attributes_ = std::move(transform_attrs);
  }

  /// Canonical text used for deduplication: CT strings, sorted.
  std::string Signature() const;

  /// Multi-line rendering: one CT per line plus the score line.
  std::string ToString() const;

 private:
  std::vector<ConditionalTransform> cts_;
  std::string target_attribute_;
  std::vector<std::string> condition_attributes_;
  std::vector<std::string> transform_attributes_;
  ScoreBreakdown scores_;
  std::shared_ptr<const ModelTree> tree_;
};

}  // namespace charles

#endif  // CHARLES_CORE_SUMMARY_H_
