#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_set>

#include "common/combinatorics.h"
#include "common/string_util.h"
#include "core/normality.h"
#include "core/scoring.h"
#include "distributed/coordinator.h"
#include "distributed/in_process_backend.h"
#include "distributed/shard_planner.h"
#include "distributed/subprocess_backend.h"
#include "linalg/stats.h"
#include "linalg/suffstats.h"
#include "parallel/parallel.h"

namespace charles {

std::string SummaryList::ToString() const {
  std::string out;
  for (size_t i = 0; i < summaries.size(); ++i) {
    out += "#" + std::to_string(i + 1) + " (score " +
           FormatDouble(summaries[i].scores().score, 4) + ")\n";
    out += summaries[i].ToString();
  }
  out += "evaluated " + std::to_string(candidates_evaluated) + " candidates over " +
         std::to_string(condition_subsets) + " condition subsets x " +
         std::to_string(transform_subsets) + " transform subsets in " +
         FormatDouble(elapsed_seconds, 3) + "s on " + std::to_string(threads_used) +
         (threads_used == 1 ? " thread\n" : " threads\n");
  return out;
}

namespace {

/// Builds the Figure-2 model tree from the condition-induction tree, pairing
/// leaves (YES-first traversal order) with the CTs built from them.
std::unique_ptr<ModelTreeNode> BuildModelTreeNode(
    const DecisionTreeNode& node, const std::vector<ConditionalTransform>& cts,
    size_t* leaf_index) {
  auto out = std::make_unique<ModelTreeNode>();
  if (node.is_leaf) {
    out->is_leaf = true;
    const ConditionalTransform& ct = cts[*leaf_index];
    ++*leaf_index;
    if (!ct.transform.is_no_change()) {
      out->transform = ct.transform;
    }
    out->coverage = ct.coverage;
    out->count = ct.rows.size();
    return out;
  }
  out->is_leaf = false;
  out->split = node.condition;
  out->yes = BuildModelTreeNode(*node.yes, cts, leaf_index);
  out->no = BuildModelTreeNode(*node.no, cts, leaf_index);
  return out;
}

/// True if the summary's transformations read the target's own old value —
/// the natural "update semantics" phrasing (new_bonus = f(old_bonus, ...)).
bool UsesOldTarget(const ChangeSummary& summary) {
  const auto& attrs = summary.transform_attributes();
  return std::find(attrs.begin(), attrs.end(), summary.target_attribute()) !=
         attrs.end();
}

/// Score-descending with deterministic tie-breaks: fewer CTs, then
/// self-referential transformations, then text. Scores are quantized to a
/// 1e-7 grid so floating-point noise cannot override the semantic
/// tie-breaks (quantization keeps the comparison a strict weak order).
int64_t QuantizedScore(const ChangeSummary& s) {
  return static_cast<int64_t>(std::llround(s.scores().score * 1e7));
}

bool SummaryOrder(const ChangeSummary& a, const ChangeSummary& b) {
  int64_t qa = QuantizedScore(a);
  int64_t qb = QuantizedScore(b);
  if (qa != qb) return qa > qb;
  if (a.num_cts() != b.num_cts()) return a.num_cts() < b.num_cts();
  bool a_old = UsesOldTarget(a);
  bool b_old = UsesOldTarget(b);
  if (a_old != b_old) return a_old;
  return a.Signature() < b.Signature();
}

uint64_t FnvMixDoubles(uint64_t h, const std::vector<double>& values) {
  for (double v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = FnvMixBytes(h, &bits, sizeof(bits));
  }
  return h;
}

uint64_t FnvMixString(uint64_t h, const std::string& s) {
  h = FnvMixBytes(h, s.data(), s.size());
  // Length separator so {"ab","c"} and {"a","bc"} hash differently.
  uint64_t len = s.size();
  return FnvMixBytes(h, &len, sizeof(len));
}

/// \brief Hash of everything a cached leaf fit depends on beyond its LeafKey.
///
/// A leaf fit is a pure function of (transform columns at the leaf's rows,
/// y_old, y_new at those rows, the T-subset enumeration mapping t_index to
/// attribute names, the target attribute, the numeric tolerance, and the
/// normality options). The fingerprint hashes all of those run-wide, so a
/// long-lived EngineContext cache can serve fits across runs: runs whose
/// inputs differ get different fingerprints (up to 64-bit FNV-1a collisions,
/// vanishingly unlikely but not impossible) and therefore never observe each
/// other's fits when sharing one cache.
uint64_t ComputeRunFingerprint(const CharlesOptions& options,
                               const std::vector<std::string>& tran_names,
                               const ColumnCache& tran_columns,
                               const std::vector<double>& y_old,
                               const std::vector<double>& y_new) {
  uint64_t h = kFnvOffsetBasis;
  h = FnvMixString(h, options.target_attribute);
  const double knobs[] = {options.numeric_tolerance,
                          options.normality.enable_snapping ? 1.0 : 0.0,
                          options.normality.max_relative_coefficient_shift,
                          options.normality.max_relative_accuracy_loss,
                          options.normality.exactness_tolerance,
                          static_cast<double>(options.max_transform_attrs),
                          // The two solvers round differently at the ~1e-12
                          // level, so runs on different paths must never
                          // observe each other's fits. The statistics block
                          // size picks the evaluation order within the fast
                          // path, so it separates fits the same way.
                          options.use_sufficient_stats ? 1.0 : 0.0,
                          // Only the fast path folds at block granularity;
                          // QR-path runs with different block sizes produce
                          // identical fits and may share cache entries.
                          options.use_sufficient_stats
                              ? static_cast<double>(options.stats_block_rows)
                              : 0.0};
  h = FnvMixBytes(h, knobs, sizeof(knobs));
  for (const std::string& name : tran_names) {
    h = FnvMixString(h, name);
    const std::vector<double>* values = tran_columns.Find(name);
    if (values != nullptr) h = FnvMixDoubles(h, *values);
  }
  h = FnvMixDoubles(h, y_old);
  h = FnvMixDoubles(h, y_new);
  return h;
}

/// \brief The leaf's sufficient statistics over the run's full
/// transformation shortlist: local tier, then shared tier, then the
/// canonical block-structured accumulation published to both.
///
/// Accumulation is the AccumulateRowBlocks fold — per-block partials in
/// RowSet (= serial) row order, merged in block order — so the moments are
/// bit-identical no matter which worker performs it *and* no matter whether
/// a distributed coordinator pre-merged them from row-range shards: every
/// executor replays the same per-block partials and the same fold (the
/// distributed determinism contract, docs/distributed.md). Returns nullptr
/// when a shortlist column is missing from the cache (fast path
/// unavailable).
std::shared_ptr<const SufficientStats> FindOrAccumulateLeafStats(
    const CharlesEngine::LeafStatsWorkspace& ws, const RowSet& rows,
    const std::vector<double>& y_new, const ColumnCache& columns) {
  // A workspace without an explicit block size could cache moments folded
  // at a different block size than the run's other producers use — refuse
  // the fast path instead (see LeafStatsWorkspace::block_rows).
  if (ws.block_rows < 1) return nullptr;
  if (ws.local != nullptr) {
    auto it = ws.local->find(rows.indices());
    if (it != ws.local->end()) return it->second;
  }
  CharlesEngine::LeafKey key;
  if (ws.shared != nullptr) {
    key = CharlesEngine::LeafKey{ws.fingerprint, 0, rows.indices()};
    std::shared_ptr<const SufficientStats> found;
    if (ws.shared->Lookup(key, &found)) {
      if (ws.local != nullptr) ws.local->emplace(rows.indices(), found);
      return found;
    }
  }
  std::vector<const std::vector<double>*> cols;
  if (!columns.ResolveColumns(*ws.shortlist, &cols)) return nullptr;
  std::shared_ptr<const SufficientStats> out =
      std::make_shared<const SufficientStats>(
          AccumulateRowBlocks(cols, y_new, rows.indices(), ws.block_rows));
  if (ws.shared != nullptr) ws.shared->Insert(std::move(key), out);
  if (ws.local != nullptr) ws.local->emplace(rows.indices(), out);
  return out;
}

/// \brief Rebuilds a full LeafFit from its compact cached form.
///
/// Predictions are re-evaluated from the cached feature columns through the
/// same PredictRow dot product the original fit used on its gathered matrix,
/// so the rehydrated fit is bit-identical to the one that was cached.
/// Returns false (leaving `out` unspecified) when a feature column is
/// missing from the cache; the caller then treats the lookup as a miss.
bool RehydrateLeafFit(const SharedLeafFit& compact, const RowSet& rows,
                      const std::vector<double>& y_old,
                      const ColumnCache* column_cache,
                      CharlesEngine::LeafFit* out) {
  out->transform = compact.transform;
  out->partition_mae = compact.partition_mae;
  out->predictions.clear();
  out->predictions.reserve(static_cast<size_t>(rows.size()));
  if (compact.transform.is_no_change()) {
    for (int64_t row : rows) {
      out->predictions.push_back(y_old[static_cast<size_t>(row)]);
    }
    return true;
  }
  if (column_cache == nullptr) return false;
  const LinearModel& model = compact.transform.model();
  std::vector<const std::vector<double>*> cols;
  if (!column_cache->ResolveColumns(model.feature_names, &cols)) return false;
  std::vector<double> features(cols.size());
  for (int64_t r = 0; r < rows.size(); ++r) {
    size_t row = static_cast<size_t>(rows[r]);
    for (size_t f = 0; f < cols.size(); ++f) features[f] = (*cols[f])[row];
    out->predictions.push_back(model.PredictRow(features.data()));
  }
  return true;
}

}  // namespace

Result<CharlesEngine::LeafFit> CharlesEngine::FitLeaf(
    const Table& source, const std::vector<double>& y_old,
    const std::vector<double>& y_new, const RowSet& rows,
    const std::vector<std::string>& transform_attrs,
    const ColumnCache* column_cache,
    const LeafStatsWorkspace* stats_workspace) const {
  const std::string& target = options_.target_attribute;
  // No-change detection: the whole partition kept its old value. A
  // distributed sweep already folded max |y_new − y_old| per leaf (max is
  // exactly associative, so the evidence equals what this scan would
  // compute); leaves without evidence are scanned serially.
  const double* shard_max_delta = nullptr;
  if (stats_workspace != nullptr &&
      stats_workspace->nochange_max_delta != nullptr) {
    auto it = stats_workspace->nochange_max_delta->find(rows.indices());
    if (it != stats_workspace->nochange_max_delta->end()) {
      shard_max_delta = &it->second;
    }
  }
  bool unchanged = true;
  if (shard_max_delta != nullptr) {
    unchanged = *shard_max_delta <= options_.numeric_tolerance;
  } else {
    for (int64_t row : rows) {
      if (std::abs(y_new[static_cast<size_t>(row)] -
                   y_old[static_cast<size_t>(row)]) > options_.numeric_tolerance) {
        unchanged = false;
        break;
      }
    }
  }
  LeafFit fit;
  if (unchanged) {
    fit.transform = LinearTransform::NoChange(target);
    fit.partition_mae = 0.0;
    fit.predictions.reserve(static_cast<size_t>(rows.size()));
    for (int64_t row : rows) fit.predictions.push_back(y_old[static_cast<size_t>(row)]);
    return fit;
  }

  // Transformation discovery: per-partition OLS on T.
  //
  // Fast path: solve the T-subset's normal equations from the leaf's
  // sufficient statistics — accumulated in one scan over the leaf's rows and
  // reused by every other T-subset that visits this leaf. Ill-conditioned or
  // underdetermined systems fail the solve and drop to the row-level QR
  // ladder below, which is also the path when no workspace is attached.
  LinearModel model;
  bool have_model = false;
  if (options_.use_sufficient_stats && stats_workspace != nullptr &&
      stats_workspace->shortlist != nullptr && stats_workspace->t_subset != nullptr &&
      stats_workspace->local != nullptr && stats_workspace->shared != nullptr &&
      column_cache != nullptr) {
    std::shared_ptr<const SufficientStats> leaf_stats =
        FindOrAccumulateLeafStats(*stats_workspace, rows, y_new, *column_cache);
    if (leaf_stats != nullptr) {
      Result<LinearModel> fast = LinearRegression::FitFromStats(
          *leaf_stats, *stats_workspace->t_subset, transform_attrs);
      if (fast.ok()) {
        model = std::move(*fast);
        have_model = true;
      }
    }
  }

  // Feature matrix for snapping, predictions, and the QR path. Features come
  // from the run's pre-converted ColumnCache when available (the engine
  // always passes one), falling back to per-leaf gather + conversion.
  Matrix x(rows.size(), static_cast<int64_t>(transform_attrs.size()));
  for (size_t f = 0; f < transform_attrs.size(); ++f) {
    const std::vector<double>* full =
        column_cache != nullptr ? column_cache->Find(transform_attrs[f]) : nullptr;
    if (full != nullptr) {
      for (int64_t r = 0; r < rows.size(); ++r) {
        x.At(r, static_cast<int64_t>(f)) = (*full)[static_cast<size_t>(rows[r])];
      }
      continue;
    }
    CHARLES_ASSIGN_OR_RETURN(const Column* col, source.ColumnByName(transform_attrs[f]));
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values, col->GatherDoubles(rows));
    for (int64_t r = 0; r < rows.size(); ++r) {
      x.At(r, static_cast<int64_t>(f)) = values[static_cast<size_t>(r)];
    }
  }
  std::vector<double> y_part(static_cast<size_t>(rows.size()));
  for (int64_t r = 0; r < rows.size(); ++r) {
    y_part[static_cast<size_t>(r)] = y_new[static_cast<size_t>(rows[r])];
  }
  if (!have_model) {
    CHARLES_ASSIGN_OR_RETURN(model, LinearRegression::Fit(x, y_part, transform_attrs));
  }
  NormalityOptions normality = options_.normality;
  normality.exactness_tolerance =
      std::max(normality.exactness_tolerance, options_.numeric_tolerance);
  model = SnapModel(model, x, y_part, normality);
  fit.predictions = model.PredictBatch(x);
  // The moments pin down r²/rmse exactly but only estimate the L1 error;
  // recompute it from the prediction pass (the same computation SnapModel
  // and the QR path's diagnostics perform, so this is a no-op for them).
  model.mae = MeanAbsoluteError(fit.predictions, y_part);
  fit.partition_mae = model.mae;
  fit.transform = LinearTransform::Linear(target, std::move(model));
  return fit;
}

Result<ChangeSummary> CharlesEngine::BuildSummary(
    const Table& source, const std::vector<double>& y_old,
    const std::vector<double>& y_new, const PartitionCandidate& candidate,
    const std::vector<std::string>& transform_attrs,
    const std::vector<std::string>& condition_attrs, LeafFitCache* cache,
    SharedLeafFitCache* shared_cache, size_t t_index, LeafFitStats* stats,
    uint64_t cache_fingerprint, const ColumnCache* column_cache,
    const LeafStatsWorkspace* stats_workspace) const {
  const std::string& target = options_.target_attribute;
  int64_t n = source.num_rows();
  std::vector<double> y_hat = y_old;
  std::vector<ConditionalTransform> cts;
  cts.reserve(candidate.leaves.size());

  for (const DecisionTree::Leaf& leaf : candidate.leaves) {
    const RowSet& rows = leaf.rows;
    ConditionalTransform ct;
    ct.condition = leaf.condition;
    ct.rows = rows;
    ct.coverage = rows.Coverage(n);

    // Tiered lookup: worker-local cache (lock-free), then the cross-worker
    // sharded cache, then an actual fit published to both tiers. The shared
    // tier stores fits compactly (no predictions; see SharedLeafFit), so a
    // shared hit rehydrates the predictions from the cached columns. Fits
    // are deterministic in (rows, T) and rehydration replays the original
    // prediction arithmetic, so which tier serves a hit never changes the
    // resulting summary.
    const LeafFit* fit = nullptr;
    LeafFit local;
    if (cache != nullptr) {
      auto it = cache->find(rows.indices());
      if (it != cache->end()) {
        if (stats != nullptr) ++stats->local_hits;
        fit = &it->second;
      } else {
        LeafKey key;  // built once per local miss; shared by Lookup and Insert
        if (shared_cache != nullptr) {
          key = LeafKey{cache_fingerprint, t_index, rows.indices()};
          SharedLeafFit compact;
          if (shared_cache->Lookup(key, &compact) &&
              RehydrateLeafFit(compact, rows, y_old, column_cache, &local)) {
            if (stats != nullptr) ++stats->shared_hits;
            it = cache->emplace(rows.indices(), std::move(local)).first;
            fit = &it->second;
          }
        }
        if (fit == nullptr) {
          CHARLES_ASSIGN_OR_RETURN(
              local, FitLeaf(source, y_old, y_new, rows, transform_attrs, column_cache,
                             stats_workspace));
          if (stats != nullptr) ++stats->computed;
          if (shared_cache != nullptr) {
            shared_cache->Insert(std::move(key),
                                 SharedLeafFit{local.transform, local.partition_mae});
          }
          it = cache->emplace(rows.indices(), std::move(local)).first;
          fit = &it->second;
        }
      }
    } else {
      CHARLES_ASSIGN_OR_RETURN(
          local, FitLeaf(source, y_old, y_new, rows, transform_attrs, column_cache,
                         stats_workspace));
      if (stats != nullptr) ++stats->computed;
      fit = &local;
    }
    ct.transform = fit->transform;
    ct.partition_mae = fit->partition_mae;
    for (int64_t r = 0; r < rows.size(); ++r) {
      y_hat[static_cast<size_t>(rows[r])] = fit->predictions[static_cast<size_t>(r)];
    }
    cts.push_back(std::move(ct));
  }

  ChangeSummary summary(std::move(cts), target);
  summary.set_attributes(condition_attrs, transform_attrs);

  // Attach the model tree (condition tree + fitted leaf transforms).
  if (candidate.tree != nullptr) {
    size_t leaf_index = 0;
    auto root = BuildModelTreeNode(candidate.tree->root(), summary.cts(), &leaf_index);
    summary.set_tree(std::make_shared<ModelTree>(std::move(root)));
  }

  Scorer scorer(options_, y_old, y_new);
  summary.set_scores(scorer.Score(summary, y_hat));
  return summary;
}

Result<SummaryList> CharlesEngine::Find(const Table& source, const Table& target,
                                        SummaryStream* stream,
                                        const StopToken* stop) const {
  auto start_time = std::chrono::steady_clock::now();
  CHARLES_RETURN_NOT_OK(options_.Validate());

  auto elapsed_since_start = [&start_time] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time)
        .count();
  };
  auto stop_requested = [stop] {
    return stop != nullptr && stop->stop_requested();
  };
  // Cancellation outside phase 3: no provisional ranking exists yet, so the
  // final (cancelled) stream update carries only the run's vital signs.
  auto cancelled = [&](const std::string& where) {
    if (stream != nullptr) {
      SummaryStreamUpdate update;
      update.cancelled = true;
      update.elapsed_seconds = elapsed_since_start();
      stream->Emit(update);
    }
    return Status::Cancelled("Find cancelled " + where);
  };

  // Admission control: a context may bound its concurrently executing runs
  // (queueing or rejecting the excess); the slot is held for the whole run
  // and released on every exit path. The stop token reaches into the queue
  // too, so a cancelled caller never waits out the runs ahead of it — and
  // still receives the promised final cancelled stream update.
  EngineContext::RunSlot run_slot;
  if (context_ != nullptr) {
    Result<EngineContext::RunSlot> admitted = context_->AdmitRun(stop);
    if (!admitted.ok()) {
      if (admitted.status().IsCancelled()) {
        return cancelled("during admission (" + admitted.status().message() + ")");
      }
      return admitted.status();
    }
    run_slot = std::move(*admitted);
  }

  DiffOptions diff_options;
  diff_options.key_columns = options_.key_columns;
  diff_options.numeric_tolerance = options_.numeric_tolerance;
  diff_options.allow_insert_delete = options_.allow_insert_delete;
  CHARLES_ASSIGN_OR_RETURN(SnapshotDiff diff,
                           SnapshotDiff::Compute(source, target, diff_options));

  // Alignment: make pair order coincide with analysis-table row order.
  bool identity_alignment =
      diff.num_pairs() == source.num_rows() &&
      std::all_of(diff.pairs().begin(), diff.pairs().end(),
                  [i = int64_t{0}](const SnapshotDiff::AlignedPair& p) mutable {
                    return p.source_row == i++;
                  });
  Table matched_view;
  const Table* analysis = &source;
  if (!identity_alignment) {
    std::vector<int64_t> matched;
    matched.reserve(diff.pairs().size());
    for (const auto& pair : diff.pairs()) matched.push_back(pair.source_row);
    CHARLES_ASSIGN_OR_RETURN(matched_view, source.Take(RowSet(std::move(matched))));
    analysis = &matched_view;
  }
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_old,
                           diff.SourceValues(options_.target_attribute));
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_new,
                           diff.TargetValues(options_.target_attribute));

  // Attribute shortlists: assistant by default, user overrides honoured.
  CHARLES_ASSIGN_OR_RETURN(SetupResult setup, SetupAssistant::Analyze(diff, options_));
  if (!options_.condition_attributes.empty()) {
    std::vector<AttributeCandidate> forced;
    for (const std::string& name : options_.condition_attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, analysis->schema().FieldIndex(name));
      forced.push_back(AttributeCandidate{
          name, 1.0, IsNumeric(analysis->schema().field(idx).type), true});
    }
    setup.condition_candidates = std::move(forced);
  }
  if (!options_.transform_attributes.empty()) {
    std::vector<AttributeCandidate> forced;
    for (const std::string& name : options_.transform_attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, analysis->schema().FieldIndex(name));
      if (!IsNumeric(analysis->schema().field(idx).type)) {
        return Status::TypeError("transformation attribute '" + name + "' is not numeric");
      }
      forced.push_back(AttributeCandidate{name, 1.0, true, true});
    }
    setup.transform_candidates = std::move(forced);
  }

  std::vector<std::string> cond_names = setup.ConditionNames();
  std::vector<std::string> tran_names = setup.TransformNames();
  std::vector<int> cond_indices;
  for (const std::string& name : cond_names) {
    CHARLES_ASSIGN_OR_RETURN(int idx, analysis->schema().FieldIndex(name));
    cond_indices.push_back(idx);
  }

  // Subset enumeration (paper: all C ⊆ A_cond with |C| ≤ c, all T ⊆ A_tran
  // with |T| ≤ t; the empty T yields constant-shift transformations).
  std::vector<std::vector<int>> c_subsets = EnumerateSubsets(
      static_cast<int>(cond_names.size()), options_.max_condition_attrs);
  std::vector<std::vector<int>> t_subsets = EnumerateSubsets(
      static_cast<int>(tran_names.size()), options_.max_transform_attrs);
  t_subsets.insert(t_subsets.begin(), std::vector<int>{});

  SummaryList result;
  result.setup = setup;
  result.condition_subsets = static_cast<int64_t>(c_subsets.size());
  result.transform_subsets = static_cast<int64_t>(t_subsets.size());

  // Parallel execution: every phase fans out over a ThreadPool and reduces
  // its per-item results in deterministic input order, so the ranked output
  // is bit-identical to a serial (num_threads = 1) run. With an attached
  // EngineContext the context's long-lived pool is used (its thread count
  // supersedes options_.num_threads); otherwise a per-run pool is spawned.
  int num_threads = 1;
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  if (context_ != nullptr) {
    num_threads = context_->num_threads();
    pool = context_->pool();
  } else {
    num_threads = options_.num_threads > 0 ? options_.num_threads
                                           : ThreadPool::HardwareConcurrency();
    if (num_threads > 1) {
      owned_pool = std::make_unique<ThreadPool>(num_threads);
      pool = owned_pool.get();
    }
  }
  result.threads_used = pool != nullptr ? num_threads : 1;

  // Phase 1 — change-signal clusterings. Residual clusterings depend on the
  // transformation subset T; delta/relative-delta clusterings do not, so
  // they are computed once. All labelings are pooled, canonicalized, and
  // deduplicated: tree induction below runs once per (C, labeling) instead
  // of once per (C, T, k). Each T-subset clusters independently (k-means is
  // seeded per call); pooling dedups sequentially in T order.
  auto phase1_start = std::chrono::steady_clock::now();

  // Column-gather cache: every T-subset's feature matrix draws on the same
  // shortlisted columns, so each is converted to doubles exactly once and
  // shared read-only by all phase-1 workers.
  CHARLES_ASSIGN_OR_RETURN(ColumnCache tran_columns,
                           ColumnCache::Build(*analysis, tran_names));

  // Sufficient statistics of the full transformation shortlist over all
  // rows, accumulated through the canonical block fold (AccumulateRowBlocks)
  // every other stats producer uses — so they equal, bit-for-bit, what a
  // distributed coordinator merges for the all-rows leaf. Phase 1 solves
  // every T-subset's global model from these moments (a p×p sub-solve
  // instead of an O(n·p²) QR per subset), and phase 3 seeds its leaf-stats
  // cache with them — the k = 1 "universal" partitions cover exactly these
  // rows in exactly this order.
  std::shared_ptr<const SufficientStats> shortlist_stats;
  if (options_.use_sufficient_stats) {
    std::vector<const std::vector<double>*> shortlist_columns;
    bool resolved = tran_columns.ResolveColumns(tran_names, &shortlist_columns);
    CHARLES_CHECK(resolved);  // Build() covered exactly these names
    shortlist_stats = std::make_shared<const SufficientStats>(
        AccumulateRangeBlocks(shortlist_columns, y_new,
                              static_cast<int64_t>(y_new.size()),
                              options_.stats_block_rows));
  }

  // Cross-run cache key (see ComputeRunFingerprint); only needed when a
  // long-lived context cache can mix fits from different runs.
  const uint64_t fingerprint =
      context_ != nullptr
          ? ComputeRunFingerprint(options_, tran_names, tran_columns, y_old, y_new)
          : 0;

  struct TSubsetLabelings {
    std::vector<std::string> transform_attrs;
    std::vector<std::vector<int>> canonical;
  };
  std::vector<TSubsetLabelings> per_t = ParallelMap<TSubsetLabelings>(
      pool, static_cast<int64_t>(t_subsets.size()), [&](int64_t ti) {
        TSubsetLabelings out;
        PartitionFinder::Input input;
        input.source = analysis;
        input.y_old = &y_old;
        input.y_new = &y_new;
        input.column_cache = &tran_columns;
        input.shortlist_stats = shortlist_stats.get();
        input.shortlist_subset = t_subsets[static_cast<size_t>(ti)];
        for (int t : t_subsets[static_cast<size_t>(ti)]) {
          input.transform_attrs.push_back(tran_names[static_cast<size_t>(t)]);
        }
        out.transform_attrs = input.transform_attrs;
        Result<PartitionFinder::ResidualClusterings> clusterings =
            PartitionFinder::ClusterResiduals(input, options_,
                                              /*include_delta_signals=*/ti == 0);
        if (!clusterings.ok()) return out;
        out.canonical.reserve(clusterings->clusterings.size());
        for (KMeansResult& clustering : clusterings->clusterings) {
          out.canonical.push_back(
              PartitionFinder::CanonicalizeLabels(clustering.labels));
        }
        return out;
      });

  std::vector<std::vector<int>> labelings;
  std::set<std::vector<int>> seen_labelings;
  std::vector<std::vector<std::string>> t_attr_names;
  for (TSubsetLabelings& t_result : per_t) {
    t_attr_names.push_back(std::move(t_result.transform_attrs));
    for (std::vector<int>& canonical : t_result.canonical) {
      if (seen_labelings.insert(canonical).second) {
        labelings.push_back(std::move(canonical));
      }
    }
  }

  result.labelings = static_cast<int64_t>(labelings.size());
  result.clustering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase1_start)
          .count();
  if (stop_requested()) return cancelled("after phase 1 (clustering)");

  // Phase 2 — condition induction: one tree per (C, labeling), partitions
  // deduplicated globally by their condition signature. Workers fan out over
  // C-subsets against the shared read-only TreeAttributeCache; the global
  // dedup walks C-subsets in enumeration order.
  auto phase2_start = std::chrono::steady_clock::now();
  struct PartitionEntry {
    PartitionCandidate candidate;
    std::vector<std::string> condition_attrs;
  };
  CHARLES_ASSIGN_OR_RETURN(TreeAttributeCache attr_cache,
                           TreeAttributeCache::Build(*analysis, cond_indices));
  struct CSubsetCandidates {
    std::vector<PartitionCandidate> candidates;
    std::vector<std::string> signatures;
    std::vector<std::string> attr_names;
  };
  std::vector<CSubsetCandidates> per_c = ParallelMap<CSubsetCandidates>(
      pool, static_cast<int64_t>(c_subsets.size()), [&](int64_t ci) {
        CSubsetCandidates out;
        std::vector<int> attr_indices;
        for (int c : c_subsets[static_cast<size_t>(ci)]) {
          attr_indices.push_back(cond_indices[static_cast<size_t>(c)]);
          out.attr_names.push_back(cond_names[static_cast<size_t>(c)]);
        }
        Result<std::vector<PartitionCandidate>> candidates =
            PartitionFinder::InduceCandidates(*analysis, labelings, attr_indices,
                                              options_, &attr_cache);
        if (!candidates.ok()) return out;
        out.candidates = std::move(*candidates);
        out.signatures.reserve(out.candidates.size());
        for (const PartitionCandidate& candidate : out.candidates) {
          std::string signature;
          for (const auto& leaf : candidate.leaves) {
            signature += leaf.condition->ToString();
            signature += ";;";
          }
          out.signatures.push_back(std::move(signature));
        }
        return out;
      });

  std::vector<PartitionEntry> partitions;
  std::set<std::string> seen_partitions;
  for (CSubsetCandidates& c_result : per_c) {
    for (size_t i = 0; i < c_result.candidates.size(); ++i) {
      if (!seen_partitions.insert(c_result.signatures[i]).second) continue;
      partitions.push_back(
          PartitionEntry{std::move(c_result.candidates[i]), c_result.attr_names});
    }
  }

  // Bound the search: keep the partitionings whose conditions describe
  // their source clusters best (deterministic order).
  if (static_cast<int>(partitions.size()) > options_.max_partitions) {
    std::stable_sort(partitions.begin(), partitions.end(),
                     [](const PartitionEntry& a, const PartitionEntry& b) {
                       double aa = a.candidate.label_agreement;
                       double bb = b.candidate.label_agreement;
                       if (aa != bb) return aa > bb;
                       return a.candidate.leaves.size() < b.candidate.leaves.size();
                     });
    partitions.resize(static_cast<size_t>(options_.max_partitions));
  }
  result.partitions = static_cast<int64_t>(partitions.size());
  result.induction_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase2_start)
          .count();
  if (stop_requested()) return cancelled("after phase 2 (condition induction)");

  // Phase 3 — transformation discovery and scoring: every surviving
  // partitioning is paired with every transformation subset. Work is sharded
  // by (partition, T) pair — finer than per-partition, so the pool stays
  // balanced even when few partitionings survive dedup. Each worker owns a
  // thread-local LeafFitCache per T (lock-free) backed by one cross-worker
  // ShardedCache (the context's cross-run cache when attached), and the
  // per-worker caches and counters are merged at the barrier. The
  // best-by-signature reduction then replays the serial (partition, T) visit
  // order, so the surviving summary per signature is scheduling-independent.
  auto phase3_start = std::chrono::steady_clock::now();
  struct Phase3Worker {
    std::vector<LeafFitCache> caches;
    LeafStatsCache leaf_stats;  ///< per-leaf moments, shared across all T
    LeafFitStats stats;
  };
  struct ShardOutput {
    std::string signature;
    ChangeSummary summary;
    bool ok = false;
  };
  const int64_t t_count = static_cast<int64_t>(t_attr_names.size());
  const int64_t num_shards = static_cast<int64_t>(partitions.size()) * t_count;

  // A bounded run-local cache never gets more shards than entries (the
  // per-shard budget floors at one, which would silently raise the bound).
  const size_t run_cache_bound =
      options_.max_cache_entries > 0 ? static_cast<size_t>(options_.max_cache_entries)
                                     : 0;
  int run_cache_shards = pool != nullptr ? num_threads * 4 : 1;
  if (run_cache_bound > 0 && static_cast<size_t>(run_cache_shards) > run_cache_bound) {
    run_cache_shards = static_cast<int>(run_cache_bound);
  }
  SharedLeafFitCache run_leaf_cache(run_cache_shards, run_cache_bound);
  SharedLeafFitCache* shared_cache = nullptr;
  if (context_ != nullptr) {
    shared_cache = context_->leaf_cache();  // warm across runs, even serial
  } else if (pool != nullptr) {
    shared_cache = &run_leaf_cache;
  }

  // Cross-worker tier of the per-leaf sufficient-statistics cache. Kept
  // per-run (cross-run reuse already happens at the fit level), and used by
  // serial runs too — a leaf's one accumulation scan is what every
  // T-subset's sub-solve amortizes against. Seeded with the all-rows moments
  // accumulated before phase 1: the k = 1 "universal" leaves cover exactly
  // those rows in exactly that order.
  SharedLeafStatsCache run_stats_cache(pool != nullptr ? num_threads * 4 : 1);
  if (shortlist_stats != nullptr) {
    run_stats_cache.Insert(
        LeafKey{fingerprint, 0, RowSet::All(analysis->num_rows()).indices()},
        shortlist_stats);
  }

  // Distributed shard sweep (CharlesOptions::num_shards >= 1): every
  // distinct partition leaf's moments are computed shard-by-shard over
  // block-aligned row ranges by the configured backend and merged exactly
  // by the Coordinator (see docs/distributed.md). The merged moments seed
  // the run's leaf-stats cache, and the folded max |Δy| per leaf seeds the
  // no-change evidence — so phase 3 below runs unchanged, re-solving every
  // leaf fit from moments that are bit-identical to the ones it would have
  // accumulated itself. Leaves are deduplicated by row set in partition
  // enumeration order (stats are T-independent), so each is scanned once
  // regardless of how many condition trees share it.
  std::unordered_map<std::vector<int64_t>, double, RowIndicesHash>
      nochange_evidence;
  if (options_.num_shards > 0 && options_.use_sufficient_stats) {
    ShardInput shard_input;
    shard_input.shortlist = &tran_names;
    shard_input.columns = &tran_columns;
    shard_input.y_old = &y_old;
    shard_input.y_new = &y_new;
    std::unordered_set<std::vector<int64_t>, RowIndicesHash> seen_leaves;
    for (const PartitionEntry& entry : partitions) {
      for (const DecisionTree::Leaf& leaf : entry.candidate.leaves) {
        if (seen_leaves.insert(leaf.rows.indices()).second) {
          shard_input.leaves.push_back(&leaf.rows);
        }
      }
    }
    ShardPlan plan = PlanShards(analysis->num_rows(), options_.stats_block_rows,
                                options_.num_shards);
    if (plan.num_shards() > 0 && !shard_input.leaves.empty()) {
      InProcessBackend in_process;
      SubprocessBackend subprocess;
      ShardBackend* backend =
          options_.shard_backend == ShardBackendKind::kSubprocess
              ? static_cast<ShardBackend*>(&subprocess)
              : static_cast<ShardBackend*>(&in_process);
      Result<CoordinatorResult> merged =
          Coordinator::Run(shard_input, plan, backend, pool, stop);
      if (!merged.ok()) {
        if (merged.status().IsCancelled()) {
          return cancelled("during the shard sweep");
        }
        return merged.status();
      }
      nochange_evidence.reserve(shard_input.leaves.size());
      for (size_t l = 0; l < shard_input.leaves.size(); ++l) {
        LeafRollup& rollup = merged->leaves[l];
        run_stats_cache.Insert(
            LeafKey{fingerprint, 0, shard_input.leaves[l]->indices()},
            std::make_shared<const SufficientStats>(std::move(rollup.stats)));
        nochange_evidence.emplace(shard_input.leaves[l]->indices(),
                                  rollup.max_abs_delta);
      }
      result.shards_used = static_cast<int>(merged->shards_executed);
      result.shard_rows_scanned = merged->rows_scanned;
      result.shard_blocks_merged = merged->blocks_merged;
      result.shard_seconds = merged->elapsed_seconds;
    }
  }

  // Streaming: completed shards merge a copy of their summary into a
  // provisional top-N under a lock, kept sorted and deduplicated by
  // signature exactly as the final reduction ranks — eviction is permanent
  // (the bar only rises), so the incremental top-N equals the top-N of a
  // full best-by-signature merge at every point, and the last update's list
  // is the final ranking. Entirely separate from the deterministic final
  // reduction below — which summaries appear mid-run depends on scheduling,
  // the returned list never does. Zero overhead when no stream is attached.
  struct StreamMerge {
    std::mutex mu;
    std::vector<std::pair<std::string, ChangeSummary>> top;  ///< sorted, <= top_n
    /// Work items finished. Atomic so streamless runs can count without the
    /// lock; streamed runs increment under `mu` so emissions observe
    /// strictly increasing values.
    std::atomic<int64_t> completed{0};
  };
  StreamMerge stream_merge;
  auto merge_into_top = [this, &stream_merge](const std::string& signature,
                                              const ChangeSummary& summary) {
    auto& top = stream_merge.top;
    auto same = std::find_if(top.begin(), top.end(), [&](const auto& entry) {
      return entry.first == signature;
    });
    if (same != top.end()) {
      if (!SummaryOrder(summary, same->second)) return false;
      top.erase(same);
    } else if (static_cast<int>(top.size()) >= options_.top_n &&
               !SummaryOrder(summary, top.back().second)) {
      return false;
    }
    auto pos = std::upper_bound(top.begin(), top.end(), summary,
                                [](const ChangeSummary& s, const auto& entry) {
                                  return SummaryOrder(s, entry.second);
                                });
    top.emplace(pos, signature, summary);
    if (static_cast<int>(top.size()) > options_.top_n) top.pop_back();
    return true;
  };

  std::vector<Phase3Worker> workers;
  std::vector<ShardOutput> shard_outputs = ParallelMapWithState<ShardOutput, Phase3Worker>(
      pool, num_shards,
      [&]() {
        Phase3Worker worker;
        worker.caches.resize(t_attr_names.size());
        return worker;
      },
      [&](Phase3Worker& worker, int64_t shard) {
        ShardOutput out;
        // Cancellation point between (partition, T) work items: a stopped
        // run drains its remaining items as no-ops (the pool cannot unqueue
        // them) and the post-barrier check below turns the run into
        // Status::Cancelled.
        if (stop_requested()) return out;
        const size_t pi = static_cast<size_t>(shard / t_count);
        const size_t ti = static_cast<size_t>(shard % t_count);
        const PartitionEntry& entry = partitions[pi];
        LeafStatsWorkspace stats_workspace;
        stats_workspace.shortlist = &tran_names;
        stats_workspace.t_subset = &t_subsets[ti];
        stats_workspace.local = &worker.leaf_stats;
        stats_workspace.shared = &run_stats_cache;
        stats_workspace.fingerprint = fingerprint;
        stats_workspace.block_rows = options_.stats_block_rows;
        stats_workspace.nochange_max_delta =
            nochange_evidence.empty() ? nullptr : &nochange_evidence;
        Result<ChangeSummary> summary = BuildSummary(
            *analysis, y_old, y_new, entry.candidate, t_attr_names[ti],
            entry.condition_attrs, &worker.caches[ti], shared_cache, ti,
            &worker.stats, fingerprint, &tran_columns, &stats_workspace);
        if (summary.ok()) {
          out.signature = summary->Signature();
          out.summary = std::move(*summary);
          out.ok = true;
        }
        // Completed-item count is tracked stream or no stream (the
        // cancellation diagnostic below the barrier reports it), but only
        // streamed runs pay the merge lock — a plain Find() counts with one
        // relaxed atomic increment per item.
        if (stream == nullptr) {
          stream_merge.completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::lock_guard<std::mutex> lock(stream_merge.mu);
          int64_t completed =
              stream_merge.completed.fetch_add(1, std::memory_order_relaxed) + 1;
          bool changed = out.ok && merge_into_top(out.signature, out.summary);
          // Re-ranking and copying the top-N per shard would dwarf the search
          // itself; emit only when the top-N changed — shards that only
          // rediscover or underbid known summaries just advance the counter —
          // plus always on the final shard so consumers observe completion.
          // A stopping run suppresses emissions: its final update is the
          // cancelled one below the barrier.
          if ((changed || completed == num_shards) && !stop_requested()) {
            SummaryStreamUpdate update;
            update.shards_completed = completed;
            update.shards_total = num_shards;
            update.elapsed_seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_time)
                    .count();
            update.provisional.reserve(stream_merge.top.size());
            for (const auto& entry : stream_merge.top) {
              update.provisional.push_back(entry.second);
            }
            stream->Emit(update);
          }
        }
        return out;
      },
      &workers);

  if (stop_requested()) {
    if (stream != nullptr) {
      std::lock_guard<std::mutex> lock(stream_merge.mu);
      SummaryStreamUpdate update;
      update.cancelled = true;
      update.shards_completed = stream_merge.completed.load();
      update.shards_total = num_shards;
      update.elapsed_seconds = elapsed_since_start();
      update.provisional.reserve(stream_merge.top.size());
      for (const auto& entry : stream_merge.top) {
        update.provisional.push_back(entry.second);
      }
      stream->Emit(update);
    }
    return Status::Cancelled("Find cancelled during phase 3 (after " +
                             std::to_string(stream_merge.completed.load()) +
                             " of " + std::to_string(num_shards) +
                             " work items)");
  }

  for (const Phase3Worker& worker : workers) {
    result.leaf_fits_computed += worker.stats.computed;
    result.leaf_fits_reused += worker.stats.local_hits + worker.stats.shared_hits;
  }

  // Cache bound: a context's cache is trimmed (LRU) at the end of each run
  // when the engine options cap it — the context-level bound, if any, was
  // already enforced on every insert. The run-local cache was constructed
  // with the bound.
  if (context_ != nullptr && options_.max_cache_entries > 0) {
    context_->leaf_cache()->TrimToSize(
        static_cast<size_t>(options_.max_cache_entries));
  }
  if (shared_cache != nullptr) {
    result.leaf_fit_evictions = shared_cache->evictions();
  }

  std::map<std::string, ChangeSummary> best_by_signature;
  for (ShardOutput& built : shard_outputs) {
    if (!built.ok) continue;
    ++result.candidates_evaluated;
    auto it = best_by_signature.find(built.signature);
    if (it == best_by_signature.end()) {
      best_by_signature.emplace(std::move(built.signature), std::move(built.summary));
    } else {
      ++result.candidates_deduped;
      if (SummaryOrder(built.summary, it->second)) it->second = std::move(built.summary);
    }
  }

  result.fitting_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase3_start)
          .count();

  result.summaries.reserve(best_by_signature.size());
  for (auto& [signature, summary] : best_by_signature) {
    result.summaries.push_back(std::move(summary));
  }
  std::sort(result.summaries.begin(), result.summaries.end(), SummaryOrder);
  if (static_cast<int>(result.summaries.size()) > options_.top_n) {
    result.summaries.resize(static_cast<size_t>(options_.top_n));
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
          .count();
  if (context_ != nullptr) context_->NoteRunCompleted();
  return result;
}

std::future<Result<SummaryList>> CharlesEngine::FindAsync(
    const Table& source, const Table& target, SummaryStream* stream,
    const StopToken* stop) const {
  return std::async(std::launch::async, [this, &source, &target, stream, stop]() {
    return Find(source, target, stream, stop);
  });
}

Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options) {
  CharlesEngine engine(options);
  return engine.Find(source, target);
}

Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options,
                                     EngineContext* context) {
  CharlesEngine engine(options, context);
  return engine.Find(source, target);
}

}  // namespace charles
