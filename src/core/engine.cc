#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "core/normality.h"
#include "core/run_pipeline.h"
#include "core/scoring.h"
#include "linalg/error_partials.h"
#include "linalg/kernels/kernel.h"
#include "linalg/stats.h"
#include "linalg/suffstats.h"

namespace charles {

std::string SummaryList::ToString() const {
  std::string out;
  for (size_t i = 0; i < summaries.size(); ++i) {
    out += "#" + std::to_string(i + 1) + " (score " +
           FormatDouble(summaries[i].scores().score, 4) + ")\n";
    out += summaries[i].ToString();
  }
  out += "evaluated " + std::to_string(candidates_evaluated) + " candidates over " +
         std::to_string(condition_subsets) + " condition subsets x " +
         std::to_string(transform_subsets) + " transform subsets in " +
         FormatDouble(elapsed_seconds, 3) + "s on " + std::to_string(threads_used) +
         (threads_used == 1 ? " thread\n" : " threads\n");
  return out;
}

namespace {

/// Builds the Figure-2 model tree from the condition-induction tree, pairing
/// leaves (YES-first traversal order) with the CTs built from them.
std::unique_ptr<ModelTreeNode> BuildModelTreeNode(
    const DecisionTreeNode& node, const std::vector<ConditionalTransform>& cts,
    size_t* leaf_index) {
  auto out = std::make_unique<ModelTreeNode>();
  if (node.is_leaf) {
    out->is_leaf = true;
    const ConditionalTransform& ct = cts[*leaf_index];
    ++*leaf_index;
    if (!ct.transform.is_no_change()) {
      out->transform = ct.transform;
    }
    out->coverage = ct.coverage;
    out->count = ct.rows.size();
    return out;
  }
  out->is_leaf = false;
  out->split = node.condition;
  out->yes = BuildModelTreeNode(*node.yes, cts, leaf_index);
  out->no = BuildModelTreeNode(*node.no, cts, leaf_index);
  return out;
}

/// \brief The leaf's sufficient statistics over the run's full
/// transformation shortlist: local tier, then shared tier, then the
/// canonical block-structured accumulation published to both.
///
/// Accumulation is the AccumulateRowBlocks fold — per-block partials in
/// RowSet (= serial) row order, merged in block order — so the moments are
/// bit-identical no matter which worker performs it *and* no matter whether
/// a distributed coordinator pre-merged them from row-range shards: every
/// executor replays the same per-block partials and the same fold (the
/// distributed determinism contract, docs/distributed.md). Returns nullptr
/// when a shortlist column is missing from the cache (fast path
/// unavailable).
std::shared_ptr<const SufficientStats> FindOrAccumulateLeafStats(
    const CharlesEngine::LeafStatsWorkspace& ws, const RowSet& rows,
    const std::vector<double>& y_new, const ColumnCache& columns) {
  // A workspace without an explicit block size could cache moments folded
  // at a different block size than the run's other producers use — refuse
  // the fast path instead (see LeafStatsWorkspace::block_rows).
  if (ws.block_rows < 1) return nullptr;
  if (ws.local != nullptr) {
    auto it = ws.local->find(rows.indices());
    if (it != ws.local->end()) return it->second;
  }
  CharlesEngine::LeafKey key;
  if (ws.shared != nullptr) {
    key = CharlesEngine::LeafKey{ws.fingerprint, 0, rows.indices()};
    std::shared_ptr<const SufficientStats> found;
    if (ws.shared->Lookup(key, &found)) {
      if (ws.local != nullptr) ws.local->emplace(rows.indices(), found);
      return found;
    }
  }
  std::vector<const std::vector<double>*> cols;
  if (!columns.ResolveColumns(*ws.shortlist, &cols)) return nullptr;
  std::shared_ptr<const SufficientStats> out =
      std::make_shared<const SufficientStats>(
          AccumulateRowBlocks(cols, y_new, rows.indices(), ws.block_rows));
  if (ws.shared != nullptr) ws.shared->Insert(std::move(key), out);
  if (ws.local != nullptr) ws.local->emplace(rows.indices(), out);
  return out;
}

/// \brief Rebuilds a full LeafFit from its compact cached form.
///
/// Predictions are re-evaluated from the cached feature columns through the
/// same PredictRow dot product the original fit used on its gathered matrix,
/// so the rehydrated fit is bit-identical to the one that was cached.
/// Returns false (leaving `out` unspecified) when a feature column is
/// missing from the cache; the caller then treats the lookup as a miss.
bool RehydrateLeafFit(const SharedLeafFit& compact, const RowSet& rows,
                      const std::vector<double>& y_old,
                      const ColumnCache* column_cache,
                      CharlesEngine::LeafFit* out) {
  out->transform = compact.transform;
  out->partition_mae = compact.partition_mae;
  out->score = compact.score;
  out->has_score = compact.has_score;
  out->predictions.clear();
  out->predictions.reserve(static_cast<size_t>(rows.size()));
  if (compact.transform.is_no_change()) {
    for (int64_t row : rows) {
      out->predictions.push_back(y_old[static_cast<size_t>(row)]);
    }
    return true;
  }
  if (column_cache == nullptr) return false;
  const LinearModel& model = compact.transform.model();
  std::vector<const std::vector<double>*> cols;
  if (!column_cache->ResolveColumns(model.feature_names, &cols)) return false;
  std::vector<double> features(cols.size());
  for (int64_t r = 0; r < rows.size(); ++r) {
    size_t row = static_cast<size_t>(rows[r]);
    for (size_t f = 0; f < cols.size(); ++f) features[f] = (*cols[f])[row];
    out->predictions.push_back(model.PredictRow(features.data()));
  }
  return true;
}

}  // namespace

Result<CharlesEngine::LeafFit> CharlesEngine::FitLeaf(
    const Table& source, const std::vector<double>& y_old,
    const std::vector<double>& y_new, const RowSet& rows,
    const std::vector<std::string>& transform_attrs,
    const ColumnCache* column_cache,
    const LeafStatsWorkspace* stats_workspace, size_t t_index,
    LeafFitStats* stats) const {
  const std::string& target = options_.target_attribute;
  // Row-free scoring mode: fold this leaf's (Σ|y − ŷ|, exact count) with
  // the run scorer's exactness band so BuildSummary can merge per-leaf
  // partials in leaf order instead of scattering predictions into a
  // run-wide ŷ. Deliberately independent of use_sufficient_stats: the QR
  // ladder scores row-free too.
  const bool score_fold = stats_workspace != nullptr &&
                          stats_workspace->block_rows >= 1 &&
                          stats_workspace->score_tolerance >= 0.0;
  // No-change detection: the whole partition kept its old value. A
  // distributed sweep already folded max |y_new − y_old| per leaf (max is
  // exactly associative, so the evidence equals what this scan would
  // compute); leaves without evidence are scanned serially.
  const double* shard_max_delta = nullptr;
  if (stats_workspace != nullptr &&
      stats_workspace->nochange_max_delta != nullptr) {
    auto it = stats_workspace->nochange_max_delta->find(rows.indices());
    if (it != stats_workspace->nochange_max_delta->end()) {
      shard_max_delta = &it->second;
    }
  }
  bool unchanged = true;
  if (shard_max_delta != nullptr) {
    unchanged = *shard_max_delta <= options_.numeric_tolerance;
  } else {
    for (int64_t row : rows) {
      if (std::abs(y_new[static_cast<size_t>(row)] -
                   y_old[static_cast<size_t>(row)]) > options_.numeric_tolerance) {
        unchanged = false;
        break;
      }
    }
  }
  LeafFit fit;
  if (unchanged) {
    fit.transform = LinearTransform::NoChange(target);
    fit.partition_mae = 0.0;
    fit.predictions.reserve(static_cast<size_t>(rows.size()));
    for (int64_t row : rows) fit.predictions.push_back(y_old[static_cast<size_t>(row)]);
    if (score_fold) {
      // A no-change leaf still contributes canonical partials: every row
      // lands inside the band (|y_new − y_old| ≤ numeric_tolerance ≤ the
      // band), but the Σ chain must replay the canonical block order so the
      // merged score bits stay canonical.
      std::vector<double> y_part(static_cast<size_t>(rows.size()));
      if (rows.size() > 0) {
        kernels::ActiveKernel().gather(y_new.data(), rows.indices().data(),
                                       rows.size(), y_part.data(),
                                       /*dst_stride=*/1);
      }
      fit.score = AccumulateScoreDiffBlocks(
          y_part, fit.predictions, rows.indices(), stats_workspace->block_rows,
          stats_workspace->score_tolerance);
      fit.has_score = true;
      if (stats != nullptr) ++stats->score_leaf_folds;
    }
    return fit;
  }

  // Transformation discovery: per-partition OLS on T.
  //
  // Fast path: solve the T-subset's normal equations from the leaf's
  // sufficient statistics — accumulated in one scan over the leaf's rows and
  // reused by every other T-subset that visits this leaf. Ill-conditioned or
  // underdetermined systems fail the solve and drop to the row-level QR
  // ladder below, which is also the path when no workspace is attached.
  LinearModel model;
  bool have_model = false;
  if (options_.use_sufficient_stats && stats_workspace != nullptr &&
      stats_workspace->shortlist != nullptr && stats_workspace->t_subset != nullptr &&
      stats_workspace->local != nullptr && stats_workspace->shared != nullptr &&
      column_cache != nullptr) {
    std::shared_ptr<const SufficientStats> leaf_stats =
        FindOrAccumulateLeafStats(*stats_workspace, rows, y_new, *column_cache);
    if (leaf_stats != nullptr) {
      Result<LinearModel> fast = LinearRegression::FitFromStats(
          *leaf_stats, *stats_workspace->t_subset, transform_attrs);
      if (fast.ok()) {
        model = std::move(*fast);
        have_model = true;
      }
    }
  }

  // Feature matrix for snapping, predictions, and the QR path. Features come
  // from the run's pre-converted ColumnCache when available (the engine
  // always passes one), falling back to per-leaf gather + conversion.
  Matrix x(rows.size(), static_cast<int64_t>(transform_attrs.size()));
  const kernels::Kernel& kernel = kernels::ActiveKernel();
  for (size_t f = 0; f < transform_attrs.size(); ++f) {
    const std::vector<double>* full =
        column_cache != nullptr ? column_cache->Find(transform_attrs[f]) : nullptr;
    if (full != nullptr) {
      if (rows.size() > 0) {
        kernel.gather(full->data(), rows.indices().data(), rows.size(),
                      &x.At(0, static_cast<int64_t>(f)), x.cols());
      }
      continue;
    }
    CHARLES_ASSIGN_OR_RETURN(const Column* col, source.ColumnByName(transform_attrs[f]));
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values, col->GatherDoubles(rows));
    for (int64_t r = 0; r < rows.size(); ++r) {
      x.At(r, static_cast<int64_t>(f)) = values[static_cast<size_t>(r)];
    }
  }
  std::vector<double> y_part(static_cast<size_t>(rows.size()));
  if (rows.size() > 0) {
    kernel.gather(y_new.data(), rows.indices().data(), rows.size(),
                  y_part.data(), /*dst_stride=*/1);
  }
  if (!have_model) {
    CHARLES_ASSIGN_OR_RETURN(model, LinearRegression::Fit(x, y_part, transform_attrs));
  }

  // Exact-L1 evaluation mode. Under the sufficient-statistics path every
  // L1 evaluation below — SnapModel's accuracy-guard baseline and the final
  // fit MAE — goes through the canonical block fold of
  // linalg/error_partials.h, which a distributed kScorePartials round
  // reproduces bit-for-bit from shard partials. The QR-only path keeps the
  // historical serial sums unchanged.
  const bool canonical_error = options_.use_sufficient_stats &&
                               stats_workspace != nullptr &&
                               stats_workspace->block_rows >= 1;
  // Shard-merged exact (Σ|y − ŷ|, exact count) of the fast-path model, when
  // a distributed kScorePartials sweep pre-evaluated it for this (leaf, T).
  // Only valid for the model the probe solved — i.e. when the fast solve
  // above succeeded.
  const ScorePartials* score_evidence = nullptr;
  if (canonical_error && have_model &&
      stats_workspace->score_evidence != nullptr) {
    auto it = stats_workspace->score_evidence->find(rows.indices());
    if (it != stats_workspace->score_evidence->end() &&
        t_index < it->second.valid.size() && it->second.valid[t_index] != 0) {
      score_evidence = &it->second.partials[t_index];
    }
  }

  NormalityOptions normality = options_.normality;
  normality.exactness_tolerance =
      std::max(normality.exactness_tolerance, options_.numeric_tolerance);
  SnapErrorSpec error_spec;
  const SnapErrorSpec* error_spec_ptr = nullptr;
  // The evidence's L1 projection is bit-identical to what a dedicated
  // kErrorPartials probe would have produced (the score fold's Σ chain
  // replays the error fold's addends exactly), so one score round serves
  // both the snap baseline and the score.
  ErrorPartials evidence_error;
  if (canonical_error) {
    if (score_evidence != nullptr) {
      evidence_error = score_evidence->error();
      error_spec.baseline = &evidence_error;
    }
    error_spec.rows = &rows.indices();
    error_spec.block_rows = stats_workspace->block_rows;
    error_spec_ptr = &error_spec;
  }
  const LinearModel pre_snap = model;
  model = SnapModel(model, x, y_part, normality, error_spec_ptr);
  fit.predictions = model.PredictBatch(x);
  // The moments pin down r²/rmse exactly but only estimate the L1 error;
  // the reported MAE is always exact. Under the stats path it comes from
  // the canonical fold — served straight from the shard-merged partials
  // when snapping left the probed model untouched, re-folded centrally
  // (bit-identically) otherwise; the QR path recomputes it serially from
  // the prediction pass as before. When row-free scoring is on, the same
  // fold also yields the leaf's score partials: its Σ chain is the
  // AccumulateAbsDiffBlocks chain, so the MAE comes out bit-identical.
  const bool snap_noop =
      score_evidence != nullptr &&
      std::memcmp(&model.intercept, &pre_snap.intercept, sizeof(double)) == 0 &&
      model.coefficients.size() == pre_snap.coefficients.size() &&
      (model.coefficients.empty() ||
       std::memcmp(model.coefficients.data(), pre_snap.coefficients.data(),
                   model.coefficients.size() * sizeof(double)) == 0);
  if (canonical_error && snap_noop) {
    model.mae = score_evidence->mae();
    fit.score = *score_evidence;
    fit.has_score = true;
  } else if (score_fold) {
    fit.score = AccumulateScoreDiffBlocks(
        y_part, fit.predictions, rows.indices(), stats_workspace->block_rows,
        stats_workspace->score_tolerance);
    fit.has_score = true;
    if (stats != nullptr) ++stats->score_leaf_folds;
    model.mae = canonical_error ? fit.score.mae()
                                : MeanAbsoluteError(fit.predictions, y_part);
  } else if (canonical_error) {
    model.mae = AccumulateAbsDiffBlocks(y_part, fit.predictions, rows.indices(),
                                        stats_workspace->block_rows)
                    .mae();
  } else {
    model.mae = MeanAbsoluteError(fit.predictions, y_part);
  }
  fit.partition_mae = model.mae;
  fit.transform = LinearTransform::Linear(target, std::move(model));
  return fit;
}

Result<ChangeSummary> CharlesEngine::BuildSummary(
    const Table& source, const std::vector<double>& y_old,
    const std::vector<double>& y_new, const PartitionCandidate& candidate,
    const std::vector<std::string>& transform_attrs,
    const std::vector<std::string>& condition_attrs, LeafFitCache* cache,
    SharedLeafFitCache* shared_cache, size_t t_index, LeafFitStats* stats,
    uint64_t cache_fingerprint, const ColumnCache* column_cache,
    const LeafStatsWorkspace* stats_workspace, const Scorer* scorer) const {
  const std::string& target = options_.target_attribute;
  int64_t n = source.num_rows();
  // Row-free scoring: merge per-leaf ScorePartials in leaf (CT) order and
  // never materialize a run-wide ŷ. Requires the run-level scorer and a
  // workspace carrying its exactness band; every other caller keeps the
  // historical scatter-and-scan path below.
  const bool row_free = scorer != nullptr && stats_workspace != nullptr &&
                        stats_workspace->block_rows >= 1 &&
                        stats_workspace->score_tolerance >= 0.0;
  std::vector<double> y_hat;
  if (!row_free) y_hat = y_old;
  ScorePartials score_total;
  std::vector<ConditionalTransform> cts;
  cts.reserve(candidate.leaves.size());

  for (const DecisionTree::Leaf& leaf : candidate.leaves) {
    const RowSet& rows = leaf.rows;
    ConditionalTransform ct;
    ct.condition = leaf.condition;
    ct.rows = rows;
    ct.coverage = rows.Coverage(n);

    // Tiered lookup: worker-local cache (lock-free), then the cross-worker
    // sharded cache, then an actual fit published to both tiers. The shared
    // tier stores fits compactly (no predictions; see SharedLeafFit), so a
    // shared hit rehydrates the predictions from the cached columns. Fits
    // are deterministic in (rows, T) and rehydration replays the original
    // prediction arithmetic, so which tier serves a hit never changes the
    // resulting summary.
    const LeafFit* fit = nullptr;
    LeafFit local;
    if (cache != nullptr) {
      auto it = cache->find(rows.indices());
      if (it != cache->end()) {
        if (stats != nullptr) ++stats->local_hits;
        fit = &it->second;
      } else {
        LeafKey key;  // built once per local miss; shared by Lookup and Insert
        if (shared_cache != nullptr) {
          key = LeafKey{cache_fingerprint, t_index, rows.indices()};
          SharedLeafFit compact;
          if (shared_cache->Lookup(key, &compact) &&
              RehydrateLeafFit(compact, rows, y_old, column_cache, &local)) {
            if (stats != nullptr) ++stats->shared_hits;
            it = cache->emplace(rows.indices(), std::move(local)).first;
            fit = &it->second;
          }
        }
        if (fit == nullptr) {
          CHARLES_ASSIGN_OR_RETURN(
              local, FitLeaf(source, y_old, y_new, rows, transform_attrs, column_cache,
                             stats_workspace, t_index, stats));
          if (stats != nullptr) ++stats->computed;
          if (shared_cache != nullptr) {
            shared_cache->Insert(std::move(key),
                                 SharedLeafFit{local.transform, local.partition_mae,
                                               local.score, local.has_score});
          }
          it = cache->emplace(rows.indices(), std::move(local)).first;
          fit = &it->second;
        }
      }
    } else {
      CHARLES_ASSIGN_OR_RETURN(
          local, FitLeaf(source, y_old, y_new, rows, transform_attrs, column_cache,
                         stats_workspace, t_index, stats));
      if (stats != nullptr) ++stats->computed;
      fit = &local;
    }
    ct.transform = fit->transform;
    ct.partition_mae = fit->partition_mae;
    if (row_free) {
      if (fit->has_score) {
        score_total.Merge(fit->score);
      } else {
        // Cache entries minted before row-free scoring was enabled carry no
        // partials: fold this leaf on the spot — same gather, same block
        // fold, same bits FitLeaf would have stored.
        std::vector<double> y_part(static_cast<size_t>(rows.size()));
        if (rows.size() > 0) {
          kernels::ActiveKernel().gather(y_new.data(), rows.indices().data(),
                                         rows.size(), y_part.data(),
                                         /*dst_stride=*/1);
        }
        score_total.Merge(AccumulateScoreDiffBlocks(
            y_part, fit->predictions, rows.indices(),
            stats_workspace->block_rows, stats_workspace->score_tolerance));
        if (stats != nullptr) ++stats->score_leaf_folds;
      }
    } else {
      for (int64_t r = 0; r < rows.size(); ++r) {
        y_hat[static_cast<size_t>(rows[r])] = fit->predictions[static_cast<size_t>(r)];
      }
    }
    cts.push_back(std::move(ct));
  }

  ChangeSummary summary(std::move(cts), target);
  summary.set_attributes(condition_attrs, transform_attrs);

  // Attach the model tree (condition tree + fitted leaf transforms).
  if (candidate.tree != nullptr) {
    size_t leaf_index = 0;
    auto root = BuildModelTreeNode(candidate.tree->root(), summary.cts(), &leaf_index);
    summary.set_tree(std::make_shared<ModelTree>(std::move(root)));
  }

  if (row_free) {
    if (stats != nullptr) ++stats->score_partials_candidates;
    summary.set_scores(scorer->ScoreFromPartials(summary, score_total));
  } else {
    if (stats != nullptr) ++stats->score_yhat_materializations;
    if (scorer != nullptr) {
      summary.set_scores(scorer->Score(summary, y_hat));
    } else {
      // External callers (tests, baselines) with no run-level scorer: build
      // one for this call, as the pre-partials engine always did.
      Scorer local_scorer(options_, y_old, y_new);
      summary.set_scores(local_scorer.Score(summary, y_hat));
    }
  }
  return summary;
}

Result<SummaryList> CharlesEngine::Find(const Table& source, const Table& target,
                                        SummaryStream* stream,
                                        const StopToken* stop) const {
  return RunPipeline::Run(*this, source, target, stream, stop);
}

std::future<Result<SummaryList>> CharlesEngine::FindAsync(
    const Table& source, const Table& target, SummaryStream* stream,
    const StopToken* stop) const {
  return std::async(std::launch::async, [this, &source, &target, stream, stop]() {
    return Find(source, target, stream, stop);
  });
}

Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options) {
  CharlesEngine engine(options);
  return engine.Find(source, target);
}

Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options,
                                     EngineContext* context) {
  CharlesEngine engine(options, context);
  return engine.Find(source, target);
}

}  // namespace charles
