#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>

#include "common/combinatorics.h"
#include "common/string_util.h"
#include "core/normality.h"
#include "core/scoring.h"

namespace charles {

std::string SummaryList::ToString() const {
  std::string out;
  for (size_t i = 0; i < summaries.size(); ++i) {
    out += "#" + std::to_string(i + 1) + " (score " +
           FormatDouble(summaries[i].scores().score, 4) + ")\n";
    out += summaries[i].ToString();
  }
  out += "evaluated " + std::to_string(candidates_evaluated) + " candidates over " +
         std::to_string(condition_subsets) + " condition subsets x " +
         std::to_string(transform_subsets) + " transform subsets in " +
         FormatDouble(elapsed_seconds, 3) + "s\n";
  return out;
}

namespace {

/// Builds the Figure-2 model tree from the condition-induction tree, pairing
/// leaves (YES-first traversal order) with the CTs built from them.
std::unique_ptr<ModelTreeNode> BuildModelTreeNode(
    const DecisionTreeNode& node, const std::vector<ConditionalTransform>& cts,
    size_t* leaf_index) {
  auto out = std::make_unique<ModelTreeNode>();
  if (node.is_leaf) {
    out->is_leaf = true;
    const ConditionalTransform& ct = cts[*leaf_index];
    ++*leaf_index;
    if (!ct.transform.is_no_change()) {
      out->transform = ct.transform;
    }
    out->coverage = ct.coverage;
    out->count = ct.rows.size();
    return out;
  }
  out->is_leaf = false;
  out->split = node.condition;
  out->yes = BuildModelTreeNode(*node.yes, cts, leaf_index);
  out->no = BuildModelTreeNode(*node.no, cts, leaf_index);
  return out;
}

/// True if the summary's transformations read the target's own old value —
/// the natural "update semantics" phrasing (new_bonus = f(old_bonus, ...)).
bool UsesOldTarget(const ChangeSummary& summary) {
  const auto& attrs = summary.transform_attributes();
  return std::find(attrs.begin(), attrs.end(), summary.target_attribute()) !=
         attrs.end();
}

/// Score-descending with deterministic tie-breaks: fewer CTs, then
/// self-referential transformations, then text. Scores are quantized to a
/// 1e-7 grid so floating-point noise cannot override the semantic
/// tie-breaks (quantization keeps the comparison a strict weak order).
int64_t QuantizedScore(const ChangeSummary& s) {
  return static_cast<int64_t>(std::llround(s.scores().score * 1e7));
}

bool SummaryOrder(const ChangeSummary& a, const ChangeSummary& b) {
  int64_t qa = QuantizedScore(a);
  int64_t qb = QuantizedScore(b);
  if (qa != qb) return qa > qb;
  if (a.num_cts() != b.num_cts()) return a.num_cts() < b.num_cts();
  bool a_old = UsesOldTarget(a);
  bool b_old = UsesOldTarget(b);
  if (a_old != b_old) return a_old;
  return a.Signature() < b.Signature();
}

}  // namespace

Result<CharlesEngine::LeafFit> CharlesEngine::FitLeaf(
    const Table& source, const std::vector<double>& y_old,
    const std::vector<double>& y_new, const RowSet& rows,
    const std::vector<std::string>& transform_attrs) const {
  const std::string& target = options_.target_attribute;
  // No-change detection: the whole partition kept its old value.
  bool unchanged = true;
  for (int64_t row : rows) {
    if (std::abs(y_new[static_cast<size_t>(row)] - y_old[static_cast<size_t>(row)]) >
        options_.numeric_tolerance) {
      unchanged = false;
      break;
    }
  }
  LeafFit fit;
  if (unchanged) {
    fit.transform = LinearTransform::NoChange(target);
    fit.partition_mae = 0.0;
    fit.predictions.reserve(static_cast<size_t>(rows.size()));
    for (int64_t row : rows) fit.predictions.push_back(y_old[static_cast<size_t>(row)]);
    return fit;
  }

  // Transformation discovery: per-partition OLS on T.
  Matrix x(rows.size(), static_cast<int64_t>(transform_attrs.size()));
  for (size_t f = 0; f < transform_attrs.size(); ++f) {
    CHARLES_ASSIGN_OR_RETURN(const Column* col, source.ColumnByName(transform_attrs[f]));
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values, col->GatherDoubles(rows));
    for (int64_t r = 0; r < rows.size(); ++r) {
      x.At(r, static_cast<int64_t>(f)) = values[static_cast<size_t>(r)];
    }
  }
  std::vector<double> y_part(static_cast<size_t>(rows.size()));
  for (int64_t r = 0; r < rows.size(); ++r) {
    y_part[static_cast<size_t>(r)] = y_new[static_cast<size_t>(rows[r])];
  }
  CHARLES_ASSIGN_OR_RETURN(LinearModel model,
                           LinearRegression::Fit(x, y_part, transform_attrs));
  NormalityOptions normality = options_.normality;
  normality.exactness_tolerance =
      std::max(normality.exactness_tolerance, options_.numeric_tolerance);
  model = SnapModel(model, x, y_part, normality);
  fit.predictions = model.PredictBatch(x);
  fit.partition_mae = model.mae;
  fit.transform = LinearTransform::Linear(target, std::move(model));
  return fit;
}

Result<ChangeSummary> CharlesEngine::BuildSummary(
    const Table& source, const std::vector<double>& y_old,
    const std::vector<double>& y_new, const PartitionCandidate& candidate,
    const std::vector<std::string>& transform_attrs,
    const std::vector<std::string>& condition_attrs, LeafFitCache* cache) const {
  const std::string& target = options_.target_attribute;
  int64_t n = source.num_rows();
  std::vector<double> y_hat = y_old;
  std::vector<ConditionalTransform> cts;
  cts.reserve(candidate.leaves.size());

  for (const DecisionTree::Leaf& leaf : candidate.leaves) {
    const RowSet& rows = leaf.rows;
    ConditionalTransform ct;
    ct.condition = leaf.condition;
    ct.rows = rows;
    ct.coverage = rows.Coverage(n);

    const LeafFit* fit = nullptr;
    LeafFit local;
    if (cache != nullptr) {
      auto it = cache->find(rows.indices());
      if (it == cache->end()) {
        CHARLES_ASSIGN_OR_RETURN(local,
                                 FitLeaf(source, y_old, y_new, rows, transform_attrs));
        it = cache->emplace(rows.indices(), std::move(local)).first;
      }
      fit = &it->second;
    } else {
      CHARLES_ASSIGN_OR_RETURN(local,
                               FitLeaf(source, y_old, y_new, rows, transform_attrs));
      fit = &local;
    }
    ct.transform = fit->transform;
    ct.partition_mae = fit->partition_mae;
    for (int64_t r = 0; r < rows.size(); ++r) {
      y_hat[static_cast<size_t>(rows[r])] = fit->predictions[static_cast<size_t>(r)];
    }
    cts.push_back(std::move(ct));
  }

  ChangeSummary summary(std::move(cts), target);
  summary.set_attributes(condition_attrs, transform_attrs);

  // Attach the model tree (condition tree + fitted leaf transforms).
  if (candidate.tree != nullptr) {
    size_t leaf_index = 0;
    auto root = BuildModelTreeNode(candidate.tree->root(), summary.cts(), &leaf_index);
    summary.set_tree(std::make_shared<ModelTree>(std::move(root)));
  }

  Scorer scorer(options_, y_old, y_new);
  summary.set_scores(scorer.Score(summary, y_hat));
  return summary;
}

Result<SummaryList> CharlesEngine::Run(const Table& source, const Table& target) const {
  auto start_time = std::chrono::steady_clock::now();
  CHARLES_RETURN_NOT_OK(options_.Validate());

  DiffOptions diff_options;
  diff_options.key_columns = options_.key_columns;
  diff_options.numeric_tolerance = options_.numeric_tolerance;
  diff_options.allow_insert_delete = options_.allow_insert_delete;
  CHARLES_ASSIGN_OR_RETURN(SnapshotDiff diff,
                           SnapshotDiff::Compute(source, target, diff_options));

  // Alignment: make pair order coincide with analysis-table row order.
  bool identity_alignment =
      diff.num_pairs() == source.num_rows() &&
      std::all_of(diff.pairs().begin(), diff.pairs().end(),
                  [i = int64_t{0}](const SnapshotDiff::AlignedPair& p) mutable {
                    return p.source_row == i++;
                  });
  Table matched_view;
  const Table* analysis = &source;
  if (!identity_alignment) {
    std::vector<int64_t> matched;
    matched.reserve(diff.pairs().size());
    for (const auto& pair : diff.pairs()) matched.push_back(pair.source_row);
    CHARLES_ASSIGN_OR_RETURN(matched_view, source.Take(RowSet(std::move(matched))));
    analysis = &matched_view;
  }
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_old,
                           diff.SourceValues(options_.target_attribute));
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> y_new,
                           diff.TargetValues(options_.target_attribute));

  // Attribute shortlists: assistant by default, user overrides honoured.
  CHARLES_ASSIGN_OR_RETURN(SetupResult setup, SetupAssistant::Analyze(diff, options_));
  if (!options_.condition_attributes.empty()) {
    std::vector<AttributeCandidate> forced;
    for (const std::string& name : options_.condition_attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, analysis->schema().FieldIndex(name));
      forced.push_back(AttributeCandidate{
          name, 1.0, IsNumeric(analysis->schema().field(idx).type), true});
    }
    setup.condition_candidates = std::move(forced);
  }
  if (!options_.transform_attributes.empty()) {
    std::vector<AttributeCandidate> forced;
    for (const std::string& name : options_.transform_attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, analysis->schema().FieldIndex(name));
      if (!IsNumeric(analysis->schema().field(idx).type)) {
        return Status::TypeError("transformation attribute '" + name + "' is not numeric");
      }
      forced.push_back(AttributeCandidate{name, 1.0, true, true});
    }
    setup.transform_candidates = std::move(forced);
  }

  std::vector<std::string> cond_names = setup.ConditionNames();
  std::vector<std::string> tran_names = setup.TransformNames();
  std::vector<int> cond_indices;
  for (const std::string& name : cond_names) {
    CHARLES_ASSIGN_OR_RETURN(int idx, analysis->schema().FieldIndex(name));
    cond_indices.push_back(idx);
  }

  // Subset enumeration (paper: all C ⊆ A_cond with |C| ≤ c, all T ⊆ A_tran
  // with |T| ≤ t; the empty T yields constant-shift transformations).
  std::vector<std::vector<int>> c_subsets = EnumerateSubsets(
      static_cast<int>(cond_names.size()), options_.max_condition_attrs);
  std::vector<std::vector<int>> t_subsets = EnumerateSubsets(
      static_cast<int>(tran_names.size()), options_.max_transform_attrs);
  t_subsets.insert(t_subsets.begin(), std::vector<int>{});

  SummaryList result;
  result.setup = setup;
  result.condition_subsets = static_cast<int64_t>(c_subsets.size());
  result.transform_subsets = static_cast<int64_t>(t_subsets.size());

  // Phase 1 — change-signal clusterings. Residual clusterings depend on the
  // transformation subset T; delta/relative-delta clusterings do not, so
  // they are computed once. All labelings are pooled, canonicalized, and
  // deduplicated: tree induction below runs once per (C, labeling) instead
  // of once per (C, T, k).
  auto phase1_start = std::chrono::steady_clock::now();
  std::vector<std::vector<int>> labelings;
  std::set<std::vector<int>> seen_labelings;
  std::vector<std::vector<std::string>> t_attr_names;
  for (size_t ti = 0; ti < t_subsets.size(); ++ti) {
    PartitionFinder::Input input;
    input.source = analysis;
    input.y_old = &y_old;
    input.y_new = &y_new;
    for (int t : t_subsets[ti]) {
      input.transform_attrs.push_back(tran_names[static_cast<size_t>(t)]);
    }
    t_attr_names.push_back(input.transform_attrs);
    Result<PartitionFinder::ResidualClusterings> clusterings =
        PartitionFinder::ClusterResiduals(input, options_,
                                          /*include_delta_signals=*/ti == 0);
    if (!clusterings.ok()) continue;
    for (KMeansResult& clustering : clusterings->clusterings) {
      std::vector<int> canonical =
          PartitionFinder::CanonicalizeLabels(clustering.labels);
      if (seen_labelings.insert(canonical).second) {
        labelings.push_back(std::move(canonical));
      }
    }
  }

  result.labelings = static_cast<int64_t>(labelings.size());
  result.clustering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase1_start)
          .count();

  // Phase 2 — condition induction: one tree per (C, labeling), partitions
  // deduplicated globally by their condition signature.
  auto phase2_start = std::chrono::steady_clock::now();
  struct PartitionEntry {
    PartitionCandidate candidate;
    std::vector<std::string> condition_attrs;
  };
  std::vector<PartitionEntry> partitions;
  std::set<std::string> seen_partitions;
  CHARLES_ASSIGN_OR_RETURN(TreeAttributeCache attr_cache,
                           TreeAttributeCache::Build(*analysis, cond_indices));
  for (const std::vector<int>& c_subset : c_subsets) {
    std::vector<int> attr_indices;
    std::vector<std::string> attr_names;
    for (int c : c_subset) {
      attr_indices.push_back(cond_indices[static_cast<size_t>(c)]);
      attr_names.push_back(cond_names[static_cast<size_t>(c)]);
    }
    Result<std::vector<PartitionCandidate>> candidates = PartitionFinder::InduceCandidates(
        *analysis, labelings, attr_indices, options_, &attr_cache);
    if (!candidates.ok()) continue;
    for (PartitionCandidate& candidate : *candidates) {
      std::string signature;
      for (const auto& leaf : candidate.leaves) {
        signature += leaf.condition->ToString();
        signature += ";;";
      }
      if (!seen_partitions.insert(signature).second) continue;
      partitions.push_back(PartitionEntry{std::move(candidate), attr_names});
    }
  }

  // Bound the search: keep the partitionings whose conditions describe
  // their source clusters best (deterministic order).
  if (static_cast<int>(partitions.size()) > options_.max_partitions) {
    std::stable_sort(partitions.begin(), partitions.end(),
                     [](const PartitionEntry& a, const PartitionEntry& b) {
                       double aa = a.candidate.label_agreement;
                       double bb = b.candidate.label_agreement;
                       if (aa != bb) return aa > bb;
                       return a.candidate.leaves.size() < b.candidate.leaves.size();
                     });
    partitions.resize(static_cast<size_t>(options_.max_partitions));
  }
  result.partitions = static_cast<int64_t>(partitions.size());
  result.induction_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase2_start)
          .count();

  // Phase 3 — transformation discovery and scoring: every surviving
  // partitioning is paired with every transformation subset.
  auto phase3_start = std::chrono::steady_clock::now();
  std::map<std::string, ChangeSummary> best_by_signature;
  std::vector<LeafFitCache> caches(t_attr_names.size());
  for (const PartitionEntry& entry : partitions) {
    for (size_t ti = 0; ti < t_attr_names.size(); ++ti) {
      const std::vector<std::string>& transform_attrs = t_attr_names[ti];
      Result<ChangeSummary> summary = BuildSummary(
          *analysis, y_old, y_new, entry.candidate, transform_attrs,
          entry.condition_attrs, &caches[ti]);
      if (!summary.ok()) continue;
      ++result.candidates_evaluated;
      std::string signature = summary->Signature();
      auto it = best_by_signature.find(signature);
      if (it == best_by_signature.end()) {
        best_by_signature.emplace(std::move(signature), std::move(*summary));
      } else {
        ++result.candidates_deduped;
        if (SummaryOrder(*summary, it->second)) it->second = std::move(*summary);
      }
    }
  }

  result.fitting_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - phase3_start)
          .count();

  result.summaries.reserve(best_by_signature.size());
  for (auto& [signature, summary] : best_by_signature) {
    result.summaries.push_back(std::move(summary));
  }
  std::sort(result.summaries.begin(), result.summaries.end(), SummaryOrder);
  if (static_cast<int>(result.summaries.size()) > options_.top_n) {
    result.summaries.resize(static_cast<size_t>(options_.top_n));
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
          .count();
  return result;
}

Result<SummaryList> SummarizeChanges(const Table& source, const Table& target,
                                     const CharlesOptions& options) {
  CharlesEngine engine(options);
  return engine.Run(source, target);
}

}  // namespace charles
