#include "core/run_pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <unordered_set>

#include "common/combinatorics.h"
#include "common/fnv.h"
#include "distributed/coordinator.h"
#include "distributed/in_process_backend.h"
#include "distributed/remote_backend.h"
#include "distributed/shard_planner.h"
#include "distributed/subprocess_backend.h"
#include "linalg/batch_fold.h"
#include "linalg/error_partials.h"
#include "linalg/kernels/kernel.h"
#include "ml/linear_regression.h"
#include "obs/metrics.h"
#include "parallel/parallel.h"

namespace charles {

namespace {

/// True if the summary's transformations read the target's own old value —
/// the natural "update semantics" phrasing (new_bonus = f(old_bonus, ...)).
bool UsesOldTarget(const ChangeSummary& summary) {
  const auto& attrs = summary.transform_attributes();
  return std::find(attrs.begin(), attrs.end(), summary.target_attribute()) !=
         attrs.end();
}

/// Score-descending with deterministic tie-breaks: fewer CTs, then
/// self-referential transformations, then text. Scores are quantized to a
/// 1e-7 grid so floating-point noise cannot override the semantic
/// tie-breaks (quantization keeps the comparison a strict weak order).
int64_t QuantizedScore(const ChangeSummary& s) {
  return static_cast<int64_t>(std::llround(s.scores().score * 1e7));
}

bool SummaryOrder(const ChangeSummary& a, const ChangeSummary& b) {
  int64_t qa = QuantizedScore(a);
  int64_t qb = QuantizedScore(b);
  if (qa != qb) return qa > qb;
  if (a.num_cts() != b.num_cts()) return a.num_cts() < b.num_cts();
  bool a_old = UsesOldTarget(a);
  bool b_old = UsesOldTarget(b);
  if (a_old != b_old) return a_old;
  return a.Signature() < b.Signature();
}

uint64_t FnvMixDoubles(uint64_t h, const std::vector<double>& values) {
  for (double v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = FnvMixBytes(h, &bits, sizeof(bits));
  }
  return h;
}

uint64_t FnvMixString(uint64_t h, const std::string& s) {
  h = FnvMixBytes(h, s.data(), s.size());
  // Length separator so {"ab","c"} and {"a","bc"} hash differently.
  uint64_t len = s.size();
  return FnvMixBytes(h, &len, sizeof(len));
}

/// \brief Hash of everything a cached leaf fit depends on beyond its LeafKey.
///
/// A leaf fit is a pure function of (transform columns at the leaf's rows,
/// y_old, y_new at those rows, the T-subset enumeration mapping t_index to
/// attribute names, the target attribute, the numeric tolerance, and the
/// normality options). The fingerprint hashes all of those run-wide, so a
/// long-lived EngineContext cache can serve fits across runs: runs whose
/// inputs differ get different fingerprints (up to 64-bit FNV-1a collisions,
/// vanishingly unlikely but not impossible) and therefore never observe each
/// other's fits when sharing one cache.
uint64_t ComputeRunFingerprint(const CharlesOptions& options,
                               const std::vector<std::string>& tran_names,
                               const ColumnCache& tran_columns,
                               const std::vector<double>& y_old,
                               const std::vector<double>& y_new) {
  uint64_t h = kFnvOffsetBasis;
  h = FnvMixString(h, options.target_attribute);
  const double knobs[] = {options.numeric_tolerance,
                          options.normality.enable_snapping ? 1.0 : 0.0,
                          options.normality.max_relative_coefficient_shift,
                          options.normality.max_relative_accuracy_loss,
                          options.normality.exactness_tolerance,
                          static_cast<double>(options.max_transform_attrs),
                          // The two solvers round differently at the ~1e-12
                          // level, so runs on different paths must never
                          // observe each other's fits. The statistics block
                          // size picks the evaluation order within the fast
                          // path, so it separates fits the same way.
                          options.use_sufficient_stats ? 1.0 : 0.0,
                          // Only the fast path folds at block granularity;
                          // QR-path runs with different block sizes produce
                          // identical fits and may share cache entries.
                          options.use_sufficient_stats
                              ? static_cast<double>(options.stats_block_rows)
                              : 0.0};
  h = FnvMixBytes(h, knobs, sizeof(knobs));
  for (const std::string& name : tran_names) {
    h = FnvMixString(h, name);
    const std::vector<double>* values = tran_columns.Find(name);
    if (values != nullptr) h = FnvMixDoubles(h, *values);
  }
  h = FnvMixDoubles(h, y_old);
  h = FnvMixDoubles(h, y_new);
  return h;
}

/// The run's shard backend, constructed on first use and owned by the
/// RunState so every task round of the run shares one instance. The local
/// backends are stateless, but the remote backend caches worker connections
/// and installed-input epochs — sharing it across rounds is what makes the
/// ShardInput ship once per (snapshot, plan) instead of once per round.
Result<ShardBackend*> SelectShardBackend(RunState& state) {
  if (state.shard_backend == nullptr) {
    const CharlesOptions& options = state.options;
    switch (options.shard_backend) {
      case ShardBackendKind::kSubprocess:
        state.shard_backend = std::make_unique<SubprocessBackend>();
        break;
      case ShardBackendKind::kRemote: {
        RemoteBackendOptions remote;
        remote.endpoints = options.remote_workers;
        remote.connect_timeout_ms = options.remote_connect_timeout_ms;
        remote.task_timeout_ms = options.remote_task_timeout_ms;
        remote.max_task_retries = options.remote_max_task_retries;
        remote.retry_backoff_ms = options.remote_retry_backoff_ms;
        remote.health_check_interval_ms =
            options.remote_health_check_interval_ms;
        CHARLES_ASSIGN_OR_RETURN(state.shard_backend,
                                 RemoteBackend::Create(std::move(remote)));
        break;
      }
      case ShardBackendKind::kInProcess:
        state.shard_backend = std::make_unique<InProcessBackend>();
        break;
    }
  }
  return state.shard_backend.get();
}

/// Copies the remote backend's cumulative dispatch counters into the run
/// result; no-op for local backends. Called after every coordinator round —
/// the counters are cumulative, so the last call's values stand.
void FoldRemoteDiagnostics(RunState& state) {
  auto* remote = dynamic_cast<RemoteBackend*>(state.shard_backend.get());
  if (remote == nullptr) return;
  RemoteBackendDiagnostics diagnostics = remote->Diagnostics();
  state.result.remote_tasks_dispatched = diagnostics.tasks_dispatched;
  state.result.remote_task_retries = diagnostics.task_retries;
  state.result.remote_input_installs = diagnostics.input_installs;
  state.result.remote_workers = std::move(diagnostics.workers);
}

/// Folds one coordinator round's batched-fold counters into the run result.
/// Split out from FoldRoundDiagnostics because the central (unsharded)
/// batched pre-sweep reports staging activity without being a shard round —
/// its shards_used / shard_* diagnostics must stay zero.
void FoldBatchDiagnostics(const CoordinatorTaskResult& merged,
                          SummaryList* result) {
  result->batched_blocks_staged += merged.batch_blocks_staged;
  result->batched_fold_accumulators += merged.batch_accumulators_folded;
  result->batch_leaves_per_block_max =
      std::max(result->batch_leaves_per_block_max,
               merged.batch_max_accumulators_per_block);
}

/// The engine-side (non-coordinator) flavour of the same fold.
void FoldBatchCounters(const kernels::BatchFoldCounters& counters,
                       SummaryList* result) {
  result->batched_blocks_staged += counters.blocks_staged;
  result->batched_fold_accumulators += counters.accumulators_folded;
  result->batch_leaves_per_block_max = std::max(
      result->batch_leaves_per_block_max, counters.max_accumulators_per_block);
}

/// Folds one coordinator round's execution counters into the run result.
void FoldRoundDiagnostics(const CoordinatorTaskResult& merged,
                          const ShardPlan& plan, SummaryList* result) {
  result->shards_used =
      std::max(result->shards_used, static_cast<int>(plan.num_shards()));
  result->shard_tasks_executed += merged.shards_executed;
  result->shard_rows_scanned += merged.rows_scanned;
  result->shard_blocks_merged += merged.blocks_merged;
  result->shard_seconds += merged.elapsed_seconds;
  FoldBatchDiagnostics(merged, result);
}

}  // namespace

Status RunState::Cancelled(const std::string& where) {
  if (stream != nullptr && !cancel_emitted) {
    std::lock_guard<std::mutex> lock(stream_merge.mu);
    SummaryStreamUpdate update;
    update.cancelled = true;
    update.shards_completed = stream_merge.completed.load();
    update.shards_total = work_items;
    update.elapsed_seconds = ElapsedSeconds();
    update.provisional.reserve(stream_merge.top.size());
    for (const auto& entry : stream_merge.top) {
      update.provisional.push_back(entry.second);
    }
    stream->Emit(update);
  }
  cancel_emitted = true;
  return Status::Cancelled("Find cancelled " + where);
}

// --- Stage: DiffAlign -------------------------------------------------------

Status RunPipeline::DiffAlign(RunState& state) {
  DiffOptions diff_options;
  diff_options.key_columns = state.options.key_columns;
  diff_options.numeric_tolerance = state.options.numeric_tolerance;
  diff_options.allow_insert_delete = state.options.allow_insert_delete;
  CHARLES_ASSIGN_OR_RETURN(
      state.diff, SnapshotDiff::Compute(state.source, state.target, diff_options));

  // Alignment: make pair order coincide with analysis-table row order.
  bool identity_alignment =
      state.diff.num_pairs() == state.source.num_rows() &&
      std::all_of(state.diff.pairs().begin(), state.diff.pairs().end(),
                  [i = int64_t{0}](const SnapshotDiff::AlignedPair& p) mutable {
                    return p.source_row == i++;
                  });
  state.analysis = &state.source;
  if (!identity_alignment) {
    std::vector<int64_t> matched;
    matched.reserve(state.diff.pairs().size());
    for (const auto& pair : state.diff.pairs()) matched.push_back(pair.source_row);
    CHARLES_ASSIGN_OR_RETURN(state.matched_view,
                             state.source.Take(RowSet(std::move(matched))));
    state.analysis = &state.matched_view;
  }
  CHARLES_ASSIGN_OR_RETURN(state.y_old,
                           state.diff.SourceValues(state.options.target_attribute));
  CHARLES_ASSIGN_OR_RETURN(state.y_new,
                           state.diff.TargetValues(state.options.target_attribute));
  return Status::OK();
}

// --- Stage: Setup -----------------------------------------------------------

Status RunPipeline::Setup(RunState& state) {
  const CharlesOptions& options = state.options;
  const Table& analysis = *state.analysis;

  // Install the run's intra-block compute kernel before any fold runs
  // (phases 1–3 and every shard backend dispatch through it). Process-wide
  // is sound even with concurrent differently-configured runs: kernels are
  // bit-identical by contract, so whichever kernel a fold sees, the bits
  // come out the same — which is also why kernel_backend is deliberately
  // not part of the run fingerprint (cached fits stay valid across
  // kernels). Subprocess shard workers fork after this point and inherit
  // the installed kernel; remote workers resolve their own (auto) — same
  // bits either way.
  CHARLES_ASSIGN_OR_RETURN(kernels::KernelBackend kernel_backend,
                           kernels::ParseKernelBackend(options.kernel_backend));
  state.result.kernel_used = kernels::SetActiveKernel(kernel_backend).name;
  // The batch-fold mode rides the same process-wide seam and the same
  // soundness argument: batched and per-leaf folds are bit-identical by
  // contract, so a concurrent run observing this run's mode still produces
  // its own exact bits (and, like the kernel, batch_fold is not part of the
  // run fingerprint). Remote workers resolve their own mode.
  CHARLES_ASSIGN_OR_RETURN(kernels::BatchFoldMode batch_mode,
                           kernels::ParseBatchFoldMode(options.batch_fold));
  kernels::SetActiveBatchFold(batch_mode);

  // Attribute shortlists: assistant by default, user overrides honoured.
  CHARLES_ASSIGN_OR_RETURN(state.result.setup,
                           SetupAssistant::Analyze(state.diff, options));
  SetupResult& setup = state.result.setup;
  if (!options.condition_attributes.empty()) {
    std::vector<AttributeCandidate> forced;
    for (const std::string& name : options.condition_attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, analysis.schema().FieldIndex(name));
      forced.push_back(AttributeCandidate{
          name, 1.0, IsNumeric(analysis.schema().field(idx).type), true});
    }
    setup.condition_candidates = std::move(forced);
  }
  if (!options.transform_attributes.empty()) {
    std::vector<AttributeCandidate> forced;
    for (const std::string& name : options.transform_attributes) {
      CHARLES_ASSIGN_OR_RETURN(int idx, analysis.schema().FieldIndex(name));
      if (!IsNumeric(analysis.schema().field(idx).type)) {
        return Status::TypeError("transformation attribute '" + name +
                                 "' is not numeric");
      }
      forced.push_back(AttributeCandidate{name, 1.0, true, true});
    }
    setup.transform_candidates = std::move(forced);
  }

  state.cond_names = setup.ConditionNames();
  state.tran_names = setup.TransformNames();
  for (const std::string& name : state.cond_names) {
    CHARLES_ASSIGN_OR_RETURN(int idx, analysis.schema().FieldIndex(name));
    state.cond_indices.push_back(idx);
  }

  // Subset enumeration (paper: all C ⊆ A_cond with |C| ≤ c, all T ⊆ A_tran
  // with |T| ≤ t; the empty T yields constant-shift transformations).
  state.c_subsets = EnumerateSubsets(static_cast<int>(state.cond_names.size()),
                                     options.max_condition_attrs);
  state.t_subsets = EnumerateSubsets(static_cast<int>(state.tran_names.size()),
                                     options.max_transform_attrs);
  state.t_subsets.insert(state.t_subsets.begin(), std::vector<int>{});

  state.result.condition_subsets = static_cast<int64_t>(state.c_subsets.size());
  state.result.transform_subsets = static_cast<int64_t>(state.t_subsets.size());
  return Status::OK();
}

// --- Stage: Phase1Signals ---------------------------------------------------

Status RunPipeline::Phase1Signals(RunState& state) {
  const CharlesOptions& options = state.options;

  // Column-gather cache: every T-subset's feature matrix draws on the same
  // shortlisted columns, so each is converted to doubles exactly once and
  // shared read-only by all phase-1 workers.
  CHARLES_ASSIGN_OR_RETURN(state.tran_columns,
                           ColumnCache::Build(*state.analysis, state.tran_names));

  // Run id: the run fingerprint, computed unconditionally and *before* any
  // shard dispatch so worker log lines and remote spans can carry it. The
  // `fingerprint` field keeps its historical contract — 0 without a context
  // — so nothing cache-keys on a run that has no cross-run cache. The run
  // id doubles as the trace id; the scope installs it on this thread for
  // the rest of the stage (the signal-stats round below dispatches with it).
  state.run_id = ComputeRunFingerprint(options, state.tran_names,
                                       state.tran_columns, state.y_old,
                                       state.y_new);
  state.fingerprint = state.context != nullptr ? state.run_id : 0;
  state.result.run_id = obs::FormatRunId(state.run_id);
  if (state.recorder != nullptr) state.recorder->set_trace_id(state.run_id);
  obs::RunIdScope run_scope(state.run_id);

  // Sufficient statistics of the full transformation shortlist over all
  // rows, accumulated through the canonical block fold (AccumulateRowBlocks)
  // every other stats producer uses. Phase 1 solves every T-subset's global
  // model from these moments (a p×p sub-solve instead of an O(n·p²) QR per
  // subset), and phase 3 seeds its leaf-stats cache with them — the k = 1
  // "universal" partitions cover exactly these rows in exactly this order.
  // A sharded run accumulates them through a kSignalStats task round —
  // shards emit the identical per-block partials and the coordinator folds
  // them in block order, so the merged moments are bit-identical to the
  // central fold (this is the phase-1 row scan that used to stay on the
  // coordinator even when sharding was on).
  if (options.use_sufficient_stats) {
    std::vector<const std::vector<double>*> shortlist_columns;
    bool resolved =
        state.tran_columns.ResolveColumns(state.tran_names, &shortlist_columns);
    CHARLES_CHECK(resolved);  // Build() covered exactly these names
    ShardPlan plan;
    if (options.num_shards > 0) {
      plan = PlanShards(state.analysis->num_rows(), options.stats_block_rows,
                        options.num_shards);
    }
    if (plan.num_shards() > 0) {
      ShardInput shard_input;
      shard_input.shortlist = &state.tran_names;
      shard_input.columns = &state.tran_columns;
      shard_input.y_old = &state.y_old;
      shard_input.y_new = &state.y_new;
      CHARLES_ASSIGN_OR_RETURN(ShardBackend* backend,
                               SelectShardBackend(state));
      ShardTask task;
      task.kind = ShardTaskKind::kSignalStats;
      Result<CoordinatorTaskResult> merged =
          Coordinator::RunTask(shard_input, plan, backend, state.pool, task,
                               state.stop);
      if (!merged.ok()) {
        if (merged.status().IsCancelled()) {
          return state.Cancelled("during the signal-stats shard round");
        }
        return merged.status();
      }
      state.shortlist_stats =
          std::make_shared<const SufficientStats>(std::move(merged->signal_stats));
      state.result.shard_signal_seconds = merged->elapsed_seconds;
      FoldRoundDiagnostics(*merged, plan, &state.result);
      FoldRemoteDiagnostics(state);
    } else if (kernels::ShouldBatchFold(kernels::ActiveBatchFold(), 1) &&
               !state.y_new.empty()) {
      // One accumulator shares its staging cost with nobody, so the central
      // phase-1 fold batches only under an explicit "on" — which then proves
      // the staged path bit-identical against AccumulateRangeBlocks on the
      // largest fold of the run.
      kernels::BatchFoldCounters counters;
      std::vector<kernels::BatchLeafRequest> all_rows(1);
      all_rows[0].count = static_cast<int64_t>(state.y_new.size());
      std::vector<SufficientStats> folded = kernels::BatchAccumulateRowBlocks(
          shortlist_columns, state.y_new, all_rows, 0,
          static_cast<int64_t>(state.y_new.size()), options.stats_block_rows,
          &counters);
      state.shortlist_stats =
          std::make_shared<const SufficientStats>(std::move(folded[0]));
      FoldBatchCounters(counters, &state.result);
    } else {
      state.shortlist_stats = std::make_shared<const SufficientStats>(
          AccumulateRangeBlocks(shortlist_columns, state.y_new,
                                static_cast<int64_t>(state.y_new.size()),
                                options.stats_block_rows));
    }
  }

  // Phase 1 — change-signal clusterings. Residual clusterings depend on the
  // transformation subset T; delta/relative-delta clusterings do not, so
  // they are computed once. All labelings are pooled, canonicalized, and
  // deduplicated: tree induction below runs once per (C, labeling) instead
  // of once per (C, T, k). Each T-subset clusters independently (k-means is
  // seeded per call); pooling dedups sequentially in T order.
  struct TSubsetLabelings {
    std::vector<std::string> transform_attrs;
    std::vector<std::vector<int>> canonical;
  };
  std::vector<TSubsetLabelings> per_t = ParallelMap<TSubsetLabelings>(
      state.pool, static_cast<int64_t>(state.t_subsets.size()), [&](int64_t ti) {
        TSubsetLabelings out;
        PartitionFinder::Input input;
        input.source = state.analysis;
        input.y_old = &state.y_old;
        input.y_new = &state.y_new;
        input.column_cache = &state.tran_columns;
        input.shortlist_stats = state.shortlist_stats.get();
        input.shortlist_subset = state.t_subsets[static_cast<size_t>(ti)];
        for (int t : state.t_subsets[static_cast<size_t>(ti)]) {
          input.transform_attrs.push_back(
              state.tran_names[static_cast<size_t>(t)]);
        }
        out.transform_attrs = input.transform_attrs;
        Result<PartitionFinder::ResidualClusterings> clusterings =
            PartitionFinder::ClusterResiduals(input, state.options,
                                              /*include_delta_signals=*/ti == 0);
        if (!clusterings.ok()) return out;
        out.canonical.reserve(clusterings->clusterings.size());
        for (KMeansResult& clustering : clusterings->clusterings) {
          out.canonical.push_back(
              PartitionFinder::CanonicalizeLabels(clustering.labels));
        }
        return out;
      });

  std::set<std::vector<int>> seen_labelings;
  for (TSubsetLabelings& t_result : per_t) {
    state.t_attr_names.push_back(std::move(t_result.transform_attrs));
    for (std::vector<int>& canonical : t_result.canonical) {
      if (seen_labelings.insert(canonical).second) {
        state.labelings.push_back(std::move(canonical));
      }
    }
  }
  state.result.labelings = static_cast<int64_t>(state.labelings.size());
  return Status::OK();
}

// --- Stage: Phase2Trees -----------------------------------------------------

Status RunPipeline::Phase2Trees(RunState& state) {
  const CharlesOptions& options = state.options;

  // One tree per (C, labeling), partitions deduplicated globally by their
  // condition signature. Workers fan out over C-subsets against the shared
  // read-only TreeAttributeCache; the global dedup walks C-subsets in
  // enumeration order.
  CHARLES_ASSIGN_OR_RETURN(
      TreeAttributeCache attr_cache,
      TreeAttributeCache::Build(*state.analysis, state.cond_indices));
  struct CSubsetCandidates {
    std::vector<PartitionCandidate> candidates;
    std::vector<std::string> signatures;
    std::vector<std::string> attr_names;
  };
  std::vector<CSubsetCandidates> per_c = ParallelMap<CSubsetCandidates>(
      state.pool, static_cast<int64_t>(state.c_subsets.size()), [&](int64_t ci) {
        CSubsetCandidates out;
        std::vector<int> attr_indices;
        for (int c : state.c_subsets[static_cast<size_t>(ci)]) {
          attr_indices.push_back(state.cond_indices[static_cast<size_t>(c)]);
          out.attr_names.push_back(state.cond_names[static_cast<size_t>(c)]);
        }
        Result<std::vector<PartitionCandidate>> candidates =
            PartitionFinder::InduceCandidates(*state.analysis, state.labelings,
                                              attr_indices, state.options,
                                              &attr_cache);
        if (!candidates.ok()) return out;
        out.candidates = std::move(*candidates);
        out.signatures.reserve(out.candidates.size());
        for (const PartitionCandidate& candidate : out.candidates) {
          std::string signature;
          for (const auto& leaf : candidate.leaves) {
            signature += leaf.condition->ToString();
            signature += ";;";
          }
          out.signatures.push_back(std::move(signature));
        }
        return out;
      });

  std::set<std::string> seen_partitions;
  for (CSubsetCandidates& c_result : per_c) {
    for (size_t i = 0; i < c_result.candidates.size(); ++i) {
      if (!seen_partitions.insert(c_result.signatures[i]).second) continue;
      state.partitions.push_back(RunState::PartitionEntry{
          std::move(c_result.candidates[i]), c_result.attr_names});
    }
  }

  // Bound the search: keep the partitionings whose conditions describe
  // their source clusters best (deterministic order).
  if (static_cast<int>(state.partitions.size()) > options.max_partitions) {
    std::stable_sort(state.partitions.begin(), state.partitions.end(),
                     [](const RunState::PartitionEntry& a,
                        const RunState::PartitionEntry& b) {
                       double aa = a.candidate.label_agreement;
                       double bb = b.candidate.label_agreement;
                       if (aa != bb) return aa > bb;
                       return a.candidate.leaves.size() < b.candidate.leaves.size();
                     });
    state.partitions.resize(static_cast<size_t>(options.max_partitions));
  }
  state.result.partitions = static_cast<int64_t>(state.partitions.size());
  return Status::OK();
}

// --- Stage: Phase3Fits ------------------------------------------------------

namespace {

/// True when the context's cross-run cache holds a fit for every
/// transformation subset of this leaf — the warm-cache elision predicate:
/// such a leaf's moments are never consulted by the sweep (every BuildSummary
/// visit is served by rehydrating the cached fit), so scanning it again
/// would be pure waste. If a concurrent trim evicts an entry between this
/// check and the sweep, FitLeaf falls back to the central canonical
/// accumulation — identical bits, just without the saved scan.
bool AllLeafFitsCached(const RunState& state, const RowSet& rows,
                       int64_t t_count) {
  if (state.context == nullptr || state.fingerprint == 0) return false;
  SharedLeafFitCache* cache = state.context->leaf_cache();
  // One key (and one row-vector copy) per leaf, re-pointed per subset.
  LeafKey key{state.fingerprint, 0, rows.indices()};
  for (int64_t ti = 0; ti < t_count; ++ti) {
    key.t_index = static_cast<size_t>(ti);
    SharedLeafFit cached;
    if (!cache->Lookup(key, &cached)) return false;
  }
  return true;
}

/// \brief The distributed task rounds of phase 3: kLeafMoments over the
/// not-yet-cached leaves, then kScorePartials for the candidate transforms
/// those moments admit.
///
/// Seeds `run_stats_cache` with the merged leaf moments (keyed exactly as
/// lazy accumulation would key them), `nochange_evidence` with the folded
/// max |Δy| per swept leaf, and `score_evidence` with the exact
/// (Σ|y − ŷ|, exact count) of every successfully pre-solved (leaf, T)
/// model — all bit-identical to the central computations they replace, so
/// the sweep below runs unchanged. The score probes' L1 projection doubles
/// as the SnapModel baseline, so no separate error round is needed.
Status RunShardRounds(
    RunState& state, SharedLeafStatsCache& run_stats_cache,
    std::unordered_map<std::vector<int64_t>, double, RowIndicesHash>*
        nochange_evidence,
    CharlesEngine::LeafScoreEvidenceMap* score_evidence) {
  const CharlesOptions& options = state.options;
  ShardInput shard_input;
  shard_input.shortlist = &state.tran_names;
  shard_input.columns = &state.tran_columns;
  shard_input.y_old = &state.y_old;
  shard_input.y_new = &state.y_new;
  // Leaves are deduplicated by row set in partition enumeration order
  // (stats are T-independent), so each is scanned once regardless of how
  // many condition trees share it.
  std::unordered_set<std::vector<int64_t>, RowIndicesHash> seen_leaves;
  for (const RunState::PartitionEntry& entry : state.partitions) {
    for (const DecisionTree::Leaf& leaf : entry.candidate.leaves) {
      if (seen_leaves.insert(leaf.rows.indices()).second) {
        shard_input.leaves.push_back(&leaf.rows);
      }
    }
  }
  ShardPlan plan = PlanShards(state.analysis->num_rows(), options.stats_block_rows,
                              options.num_shards);
  if (plan.num_shards() == 0 || shard_input.leaves.empty()) return Status::OK();
  CHARLES_ASSIGN_OR_RETURN(ShardBackend* backend, SelectShardBackend(state));
  const int64_t t_count = static_cast<int64_t>(state.t_attr_names.size());

  // Round 1 — kLeafMoments, with warm-cache elision: a leaf whose every
  // (leaf, T) fit is already in the context's cross-run cache is simply not
  // requested (resolving the ROADMAP's warm-rescan waste: a warm repeat run
  // issues zero moment tasks).
  ShardTask moments;
  moments.kind = ShardTaskKind::kLeafMoments;
  for (size_t l = 0; l < shard_input.leaves.size(); ++l) {
    if (AllLeafFitsCached(state, *shard_input.leaves[l], t_count)) {
      state.result.shard_moment_leaves_elided += 1;
    } else {
      moments.leaves.push_back(static_cast<int64_t>(l));
    }
  }
  state.result.shard_moment_leaves_swept =
      static_cast<int64_t>(moments.leaves.size());
  if (moments.leaves.empty()) return Status::OK();

  Result<CoordinatorTaskResult> merged =
      Coordinator::RunTask(shard_input, plan, backend, state.pool, moments,
                           state.stop);
  if (!merged.ok()) {
    if (merged.status().IsCancelled()) {
      return state.Cancelled("during the leaf-moments shard round");
    }
    return merged.status();
  }
  state.result.shard_moments_seconds = merged->elapsed_seconds;
  FoldRoundDiagnostics(*merged, plan, &state.result);

  // Round 2 — kScorePartials: pre-solve every changed (leaf, T) candidate
  // model from the merged moments (row-free p×p solves) and have the shards
  // evaluate its exact score partials — Σ|y − ŷ| plus the within-band
  // count, folded where the rows live. Unchanged leaves (max |Δy| within
  // tolerance) snap to no-change centrally and need no probe; failed solves
  // fall back to the row-level QR ladder centrally and need none either.
  ShardTask errors;
  errors.kind = ShardTaskKind::kScorePartials;
  errors.score_tolerance = state.scorer->exact_tolerance();
  std::vector<size_t> probe_t_index;
  for (size_t i = 0; i < moments.leaves.size(); ++i) {
    const LeafRollup& rollup = merged->leaves[i];
    if (rollup.max_abs_delta <= options.numeric_tolerance) continue;
    for (int64_t ti = 0; ti < t_count; ++ti) {
      Result<LinearModel> fast = LinearRegression::FitFromStats(
          rollup.stats, state.t_subsets[static_cast<size_t>(ti)],
          state.t_attr_names[static_cast<size_t>(ti)]);
      if (!fast.ok()) continue;
      ErrorProbe probe;
      probe.leaf = moments.leaves[i];
      probe.intercept = fast->intercept;
      probe.coefficients = fast->coefficients;
      probe.features.reserve(state.t_subsets[static_cast<size_t>(ti)].size());
      for (int f : state.t_subsets[static_cast<size_t>(ti)]) {
        probe.features.push_back(f);
      }
      errors.probes.push_back(std::move(probe));
      probe_t_index.push_back(static_cast<size_t>(ti));
    }
  }
  if (!errors.probes.empty()) {
    Result<CoordinatorTaskResult> score_merged =
        Coordinator::RunTask(shard_input, plan, backend, state.pool, errors,
                             state.stop);
    if (!score_merged.ok()) {
      if (score_merged.status().IsCancelled()) {
        return state.Cancelled("during the score-partials shard round");
      }
      return score_merged.status();
    }
    for (size_t p = 0; p < errors.probes.size(); ++p) {
      const RowSet* rows =
          shard_input.leaves[static_cast<size_t>(errors.probes[p].leaf)];
      CharlesEngine::LeafScoreEvidence& evidence =
          (*score_evidence)[rows->indices()];
      if (evidence.valid.empty()) {
        evidence.valid.assign(static_cast<size_t>(t_count), 0);
        evidence.partials.assign(static_cast<size_t>(t_count), ScorePartials{});
      }
      evidence.valid[probe_t_index[p]] = 1;
      evidence.partials[probe_t_index[p]] =
          score_merged->score_probes[p].partials;
    }
    state.result.shard_score_probes =
        static_cast<int64_t>(errors.probes.size());
    state.result.shard_score_seconds = score_merged->elapsed_seconds;
    FoldRoundDiagnostics(*score_merged, plan, &state.result);
  }

  // Seed the run's stats machinery with the merged rollups (moved, so this
  // happens after the probes above read them).
  nochange_evidence->reserve(moments.leaves.size());
  for (size_t i = 0; i < moments.leaves.size(); ++i) {
    const RowSet* rows =
        shard_input.leaves[static_cast<size_t>(moments.leaves[i])];
    LeafRollup& rollup = merged->leaves[i];
    run_stats_cache.Insert(
        LeafKey{state.fingerprint, 0, rows->indices()},
        std::make_shared<const SufficientStats>(std::move(rollup.stats)));
    nochange_evidence->emplace(rows->indices(), rollup.max_abs_delta);
  }
  FoldRemoteDiagnostics(state);
  return Status::OK();
}

/// \brief The unsharded batched pre-sweep of phase 3 (batch_fold "auto"/"on").
///
/// The lazy central path accumulates each leaf's moments on first FitLeaf
/// demand — one full column walk *per leaf*. When several leaves await
/// moments, walking the snapshot leaf-by-leaf re-reads every column once per
/// leaf; this pre-sweep instead routes the not-yet-cached changed leaves
/// through one kLeafMoments task on a stack InProcessBackend, whose batched
/// sweep stages each canonical block once and folds all leaves against it.
/// The merged rollups seed `run_stats_cache` under exactly the keys lazy
/// accumulation would use and `nochange_evidence` carries the serial
/// max |Δy| scans, so FitLeaf behaves as if it had done the work itself —
/// bit-identically, per the batch-fold contract. Deliberately not a shard
/// round: shards_used and the shard_* diagnostics stay zero (only the
/// batched_* counters report the staging).
Status RunCentralBatchSweep(
    RunState& state, SharedLeafStatsCache& run_stats_cache,
    std::unordered_map<std::vector<int64_t>, double, RowIndicesHash>*
        nochange_evidence) {
  const CharlesOptions& options = state.options;
  const kernels::BatchFoldMode batch_mode = kernels::ActiveBatchFold();
  const int64_t t_count = static_cast<int64_t>(state.t_attr_names.size());

  // Same leaf universe as the sharded rounds: deduplicated by row set in
  // partition enumeration order, warm-cache-elided leaves never swept.
  std::vector<const RowSet*> candidates;
  std::unordered_set<std::vector<int64_t>, RowIndicesHash> seen_leaves;
  for (const RunState::PartitionEntry& entry : state.partitions) {
    for (const DecisionTree::Leaf& leaf : entry.candidate.leaves) {
      if (!seen_leaves.insert(leaf.rows.indices()).second) continue;
      if (AllLeafFitsCached(state, leaf.rows, t_count)) continue;
      candidates.push_back(&leaf.rows);
    }
  }
  if (!kernels::ShouldBatchFold(batch_mode,
                                static_cast<int64_t>(candidates.size()))) {
    return Status::OK();
  }

  // Serial max |Δy| per candidate leaf (max folds exactly, so this equals
  // the scan FitLeaf would run). Unchanged leaves snap to no-change and
  // their moments are never consulted; leaves whose moments are already
  // cached (the phase-1-seeded all-rows leaf) need no second scan. Only the
  // rest join the batched task.
  ShardInput input;
  input.shortlist = &state.tran_names;
  input.columns = &state.tran_columns;
  input.y_old = &state.y_old;
  input.y_new = &state.y_new;
  ShardTask moments;
  moments.kind = ShardTaskKind::kLeafMoments;
  for (const RowSet* rows : candidates) {
    double max_delta = 0.0;
    for (int64_t row : *rows) {
      const double delta = std::abs(state.y_new[static_cast<size_t>(row)] -
                                    state.y_old[static_cast<size_t>(row)]);
      if (delta > max_delta) max_delta = delta;
    }
    nochange_evidence->emplace(rows->indices(), max_delta);
    if (max_delta <= options.numeric_tolerance) continue;
    std::shared_ptr<const SufficientStats> cached;
    if (run_stats_cache.Lookup(LeafKey{state.fingerprint, 0, rows->indices()},
                               &cached)) {
      continue;
    }
    input.leaves.push_back(rows);
    moments.leaves.push_back(static_cast<int64_t>(input.leaves.size()) - 1);
  }
  if (moments.leaves.empty()) return Status::OK();

  // One block-aligned range per pool thread: the sweep parallelizes like
  // phase 3 would have, and the coordinator's block-order merge keeps the
  // rollups bit-identical at any range count (the distributed contract).
  ShardPlan plan =
      PlanShards(state.analysis->num_rows(), options.stats_block_rows,
                 state.pool != nullptr ? state.num_threads : 1);
  if (plan.num_shards() == 0) return Status::OK();
  InProcessBackend backend;
  Result<CoordinatorTaskResult> merged = Coordinator::RunTask(
      input, plan, &backend, state.pool, moments, state.stop);
  if (!merged.ok()) {
    if (merged.status().IsCancelled()) {
      return state.Cancelled("during the batched leaf pre-sweep");
    }
    return merged.status();
  }
  for (size_t i = 0; i < moments.leaves.size(); ++i) {
    const RowSet* rows = input.leaves[i];
    LeafRollup& rollup = merged->leaves[i];
    run_stats_cache.Insert(
        LeafKey{state.fingerprint, 0, rows->indices()},
        std::make_shared<const SufficientStats>(std::move(rollup.stats)));
  }
  FoldBatchDiagnostics(*merged, &state.result);
  return Status::OK();
}

}  // namespace

Status RunPipeline::Phase3Fits(RunState& state) {
  const CharlesOptions& options = state.options;
  const CharlesEngine& engine = state.engine;
  const int64_t t_count = static_cast<int64_t>(state.t_attr_names.size());
  state.work_items = static_cast<int64_t>(state.partitions.size()) * t_count;

  // The run's one Scorer — the single y_old/y_new copy of the whole sweep
  // (BuildSummary used to construct one per candidate). Built before the
  // shard rounds: its exactness band is what the kScorePartials round ships
  // to workers.
  state.scorer = std::make_unique<Scorer>(options, state.y_old, state.y_new);

  // A bounded run-local cache never gets more shards than entries (the
  // per-shard budget floors at one, which would silently raise the bound).
  const size_t run_cache_bound =
      options.max_cache_entries > 0 ? static_cast<size_t>(options.max_cache_entries)
                                    : 0;
  int run_cache_shards = state.pool != nullptr ? state.num_threads * 4 : 1;
  if (run_cache_bound > 0 &&
      static_cast<size_t>(run_cache_shards) > run_cache_bound) {
    run_cache_shards = static_cast<int>(run_cache_bound);
  }
  state.run_leaf_cache =
      std::make_unique<SharedLeafFitCache>(run_cache_shards, run_cache_bound);
  state.shared_cache = nullptr;
  if (state.context != nullptr) {
    state.shared_cache = state.context->leaf_cache();  // warm across runs
  } else if (state.pool != nullptr) {
    state.shared_cache = state.run_leaf_cache.get();
  }

  // Cross-worker tier of the per-leaf sufficient-statistics cache. Kept
  // per-run (cross-run reuse already happens at the fit level), and used by
  // serial runs too — a leaf's one accumulation scan is what every
  // T-subset's sub-solve amortizes against. Seeded with the all-rows moments
  // accumulated in phase 1: the k = 1 "universal" leaves cover exactly
  // those rows in exactly that order.
  SharedLeafStatsCache run_stats_cache(state.pool != nullptr
                                           ? state.num_threads * 4
                                           : 1);
  if (state.shortlist_stats != nullptr) {
    run_stats_cache.Insert(
        LeafKey{state.fingerprint, 0,
                RowSet::All(state.analysis->num_rows()).indices()},
        state.shortlist_stats);
  }

  // Distributed task rounds (CharlesOptions::num_shards >= 1): merged
  // moments seed the stats cache, folded max |Δy| seeds the no-change
  // evidence, and merged score partials seed the exact score/MAE evidence —
  // so the sweep below runs unchanged, re-solving every leaf fit from
  // currencies bit-identical to the ones it would have computed itself.
  std::unordered_map<std::vector<int64_t>, double, RowIndicesHash>
      nochange_evidence;
  CharlesEngine::LeafScoreEvidenceMap score_evidence;
  if (options.num_shards > 0 && options.use_sufficient_stats) {
    CHARLES_RETURN_NOT_OK(RunShardRounds(state, run_stats_cache,
                                         &nochange_evidence, &score_evidence));
  } else if (options.use_sufficient_stats) {
    CHARLES_RETURN_NOT_OK(
        RunCentralBatchSweep(state, run_stats_cache, &nochange_evidence));
  }

  // Streaming: completed work items merge a copy of their summary into a
  // provisional top-N under a lock, kept sorted and deduplicated by
  // signature exactly as the final reduction ranks — eviction is permanent
  // (the bar only rises), so the incremental top-N equals the top-N of a
  // full best-by-signature merge at every point, and the last update's list
  // is the final ranking. Entirely separate from the deterministic final
  // reduction in RankStream — which summaries appear mid-run depends on
  // scheduling, the returned list never does. Near-zero overhead when no
  // stream is attached.
  auto merge_into_top = [&state](const std::string& signature,
                                 const ChangeSummary& summary) {
    auto& top = state.stream_merge.top;
    auto same = std::find_if(top.begin(), top.end(), [&](const auto& entry) {
      return entry.first == signature;
    });
    if (same != top.end()) {
      if (!SummaryOrder(summary, same->second)) return false;
      top.erase(same);
    } else if (static_cast<int>(top.size()) >= state.options.top_n &&
               !SummaryOrder(summary, top.back().second)) {
      return false;
    }
    auto pos = std::upper_bound(top.begin(), top.end(), summary,
                                [](const ChangeSummary& s, const auto& entry) {
                                  return SummaryOrder(s, entry.second);
                                });
    top.emplace(pos, signature, summary);
    if (static_cast<int>(top.size()) > state.options.top_n) top.pop_back();
    return true;
  };

  // Phase 3 — transformation discovery and scoring: every surviving
  // partitioning is paired with every transformation subset. Work is
  // sharded by (partition, T) pair — finer than per-partition, so the pool
  // stays balanced even when few partitionings survive dedup. Each worker
  // owns a thread-local LeafFitCache per T (lock-free) backed by one
  // cross-worker ShardedCache (the context's cross-run cache when
  // attached), and the per-worker caches and counters are merged at the
  // barrier. The best-by-signature reduction in RankStream then replays the
  // serial (partition, T) visit order, so the surviving summary per
  // signature is scheduling-independent.
  struct Phase3Worker {
    std::vector<CharlesEngine::LeafFitCache> caches;
    CharlesEngine::LeafStatsCache leaf_stats;  ///< per-leaf moments, all T
    CharlesEngine::LeafFitStats stats;
  };
  std::vector<Phase3Worker> workers;
  state.outputs = ParallelMapWithState<RunState::WorkItemOutput, Phase3Worker>(
      state.pool, state.work_items,
      [&]() {
        Phase3Worker worker;
        worker.caches.resize(state.t_attr_names.size());
        return worker;
      },
      [&](Phase3Worker& worker, int64_t item) {
        RunState::WorkItemOutput out;
        // Cancellation point between (partition, T) work items: a stopped
        // run drains its remaining items as no-ops (the pool cannot unqueue
        // them) and the post-barrier check below turns the run into
        // Status::Cancelled.
        if (state.StopRequested()) return out;
        const size_t pi = static_cast<size_t>(item / t_count);
        const size_t ti = static_cast<size_t>(item % t_count);
        const RunState::PartitionEntry& entry = state.partitions[pi];
        CharlesEngine::LeafStatsWorkspace stats_workspace;
        stats_workspace.shortlist = &state.tran_names;
        stats_workspace.t_subset = &state.t_subsets[ti];
        stats_workspace.local = &worker.leaf_stats;
        stats_workspace.shared = &run_stats_cache;
        stats_workspace.fingerprint = state.fingerprint;
        stats_workspace.block_rows = options.stats_block_rows;
        stats_workspace.nochange_max_delta =
            nochange_evidence.empty() ? nullptr : &nochange_evidence;
        stats_workspace.score_evidence =
            score_evidence.empty() ? nullptr : &score_evidence;
        stats_workspace.score_tolerance = state.scorer->exact_tolerance();
        Result<ChangeSummary> summary = engine.BuildSummary(
            *state.analysis, state.y_old, state.y_new, entry.candidate,
            state.t_attr_names[ti], entry.condition_attrs, &worker.caches[ti],
            state.shared_cache, ti, &worker.stats, state.fingerprint,
            &state.tran_columns, &stats_workspace, state.scorer.get());
        if (summary.ok()) {
          out.signature = summary->Signature();
          out.summary = std::move(*summary);
          out.ok = true;
        }
        // Completed-item count is tracked stream or no stream (the
        // cancellation diagnostic reports it), but only streamed runs pay
        // the merge lock — a plain Find() counts with one relaxed atomic
        // increment per item.
        if (state.stream == nullptr) {
          state.stream_merge.completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::lock_guard<std::mutex> lock(state.stream_merge.mu);
          int64_t completed =
              state.stream_merge.completed.fetch_add(1, std::memory_order_relaxed) +
              1;
          bool changed = out.ok && merge_into_top(out.signature, out.summary);
          // Re-ranking and copying the top-N per item would dwarf the search
          // itself; emit only when the top-N changed — items that only
          // rediscover or underbid known summaries just advance the counter —
          // plus always on the final item so consumers observe completion.
          // A stopping run suppresses emissions: its final update is the
          // cancelled one the driver emits.
          if ((changed || completed == state.work_items) && !state.StopRequested()) {
            SummaryStreamUpdate update;
            update.shards_completed = completed;
            update.shards_total = state.work_items;
            update.elapsed_seconds = state.ElapsedSeconds();
            update.provisional.reserve(state.stream_merge.top.size());
            for (const auto& entry : state.stream_merge.top) {
              update.provisional.push_back(entry.second);
            }
            state.stream->Emit(update);
          }
        }
        return out;
      },
      &workers);

  if (state.StopRequested()) {
    return state.Cancelled(
        "during phase 3 (after " +
        std::to_string(state.stream_merge.completed.load()) + " of " +
        std::to_string(state.work_items) + " work items)");
  }

  for (const Phase3Worker& worker : workers) {
    state.result.leaf_fits_computed += worker.stats.computed;
    state.result.leaf_fits_reused +=
        worker.stats.local_hits + worker.stats.shared_hits;
    state.result.score_partials_candidates +=
        worker.stats.score_partials_candidates;
    state.result.score_yhat_materializations +=
        worker.stats.score_yhat_materializations;
    state.result.score_leaf_folds += worker.stats.score_leaf_folds;
  }
  return Status::OK();
}

// --- Stage: RankStream ------------------------------------------------------

Status RunPipeline::RankStream(RunState& state) {
  SummaryList& result = state.result;

  // Cache bound: a context's cache is trimmed (LRU) at the end of each run
  // when the engine options cap it — the context-level bound, if any, was
  // already enforced on every insert. The run-local cache was constructed
  // with the bound.
  if (state.context != nullptr && state.options.max_cache_entries > 0) {
    state.context->leaf_cache()->TrimToSize(
        static_cast<size_t>(state.options.max_cache_entries));
  }
  if (state.shared_cache != nullptr) {
    result.leaf_fit_evictions = state.shared_cache->evictions();
  }

  std::map<std::string, ChangeSummary> best_by_signature;
  for (RunState::WorkItemOutput& built : state.outputs) {
    if (!built.ok) continue;
    ++result.candidates_evaluated;
    auto it = best_by_signature.find(built.signature);
    if (it == best_by_signature.end()) {
      best_by_signature.emplace(std::move(built.signature), std::move(built.summary));
    } else {
      ++result.candidates_deduped;
      if (SummaryOrder(built.summary, it->second)) {
        it->second = std::move(built.summary);
      }
    }
  }

  result.summaries.reserve(best_by_signature.size());
  for (auto& [signature, summary] : best_by_signature) {
    result.summaries.push_back(std::move(summary));
  }
  std::sort(result.summaries.begin(), result.summaries.end(), SummaryOrder);
  if (static_cast<int>(result.summaries.size()) > state.options.top_n) {
    result.summaries.resize(static_cast<size_t>(state.options.top_n));
  }
  return Status::OK();
}

// --- Driver -----------------------------------------------------------------

const RunPipeline::StageSpec* RunPipeline::Stages(size_t* count) {
  static const StageSpec kStages[] = {
      {"diff/align", &RunPipeline::DiffAlign, nullptr},
      {"setup", &RunPipeline::Setup, nullptr},
      {"phase 1 (signals)", &RunPipeline::Phase1Signals,
       &SummaryList::clustering_seconds},
      {"phase 2 (trees)", &RunPipeline::Phase2Trees,
       &SummaryList::induction_seconds},
      {"phase 3 (fits)", &RunPipeline::Phase3Fits, &SummaryList::fitting_seconds},
      {"rank/stream", &RunPipeline::RankStream, nullptr},
  };
  *count = sizeof(kStages) / sizeof(kStages[0]);
  return kStages;
}

Result<SummaryList> RunPipeline::Run(const CharlesEngine& engine,
                                     const Table& source, const Table& target,
                                     SummaryStream* stream, const StopToken* stop) {
  CHARLES_RETURN_NOT_OK(engine.options().Validate());
  RunState state(engine, source, target, stream, stop);
  // Any exit below this point delivers every queued stream update before the
  // run resolves (buffered SummaryStream delivery; see engine.h).
  auto flush_stream = [&state] {
    if (state.stream != nullptr) state.stream->Flush();
  };

  // Admission control: a context may bound its concurrently executing runs
  // (queueing or rejecting the excess); the slot is held for the whole run
  // and released on every exit path. The stop token reaches into the queue
  // too, so a cancelled caller never waits out the runs ahead of it — and
  // still receives the promised final cancelled stream update.
  if (state.context != nullptr) {
    Result<EngineContext::RunSlot> admitted = state.context->AdmitRun(stop);
    if (!admitted.ok()) {
      if (admitted.status().IsCancelled()) {
        Status cancelled = state.Cancelled("during admission (" +
                                           admitted.status().message() + ")");
        flush_stream();
        return cancelled;
      }
      flush_stream();
      return admitted.status();
    }
    state.run_slot = std::move(*admitted);
  }

  // Execution resources: every stage fans out over one ThreadPool and
  // reduces its per-item results in deterministic input order, so the
  // ranked output is bit-identical to a serial (num_threads = 1) run. With
  // an attached EngineContext the context's long-lived pool is used (its
  // thread count supersedes options.num_threads); otherwise a per-run pool
  // is spawned here, once, for all stages.
  if (state.context != nullptr) {
    state.num_threads = state.context->num_threads();
    state.pool = state.context->pool();
  } else {
    state.num_threads = state.options.num_threads > 0
                            ? state.options.num_threads
                            : ThreadPool::HardwareConcurrency();
    if (state.num_threads > 1) {
      state.owned_pool = std::make_unique<ThreadPool>(state.num_threads);
      state.pool = state.owned_pool.get();
    }
  }
  state.result.threads_used = state.pool != nullptr ? state.num_threads : 1;

  // Tracing (CharlesOptions::trace): one recorder for the whole run, handed
  // to the caller through the result. Off ⇒ state.recorder stays null and
  // every Span below is inert — no allocation, no clock read, no lock.
  if (state.options.trace) {
    state.recorder = std::make_shared<obs::TraceRecorder>();
    state.result.trace = state.recorder;
  }

  size_t stage_count = 0;
  const StageSpec* stages = Stages(&stage_count);
  for (size_t s = 0; s < stage_count; ++s) {
    // Cancellation point between stages (stages add finer-grained checks —
    // per work item, per shard dispatch — where work is long).
    if (state.StopRequested()) {
      Status cancelled =
          state.Cancelled(std::string("before ") + stages[s].name);
      flush_stream();
      return cancelled;
    }
    auto stage_start = std::chrono::steady_clock::now();
    Status status;
    {
      // Stage span + run-id scope on the driving thread: coordinator spans
      // nest under the stage, and dispatches pick the run id up from here.
      // (run_id is 0 until phase 1 computes it; phase 1 re-scopes itself.)
      obs::Span stage_span(state.recorder.get(), stages[s].name);
      obs::RunIdScope run_scope(state.run_id);
      status = stages[s].fn(state);
    }
    if (stages[s].timing != nullptr) {
      state.result.*(stages[s].timing) =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        stage_start)
              .count();
    }
    if (!status.ok()) {
      // Stages route their own cancellations through RunState::Cancelled;
      // this is the belt-and-braces for one that did not.
      if (status.IsCancelled() && !state.cancel_emitted) {
        Status emitted = state.Cancelled("during " + std::string(stages[s].name));
        (void)emitted;
      }
      flush_stream();
      return status;
    }
  }

  // The "+batch" suffix reports that at least one fold ran through the
  // staged batched path — a diagnostic, not an output-affecting choice
  // (batched folds are bit-identical to per-leaf folds by contract).
  if (state.result.batched_blocks_staged > 0) {
    state.result.kernel_used += "+batch";
  }
  state.result.elapsed_seconds = state.ElapsedSeconds();
  if (state.context != nullptr) state.context->NoteRunCompleted();

  // Process-wide serving metrics (docs/observability.md#metric-catalog).
  {
    static obs::Counter* const runs =
        obs::MetricsRegistry::Global().counter("engine.runs_completed");
    static obs::Histogram* const latency =
        obs::MetricsRegistry::Global().histogram("engine.run_seconds");
    runs->Increment();
    latency->Observe(state.result.elapsed_seconds);
    // Row-free scoring health: candidates scored from merged partials vs.
    // ones that materialized a run-wide ŷ (engine runs must report zero),
    // plus the shard probes the score round merged.
    static obs::Counter* const partials_scored =
        obs::MetricsRegistry::Global().counter(
            "score_partials.candidates_scored");
    static obs::Counter* const yhat_scored =
        obs::MetricsRegistry::Global().counter(
            "score_partials.yhat_materializations");
    static obs::Counter* const probes_merged =
        obs::MetricsRegistry::Global().counter("score_partials.probes_merged");
    partials_scored->Add(state.result.score_partials_candidates);
    yhat_scored->Add(state.result.score_yhat_materializations);
    probes_merged->Add(state.result.shard_score_probes);
    if (state.context != nullptr) {
      // Cross-run cache health, refreshed once per run (the counters live in
      // the sharded cache; gauges mirror them into the registry snapshot).
      static obs::Gauge* const cache_entries =
          obs::MetricsRegistry::Global().gauge("engine.cache_entries");
      static obs::Gauge* const cache_hits =
          obs::MetricsRegistry::Global().gauge("engine.cache_hits");
      static obs::Gauge* const cache_misses =
          obs::MetricsRegistry::Global().gauge("engine.cache_misses");
      static obs::Gauge* const cache_evictions =
          obs::MetricsRegistry::Global().gauge("engine.cache_evictions");
      const SharedLeafFitCache* cache = state.context->leaf_cache();
      cache_entries->Set(static_cast<int64_t>(cache->Size()));
      cache_hits->Set(cache->hits());
      cache_misses->Set(cache->misses());
      cache_evictions->Set(cache->evictions());
    }
  }

  flush_stream();
  return std::move(state.result);
}

}  // namespace charles
