#include "core/options.h"

#include "linalg/kernels/kernel.h"

namespace charles {

Status CharlesOptions::Validate() const {
  if (target_attribute.empty()) {
    return Status::InvalidArgument("target_attribute must be set");
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("key_columns must not be empty");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::OutOfRange("alpha must be in [0, 1], got " + std::to_string(alpha));
  }
  if (max_condition_attrs < 0) {
    return Status::OutOfRange("max_condition_attrs must be >= 0");
  }
  if (max_transform_attrs < 0) {
    return Status::OutOfRange("max_transform_attrs must be >= 0");
  }
  if (top_n < 1) return Status::OutOfRange("top_n must be >= 1");
  if (max_clusters < 1) return Status::OutOfRange("max_clusters must be >= 1");
  if (correlation_threshold < 0.0 || correlation_threshold > 1.0) {
    return Status::OutOfRange("correlation_threshold must be in [0, 1]");
  }
  if (min_partition_size < 1) {
    return Status::OutOfRange("min_partition_size must be >= 1");
  }
  if (numeric_tolerance < 0.0) {
    return Status::OutOfRange("numeric_tolerance must be >= 0");
  }
  if (num_threads < 0) {
    return Status::OutOfRange("num_threads must be >= 0 (0 = hardware concurrency)");
  }
  if (max_cache_entries < 0) {
    return Status::OutOfRange("max_cache_entries must be >= 0 (0 = unbounded)");
  }
  if (num_shards < 0) {
    return Status::OutOfRange("num_shards must be >= 0 (0 = unsharded)");
  }
  if (num_shards > 0 && !use_sufficient_stats) {
    return Status::InvalidArgument(
        "num_shards requires use_sufficient_stats: shards exchange leaf "
        "moments, which the QR-per-leaf path never forms");
  }
  if (stats_block_rows < 1) {
    return Status::OutOfRange("stats_block_rows must be >= 1");
  }
  {
    Result<kernels::KernelBackend> parsed =
        kernels::ParseKernelBackend(kernel_backend);
    if (!parsed.ok()) return parsed.status();
  }
  {
    Result<kernels::BatchFoldMode> parsed =
        kernels::ParseBatchFoldMode(batch_fold);
    if (!parsed.ok()) return parsed.status();
  }
  if (shard_backend == ShardBackendKind::kRemote) {
    if (remote_workers.empty()) {
      return Status::InvalidArgument(
          "shard_backend = kRemote requires at least one remote_workers "
          "endpoint (\"host:port\")");
    }
    if (remote_connect_timeout_ms <= 0) {
      return Status::OutOfRange("remote_connect_timeout_ms must be > 0");
    }
    if (remote_task_timeout_ms < 0) {
      return Status::OutOfRange(
          "remote_task_timeout_ms must be >= 0 (0 = no deadline)");
    }
    if (remote_max_task_retries < 0) {
      return Status::OutOfRange("remote_max_task_retries must be >= 0");
    }
    if (remote_retry_backoff_ms < 0) {
      return Status::OutOfRange("remote_retry_backoff_ms must be >= 0");
    }
  }
  double weight_sum = weights.summary_size + weights.condition_simplicity +
                      weights.transform_simplicity + weights.coverage +
                      weights.normality;
  if (weight_sum <= 0.0) {
    return Status::OutOfRange("interpretability weights must sum to a positive value");
  }
  return Status::OK();
}

}  // namespace charles
