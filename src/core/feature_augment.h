#ifndef CHARLES_CORE_FEATURE_AUGMENT_H_
#define CHARLES_CORE_FEATURE_AUGMENT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace charles {

/// \brief Options for nonlinear feature augmentation.
struct AugmentOptions {
  /// Append ln(x) columns (`log_<attr>`) for strictly positive attributes.
  bool log_features = true;
  /// Append x² columns (`sq_<attr>`).
  bool square_features = true;
  /// Append pairwise products (`<a>_x_<b>`) of the selected attributes.
  bool interaction_features = false;
  /// Attributes to augment; empty = every numeric column except those in
  /// `exclude`.
  std::vector<std::string> attributes;
  /// Columns never augmented (keys, the target if desired).
  std::vector<std::string> exclude;
};

/// \brief The paper's nonlinear extension hook (§1: "this can be extended by
/// augmenting the data with nonlinear features").
///
/// Appends derived numeric columns to a snapshot so the linear transformation
/// search can express multiplicative or quadratic policies
/// (`new_fee = 0.5 × log_revenue + ...`) while staying a linear model — and
/// therefore interpretable. Derived columns are computed row-wise from the
/// snapshot's own values; NULL inputs yield NULL outputs.
Result<Table> AugmentWithNonlinearFeatures(const Table& table,
                                           const AugmentOptions& options = {});

/// \brief Augments a snapshot pair identically, keeping their schemas equal
/// (the diff engine requires it). Both sides get the same derived columns,
/// each computed from its own snapshot's values.
Result<std::pair<Table, Table>> AugmentSnapshots(const Table& source,
                                                 const Table& target,
                                                 const AugmentOptions& options = {});

}  // namespace charles

#endif  // CHARLES_CORE_FEATURE_AUGMENT_H_
