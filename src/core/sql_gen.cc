#include "core/sql_gen.h"

#include <cmath>

#include "common/string_util.h"

namespace charles {

namespace {

/// Column names with anything beyond [A-Za-z0-9_] get double-quoted.
std::string QuoteIdentifier(const std::string& name) {
  bool plain = !name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]));
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) plain = false;
  }
  if (plain) return name;
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += '"';
    out += c;
  }
  out += "\"";
  return out;
}

/// `1.05 * bonus + 0.01 * salary + 1000` (or the bare old column for
/// no-change).
std::string TransformToSql(const LinearTransform& transform) {
  if (transform.is_no_change()) {
    return QuoteIdentifier(transform.target_attribute());
  }
  const LinearModel& model = transform.model();
  std::string out;
  bool first = true;
  for (size_t i = 0; i < model.coefficients.size(); ++i) {
    double c = model.coefficients[i];
    if (std::abs(c) <= 1e-12) continue;
    if (first) {
      if (c < 0) out += "-";
    } else {
      out += c < 0 ? " - " : " + ";
    }
    double magnitude = std::abs(c);
    if (std::abs(magnitude - 1.0) > 1e-12) {
      out += FormatDouble(magnitude, 6) + " * ";
    }
    out += QuoteIdentifier(model.feature_names[i]);
    first = false;
  }
  if (std::abs(model.intercept) > 1e-9 || first) {
    if (first) {
      out += FormatDouble(model.intercept, 6);
    } else {
      out += model.intercept < 0 ? " - " : " + ";
      out += FormatDouble(std::abs(model.intercept), 6);
    }
  }
  return out;
}

}  // namespace

Result<std::string> ToSqlUpdate(const ChangeSummary& summary, const SqlGenOptions& options) {
  if (summary.cts().empty()) {
    return Status::InvalidArgument("cannot render SQL for an empty summary");
  }
  if (options.table_name.empty()) {
    return Status::InvalidArgument("table_name must not be empty");
  }
  const std::string target = QuoteIdentifier(summary.target_attribute());
  const std::string table = QuoteIdentifier(options.table_name);

  if (options.single_statement) {
    std::string sql = "UPDATE " + table + " SET " + target + " = CASE\n";
    for (const ConditionalTransform& ct : summary.cts()) {
      sql += options.indent + "WHEN " + ct.condition->ToString() + " THEN " +
             TransformToSql(ct.transform) + "\n";
    }
    sql += options.indent + "ELSE " + target + "\nEND;\n";
    return sql;
  }

  std::string sql =
      "-- Disjoint-partition updates; order does not matter because the\n"
      "-- engine's conditions never overlap. Prefer the CASE form when the\n"
      "-- summary was constructed by hand.\n";
  for (const ConditionalTransform& ct : summary.cts()) {
    if (ct.transform.is_no_change()) {
      sql += "-- " + ct.condition->ToString() + ": no change\n";
      continue;
    }
    sql += "UPDATE " + table + " SET " + target + " = " + TransformToSql(ct.transform) +
           " WHERE " + ct.condition->ToString() + ";\n";
  }
  return sql;
}

}  // namespace charles
