#include "core/explain.h"

#include <cmath>

#include "common/string_util.h"

namespace charles {

namespace {

std::string Percent(double fraction) {
  return FormatDouble(fraction * 100.0, 2) + "%";
}

}  // namespace

std::string ExplainTransform(const LinearTransform& transform) {
  const std::string& target = transform.target_attribute();
  if (transform.is_no_change()) {
    return "kept their previous " + target;
  }
  const LinearModel& model = transform.model();

  // Locate the self-referential coefficient (old value of the target).
  double self_coefficient = 0.0;
  int other_terms = 0;
  for (size_t i = 0; i < model.coefficients.size(); ++i) {
    if (std::abs(model.coefficients[i]) <= 1e-12) continue;
    if (model.feature_names[i] == target) {
      self_coefficient = model.coefficients[i];
    } else {
      ++other_terms;
    }
  }
  double intercept = model.intercept;

  if (other_terms == 0 && self_coefficient != 0.0) {
    std::string out;
    if (std::abs(self_coefficient - 1.0) <= 1e-12) {
      // Pure shift.
      if (intercept >= 0) {
        return "had " + target + " increased by a flat " + FormatDouble(intercept, 4);
      }
      return "had " + target + " decreased by a flat " + FormatDouble(-intercept, 4);
    }
    if (self_coefficient > 1.0) {
      out = "received a " + Percent(self_coefficient - 1.0) + " increase on their " +
            target;
    } else if (self_coefficient > 0.0) {
      out = "took a " + Percent(1.0 - self_coefficient) + " cut on their " + target;
    } else {
      return "had " + target + " recomputed as " + transform.ToString();
    }
    if (std::abs(intercept) > 1e-9) {
      out += intercept > 0 ? ", plus a flat " + FormatDouble(intercept, 4)
                           : ", minus a flat " + FormatDouble(-intercept, 4);
    }
    return out;
  }

  if (other_terms == 0 && self_coefficient == 0.0) {
    return "had " + target + " set to " + FormatDouble(intercept, 4);
  }
  return "had " + target + " recomputed as " + transform.ToString();
}

std::string ExplainSummary(const ChangeSummary& summary, const ExplainOptions& options) {
  std::string out;
  const auto& cts = summary.cts();
  for (size_t i = 0; i < cts.size(); ++i) {
    const ConditionalTransform& ct = cts[i];
    out += "- ";
    if (ct.condition->NumDescriptors() == 0) {
      out += "All " + options.entity_noun;
    } else {
      std::string noun = options.entity_noun;
      if (!noun.empty()) noun[0] = static_cast<char>(std::toupper(noun[0]));
      out += noun + " where " + ct.condition->ToString();
    }
    out += " (" + Percent(ct.coverage) + " of " + options.entity_noun + ") ";
    out += ExplainTransform(ct.transform);
    out += ".\n";
  }
  if (options.include_scores) {
    out += "This summary explains the change with accuracy " +
           FormatDouble(summary.scores().accuracy, 3) + " and interpretability " +
           FormatDouble(summary.scores().interpretability, 3) + " (score " +
           FormatDouble(summary.scores().score, 3) + ").\n";
  }
  return out;
}

}  // namespace charles
