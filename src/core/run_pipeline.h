#ifndef CHARLES_CORE_RUN_PIPELINE_H_
#define CHARLES_CORE_RUN_PIPELINE_H_

/// \file
/// \brief The staged run pipeline behind CharlesEngine::Find.
///
/// Find() used to be one ~600-line monolith. It is now an explicit pipeline
/// of named stages over a shared RunState blackboard:
///
/// ```
///   DiffAlign ─► Setup ─► Phase1Signals ─► Phase2Trees ─► Phase3Fits ─► RankStream
/// ```
///
///  - **DiffAlign** — snapshot diff, row alignment, target extraction;
///  - **Setup** — attribute shortlists (assistant or overrides) and the
///    (C, T) subset enumeration;
///  - **Phase1Signals** — change-signal clustering: column cache, the run's
///    shortlist moments (central fold, or a distributed kSignalStats sweep
///    when sharding is on), per-T clusterings, pooled labelings;
///  - **Phase2Trees** — condition-tree induction and partition dedup;
///  - **Phase3Fits** — the (partition, T) transformation sweep, preceded by
///    the distributed kLeafMoments / kScorePartials rounds (with warm-cache
///    elision) when sharding is on;
///  - **RankStream** — deterministic best-by-signature reduction, ranking,
///    truncation, and diagnostics fold.
///
/// The *driver* (RunPipeline::Run) owns everything the stages used to
/// re-implement per call site: admission control, pool spawn/attach, stage
/// timing, cancellation checks between stages, the final cancelled stream
/// update, and the stream flush that keeps buffered SummaryStream delivery
/// ordered before the run resolves. Each stage is a small function of
/// RunState, callable on its own from tests (tests/run_pipeline_test.cc
/// drives stages individually and checks parity with the one-call engine).
///
/// Determinism is unchanged by the decomposition: stages communicate only
/// through RunState, in a fixed order, and every intra-stage reduction still
/// replays input order (docs/architecture.md#determinism-contract).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/engine_context.h"
#include "core/partition_finder.h"
#include "core/scoring.h"
#include "core/setup_assistant.h"
#include "core/stop_token.h"
#include "diff/diff.h"
#include "distributed/backend.h"
#include "linalg/suffstats.h"
#include "obs/trace.h"
#include "table/table.h"

namespace charles {

class ThreadPool;

/// \brief The shared blackboard one engine run's stages read and write.
///
/// Constructed by the driver, populated stage by stage; every field below
/// the "stage products" line is owned by exactly one producing stage and
/// read-only afterwards. Not movable (the stream-merge mutex pins it); lives
/// on the driver's stack for exactly one run.
struct RunState {
  RunState(const CharlesEngine& engine, const Table& source, const Table& target,
           SummaryStream* stream, const StopToken* stop)
      : engine(engine),
        options(engine.options()),
        context(engine.context()),
        source(source),
        target(target),
        stream(stream),
        stop(stop),
        start_time(std::chrono::steady_clock::now()) {}

  RunState(const RunState&) = delete;
  RunState& operator=(const RunState&) = delete;

  /// \name Immutable run context.
  /// @{
  const CharlesEngine& engine;
  const CharlesOptions& options;
  EngineContext* context = nullptr;
  const Table& source;
  const Table& target;
  SummaryStream* stream = nullptr;
  const StopToken* stop = nullptr;
  std::chrono::steady_clock::time_point start_time;
  /// @}

  /// \name Driver plumbing (admission, execution resources).
  /// @{
  EngineContext::RunSlot run_slot;
  ThreadPool* pool = nullptr;              ///< context pool or owned_pool
  std::unique_ptr<ThreadPool> owned_pool;  ///< per-run pool when no context
  int num_threads = 1;
  /// The run's trace recorder when CharlesOptions::trace is on (created by
  /// the driver before the first stage, shared into result.trace); null
  /// otherwise — every Span constructed from it is then inert.
  std::shared_ptr<obs::TraceRecorder> recorder;
  /// @}

  /// \name DiffAlign products.
  /// @{
  SnapshotDiff diff;
  Table matched_view;                  ///< storage when alignment reorders
  const Table* analysis = nullptr;     ///< the aligned analysis table
  std::vector<double> y_old;
  std::vector<double> y_new;
  /// @}

  /// \name Setup products.
  /// @{
  std::vector<std::string> cond_names;
  std::vector<std::string> tran_names;
  std::vector<int> cond_indices;             ///< schema indices of cond_names
  std::vector<std::vector<int>> c_subsets;   ///< C ⊆ A_cond, |C| ≤ c
  std::vector<std::vector<int>> t_subsets;   ///< T ⊆ A_tran, |T| ≤ t (∅ first)
  /// @}

  /// \name Phase1Signals products.
  /// @{
  ColumnCache tran_columns;
  std::shared_ptr<const SufficientStats> shortlist_stats;
  uint64_t fingerprint = 0;  ///< cross-run cache key; 0 without a context
  /// The run id: the fingerprint, computed unconditionally (unlike
  /// `fingerprint`, which stays 0 without a context so nothing cache-keys
  /// on it). Tags log lines, rides the execute wire to workers, doubles as
  /// the trace id, and surfaces as SummaryList::run_id.
  uint64_t run_id = 0;
  std::vector<std::vector<int>> labelings;
  std::vector<std::vector<std::string>> t_attr_names;  ///< names per T-subset
  /// @}

  /// \name Phase2Trees products.
  /// @{
  struct PartitionEntry {
    PartitionCandidate candidate;
    std::vector<std::string> condition_attrs;
  };
  std::vector<PartitionEntry> partitions;
  /// @}

  /// \name Phase3Fits products.
  /// @{
  struct WorkItemOutput {
    std::string signature;
    ChangeSummary summary;
    bool ok = false;
  };
  std::vector<WorkItemOutput> outputs;  ///< one per (partition, T), item order
  int64_t work_items = 0;               ///< |partitions| × |T-subsets|
  /// Run-local cross-worker fit cache (used when no context is attached)
  /// and the tier the sweep actually published to (context cache or the
  /// run-local one) — RankStream reads eviction counts from it.
  std::unique_ptr<SharedLeafFitCache> run_leaf_cache;
  SharedLeafFitCache* shared_cache = nullptr;
  /// The one run-level Scorer: constructed once at the top of Phase3Fits
  /// (the single y_old/y_new copy of the whole sweep) and shared by every
  /// work item — BuildSummary scores row-free against it from merged
  /// per-leaf ScorePartials. Its exact_tolerance() is what the
  /// kScorePartials round ships to shard workers.
  std::unique_ptr<Scorer> scorer;
  /// @}

  /// \name Streaming merge (incremental provisional top-N).
  /// @{
  struct StreamMerge {
    std::mutex mu;
    /// Sorted, deduplicated by signature, at most top_n entries.
    std::vector<std::pair<std::string, ChangeSummary>> top;
    /// Work items finished. Atomic so streamless runs can count without the
    /// lock; streamed runs increment under `mu` so emissions observe
    /// strictly increasing values.
    std::atomic<int64_t> completed{0};
  };
  StreamMerge stream_merge;
  bool cancel_emitted = false;  ///< the one final cancelled update was sent
  /// @}

  /// The run's shard backend, constructed lazily by the first task round
  /// (see SelectShardBackend) and shared by every round after it — the
  /// remote backend caches worker connections and installed-input epochs
  /// across rounds. Null until a round runs / for unsharded runs.
  std::unique_ptr<ShardBackend> shard_backend;

  /// The run's accumulating result (diagnostics are filled as stages run).
  SummaryList result;

  /// \name Shared helpers (the boilerplate Find() used to repeat).
  /// @{
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time)
        .count();
  }
  bool StopRequested() const {
    return stop != nullptr && stop->stop_requested();
  }
  /// Emits the run's single final cancelled stream update (carrying the
  /// provisional ranking and progress known so far — empty before phase 3)
  /// and returns the Status::Cancelled every caller propagates. Idempotent
  /// on the emission.
  Status Cancelled(const std::string& where);
  /// @}
};

/// \brief The staged driver CharlesEngine::Find delegates to.
class RunPipeline {
 public:
  /// Runs every stage in order over a fresh RunState: validation, admission,
  /// pool setup, per-stage timing + cancellation, stream flush. The one
  /// entry point production code uses.
  static Result<SummaryList> Run(const CharlesEngine& engine, const Table& source,
                                 const Table& target, SummaryStream* stream,
                                 const StopToken* stop);

  /// \name Stages, in pipeline order.
  /// Exposed individually so tests can drive the pipeline stage by stage
  /// and inspect the intermediate RunState. Each requires every earlier
  /// stage to have run on the same state.
  /// @{
  static Status DiffAlign(RunState& state);
  static Status Setup(RunState& state);
  static Status Phase1Signals(RunState& state);
  static Status Phase2Trees(RunState& state);
  static Status Phase3Fits(RunState& state);
  static Status RankStream(RunState& state);
  /// @}

  /// One named stage of the pipeline table.
  struct StageSpec {
    const char* name;
    Status (*fn)(RunState&);
    /// Which SummaryList timing field the stage's wall time lands in
    /// (nullptr: counted only in elapsed_seconds).
    double SummaryList::*timing;
  };

  /// The pipeline table, in execution order. `*count` receives the stage
  /// count.
  static const StageSpec* Stages(size_t* count);
};

}  // namespace charles

#endif  // CHARLES_CORE_RUN_PIPELINE_H_
