#ifndef CHARLES_CORE_MODEL_TREE_H_
#define CHARLES_CORE_MODEL_TREE_H_

#include <memory>
#include <optional>
#include <string>

#include "core/transform.h"
#include "expr/expr.h"

namespace charles {

/// \brief A node of the linear model tree (Figure 2 of the paper).
struct ModelTreeNode {
  bool is_leaf = true;

  /// \name Internal nodes.
  /// @{
  ExprPtr split;  ///< YES-branch predicate.
  std::unique_ptr<ModelTreeNode> yes;
  std::unique_ptr<ModelTreeNode> no;
  /// @}

  /// \name Leaves.
  /// @{
  std::optional<LinearTransform> transform;  ///< nullopt renders as "None".
  double coverage = 0.0;                     ///< Fraction of rows in the leaf.
  int64_t count = 0;
  /// @}
};

/// \brief A linear model tree: the path from the root to a leaf defines a
/// partition, the leaf defines the transformation (paper, §1).
class ModelTree {
 public:
  explicit ModelTree(std::unique_ptr<ModelTreeNode> root) : root_(std::move(root)) {}

  const ModelTreeNode& root() const { return *root_; }

  /// Number of leaves (= partitions with a transformation or "None").
  int num_leaves() const;
  /// Longest root-to-leaf path, in edges.
  int depth() const;

  /// ASCII rendering in the shape of Figure 2:
  ///
  ///   edu = 'PhD'?
  ///   ├─ YES → new_bonus = 1.05 × old_bonus + 1000   [33.3%]
  ///   └─ NO ─ edu = 'MS'?
  ///      ├─ YES → ...
  std::string Render() const;

 private:
  std::unique_ptr<ModelTreeNode> root_;
};

}  // namespace charles

#endif  // CHARLES_CORE_MODEL_TREE_H_
