#include "core/partition_finder.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "common/logging.h"
#include "parallel/parallel_for.h"

namespace charles {

namespace {

Result<Matrix> GatherTransformFeatures(const Table& source,
                                       const std::vector<std::string>& transform_attrs,
                                       const ColumnCache* cache = nullptr) {
  Matrix x(source.num_rows(), static_cast<int64_t>(transform_attrs.size()));
  for (size_t f = 0; f < transform_attrs.size(); ++f) {
    const std::vector<double>* values =
        cache != nullptr ? cache->Find(transform_attrs[f]) : nullptr;
    std::vector<double> converted;
    if (values == nullptr) {
      CHARLES_ASSIGN_OR_RETURN(const Column* col,
                               source.ColumnByName(transform_attrs[f]));
      CHARLES_ASSIGN_OR_RETURN(converted, col->ToDoubles());
      values = &converted;
    }
    for (int64_t r = 0; r < source.num_rows(); ++r) {
      x.At(r, static_cast<int64_t>(f)) = (*values)[static_cast<size_t>(r)];
    }
  }
  return x;
}

/// Global-model fast path for ClusterResiduals: solve the T-subset's normal
/// equations from the run's pre-accumulated shortlist moments. Returns false
/// (leaving `model` untouched) when the fast path is unavailable — no stats
/// attached, stats disabled, a malformed subset mapping, or an
/// ill-conditioned system — so the caller falls back to the QR path.
bool FitGlobalFromStats(const PartitionFinder::Input& input,
                        const CharlesOptions& options, LinearModel* model) {
  if (input.shortlist_stats == nullptr || !options.use_sufficient_stats ||
      input.shortlist_subset.size() != input.transform_attrs.size()) {
    return false;
  }
  Result<LinearModel> fit = LinearRegression::FitFromStats(
      *input.shortlist_stats, input.shortlist_subset, input.transform_attrs);
  if (!fit.ok()) return false;
  *model = std::move(*fit);
  return true;
}

/// Predictions of `model` over every source row, reading feature columns
/// straight from the column cache (no matrix materialization). Returns false
/// when a feature column is missing from the cache.
bool PredictFromCache(const LinearModel& model, const ColumnCache* cache,
                      int64_t num_rows, std::vector<double>* out) {
  if (cache == nullptr) return false;
  std::vector<const std::vector<double>*> columns;
  if (!cache->ResolveColumns(model.feature_names, &columns)) return false;
  out->resize(static_cast<size_t>(num_rows));
  std::vector<double> row(columns.size());
  for (int64_t r = 0; r < num_rows; ++r) {
    for (size_t f = 0; f < columns.size(); ++f) {
      row[f] = (*columns[f])[static_cast<size_t>(r)];
    }
    (*out)[static_cast<size_t>(r)] = model.PredictRow(row.data());
  }
  return true;
}

std::string PartitionSignature(const std::vector<DecisionTree::Leaf>& leaves) {
  std::set<std::string> conditions;
  for (const DecisionTree::Leaf& leaf : leaves) {
    conditions.insert(leaf.condition->ToString());
  }
  std::string out;
  for (const std::string& c : conditions) {
    out += c;
    out += ";;";
  }
  return out;
}

}  // namespace

Result<ColumnCache> ColumnCache::Build(const Table& source,
                                       const std::vector<std::string>& attrs) {
  ColumnCache cache;
  for (const std::string& name : attrs) {
    if (cache.columns_.count(name) != 0) continue;
    CHARLES_ASSIGN_OR_RETURN(const Column* col, source.ColumnByName(name));
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values, col->ToDoubles());
    cache.columns_.emplace(name, std::move(values));
  }
  return cache;
}

std::vector<int> PartitionFinder::CanonicalizeLabels(const std::vector<int>& labels) {
  std::vector<int> canonical(labels.size());
  std::vector<int> remap;
  int next = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    int label = labels[i];
    if (label >= static_cast<int>(remap.size())) {
      remap.resize(static_cast<size_t>(label) + 1, -1);
    }
    if (remap[static_cast<size_t>(label)] < 0) {
      remap[static_cast<size_t>(label)] = next++;
    }
    canonical[i] = remap[static_cast<size_t>(label)];
  }
  return canonical;
}

Result<LinearModel> PartitionFinder::FitGlobalModel(const Input& input) {
  const Table& source = *input.source;
  CHARLES_ASSIGN_OR_RETURN(
      Matrix x,
      GatherTransformFeatures(source, input.transform_attrs, input.column_cache));
  return LinearRegression::Fit(x, *input.y_new, input.transform_attrs);
}

Result<PartitionFinder::ResidualClusterings> PartitionFinder::ClusterResiduals(
    const Input& input, const CharlesOptions& options, bool include_delta_signals) {
  const Table& source = *input.source;
  int64_t n = source.num_rows();
  if (n == 0) return Status::InvalidArgument("PartitionFinder: empty source");
  if (static_cast<int64_t>(input.y_new->size()) != n) {
    return Status::InvalidArgument("PartitionFinder: y_new size mismatch");
  }
  if (input.y_old != nullptr && static_cast<int64_t>(input.y_old->size()) != n) {
    return Status::InvalidArgument("PartitionFinder: y_old size mismatch");
  }

  // Global fit on T: sub-solve of the run's shortlist moments when
  // available, else gather + QR. Either way `predicted` is evaluated row by
  // row through LinearModel::PredictRow, so the residual signal is identical
  // for a given model regardless of which path produced the predictions.
  LinearModel global;
  std::vector<double> predicted;
  bool from_stats = FitGlobalFromStats(input, options, &global) &&
                    PredictFromCache(global, input.column_cache, n, &predicted);
  if (!from_stats) {
    CHARLES_ASSIGN_OR_RETURN(
        Matrix x,
        GatherTransformFeatures(source, input.transform_attrs, input.column_cache));
    CHARLES_ASSIGN_OR_RETURN(
        global, LinearRegression::Fit(x, *input.y_new, input.transform_attrs));
    predicted = global.PredictBatch(x);
  }

  // Change signals to cluster on: the paper's distance-from-the-regression-
  // line, plus raw and relative deltas when requested and available.
  std::vector<Matrix> signals;
  {
    Matrix residuals(n, 1);
    for (int64_t i = 0; i < n; ++i) {
      residuals.At(i, 0) =
          (*input.y_new)[static_cast<size_t>(i)] - predicted[static_cast<size_t>(i)];
    }
    signals.push_back(std::move(residuals));
  }
  if (include_delta_signals && input.y_old != nullptr) {
    Matrix delta(n, 1);
    Matrix relative(n, 1);
    for (int64_t i = 0; i < n; ++i) {
      double d = (*input.y_new)[static_cast<size_t>(i)] -
                 (*input.y_old)[static_cast<size_t>(i)];
      delta.At(i, 0) = d;
      double denom = std::abs((*input.y_old)[static_cast<size_t>(i)]);
      relative.At(i, 0) = denom > 1e-12 ? d / denom : d;
    }
    signals.push_back(std::move(delta));
    signals.push_back(std::move(relative));
  }

  KMeansOptions kmeans_options;
  kmeans_options.seed = options.seed;

  ResidualClusterings out;
  out.global_model = std::move(global);
  std::set<std::vector<int>> seen_labelings;
  int k_max = static_cast<int>(std::min<int64_t>(options.max_clusters, n));
  for (const Matrix& signal : signals) {
    for (int k = 1; k <= k_max; ++k) {
      CHARLES_ASSIGN_OR_RETURN(KMeansResult clustering,
                               KMeans::Fit(signal, k, kmeans_options));
      if (!seen_labelings.insert(CanonicalizeLabels(clustering.labels)).second) continue;
      out.clusterings.push_back(std::move(clustering));
    }
  }
  return out;
}

Result<std::vector<PartitionCandidate>> PartitionFinder::InduceCandidates(
    const Table& source, const std::vector<std::vector<int>>& labelings,
    const std::vector<int>& condition_attr_indices, const CharlesOptions& options,
    const TreeAttributeCache* cache, ThreadPool* pool) {
  DecisionTreeOptions tree_options;
  tree_options.max_depth =
      options.tree_max_depth > 0 ? options.tree_max_depth : options.max_condition_attrs;
  tree_options.min_leaf_size = options.min_partition_size;

  RowSet all_rows = RowSet::All(source.num_rows());

  // Tree fits are independent per labeling; the dedup below walks them in
  // labeling order, so the reduction is scheduling-independent.
  struct InducedTree {
    PartitionCandidate candidate;
    std::string signature;
    bool ok = false;
  };
  std::vector<InducedTree> induced = ParallelMap<InducedTree>(
      pool, static_cast<int64_t>(labelings.size()), [&](int64_t li) {
        const std::vector<int>& labels = labelings[static_cast<size_t>(li)];
        InducedTree out;
        Result<DecisionTree> tree_result = DecisionTree::Fit(
            source, all_rows, condition_attr_indices, labels, tree_options, cache);
        if (!tree_result.ok()) return out;
        auto tree = std::make_shared<DecisionTree>(std::move(*tree_result));
        out.candidate.leaves = tree->leaves();
        out.signature = PartitionSignature(out.candidate.leaves);
        out.candidate.k = 1 + *std::max_element(labels.begin(), labels.end());
        out.candidate.label_agreement = tree->training_accuracy();
        out.candidate.tree = std::move(tree);
        out.ok = true;
        return out;
      });

  std::vector<PartitionCandidate> candidates;
  std::set<std::string> seen_signatures;
  for (InducedTree& tree : induced) {
    if (!tree.ok) continue;
    if (!seen_signatures.insert(tree.signature).second) continue;
    candidates.push_back(std::move(tree.candidate));
  }
  return candidates;
}

Result<std::vector<PartitionCandidate>> PartitionFinder::Find(
    const Input& input, const std::vector<int>& condition_attr_indices,
    const CharlesOptions& options, ThreadPool* pool) {
  CHARLES_ASSIGN_OR_RETURN(ResidualClusterings clusterings,
                           ClusterResiduals(input, options));
  std::vector<std::vector<int>> labelings;
  labelings.reserve(clusterings.clusterings.size());
  for (const KMeansResult& clustering : clusterings.clusterings) {
    labelings.push_back(clustering.labels);
  }
  return InduceCandidates(*input.source, labelings, condition_attr_indices, options,
                          /*cache=*/nullptr, pool);
}

}  // namespace charles
