#ifndef CHARLES_CORE_ENGINE_CONTEXT_H_
#define CHARLES_CORE_ENGINE_CONTEXT_H_

/// \file
/// \brief Long-lived execution context shared across engine runs.
///
/// A CharlesEngine without a context builds everything it needs per run: a
/// ThreadPool is spawned and joined inside every Find() call and the
/// cross-worker leaf-fit cache dies with the run. That is the right shape for
/// a one-shot CLI invocation, but a serving process answering many requests
/// pays the thread spawn and re-fits every leaf on every call.
///
/// EngineContext hoists both resources out of the run:
///
///  - one ThreadPool, spawned when the context is created and reused by every
///    engine attached to the context (no per-request thread churn);
///  - one SharedLeafFitCache surviving across runs, so a repeated query (same
///    snapshots, same options) is served almost entirely from cached OLS fits.
///
/// Cached fits are keyed by a per-run \em fingerprint hashing everything a
/// leaf fit depends on (target attribute, tolerance, normality options, the
/// transformation shortlist and its column values, and the old/new target
/// vectors), so runs over different snapshots or options can share one
/// context without observing each other's fits (up to 64-bit hash
/// collisions, vanishingly unlikely but not impossible).
///
/// Determinism is unaffected: leaf fits are pure functions of their key, so a
/// warm run produces output bit-identical to a cold one.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fnv.h"
#include "core/stop_token.h"
#include "core/transform.h"
#include "linalg/score_partials.h"
#include "linalg/suffstats.h"
#include "parallel/sharded_cache.h"
#include "parallel/thread_pool.h"

namespace charles {

/// \brief A fitted leaf transformation, cacheable by (fingerprint, T, rows).
///
/// Distinct condition trees frequently share leaves (the same row set
/// described by different conditions); the engine memoizes leaf fits per
/// transformation subset so each (rows, T) pair is fitted once.
struct LeafFit {
  /// The fitted (or no-change) transformation for the leaf.
  LinearTransform transform;
  /// Predicted new target values, aligned with the partition rows.
  std::vector<double> predictions;
  /// Mean absolute error of the transformation on its partition.
  double partition_mae = 0.0;
  /// Canonical accuracy partials of the leaf (Σ|ŷ − y_new|, exact count, n),
  /// folded with the run's exact tolerance. Valid only when has_score is
  /// set — fits produced without a score tolerance (external BuildSummary
  /// callers, QR-path runs) leave it unset and the candidate falls back to
  /// the row-scan scorer.
  ScorePartials score;
  bool has_score = false;
};

/// FNV-1a over a row-index vector; used by both leaf-fit cache tiers.
struct RowIndicesHash {
  size_t operator()(const std::vector<int64_t>& rows) const {
    uint64_t h = kFnvOffsetBasis;
    for (int64_t r : rows) h = (h ^ static_cast<uint64_t>(r)) * kFnvPrime;
    return static_cast<size_t>(h);
  }
};

/// \brief Key of the cross-worker, cross-run leaf-fit cache.
///
/// `t_index` indexes the run's transformation-subset enumeration (the same
/// partition fitted on different T yields different models). `fingerprint`
/// identifies the run inputs that determine a fit (see engine_context.h file
/// docs); per-run caches use 0, so a key never matches across unrelated runs
/// sharing a long-lived cache.
struct LeafKey {
  uint64_t fingerprint = 0;
  size_t t_index = 0;
  std::vector<int64_t> rows;
  bool operator==(const LeafKey& other) const {
    return fingerprint == other.fingerprint && t_index == other.t_index &&
           rows == other.rows;
  }
};

/// Hash for LeafKey, mixing all three components.
struct LeafKeyHash {
  size_t operator()(const LeafKey& key) const {
    size_t h = RowIndicesHash{}(key.rows);
    h ^= key.t_index * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<size_t>(key.fingerprint * 0xc2b2ae3d27d4eb4full);
    return h;
  }
};

/// \brief The compact, cacheable form of a LeafFit: the fitted transform and
/// its MAE, without the per-row predictions.
///
/// Predictions dominate a LeafFit's footprint (one double per partition row)
/// yet are a pure function of the transform and the cached feature columns,
/// so shared tiers store this compact form and the engine rehydrates the
/// predictions on a hit — bit-identically, because every prediction path
/// funnels through LinearModel::PredictRow.
struct SharedLeafFit {
  LinearTransform transform;
  double partition_mae = 0.0;
  /// Compact score partials (three words — nothing like the per-row
  /// predictions), cached so a warm repeat skips even the per-leaf score
  /// fold. The fingerprint key covers numeric_tolerance and y_new, the two
  /// inputs of the exact tolerance, so a cached entry can never be replayed
  /// under a different tolerance.
  ScorePartials score;
  bool has_score = false;
};

/// Lock-sharded cache shared by every worker of a run — and, when owned by an
/// EngineContext, by every run attached to the context. Workers consult their
/// thread-local cache first (lock-free), then this, and publish freshly
/// computed fits here so other workers (and later runs) reuse them. May be
/// LRU-bounded (EngineContextOptions / CharlesOptions `max_cache_entries`),
/// so readers use the copy-out Lookup, never held pointers.
using SharedLeafFitCache = ShardedCache<LeafKey, SharedLeafFit, LeafKeyHash>;

/// Cross-worker cache of per-leaf sufficient statistics over the run's full
/// transformation shortlist (see SufficientStats): one row scan per leaf,
/// shared by every transformation subset T and every worker. Keyed like leaf
/// fits but with t_index = 0 — stats are T-independent by construction.
/// Values are shared_ptrs so a Lookup copies a handle, not the moments.
using SharedLeafStatsCache =
    ShardedCache<LeafKey, std::shared_ptr<const SufficientStats>, LeafKeyHash>;

/// \brief What a context does with a Find() arriving while
/// max_concurrent_runs are already executing.
enum class AdmissionPolicy {
  /// Block the arriving caller until a slot frees (FIFO-ish: waiters race
  /// on the condition variable). The right default for batch callers.
  kQueue,
  /// Fail fast with Status::ResourceExhausted — serving layers that would
  /// rather shed load than stack latency.
  kReject,
};

/// \brief Configuration of an EngineContext.
struct EngineContextOptions {
  /// Worker threads of the context's pool. 0 = hardware concurrency;
  /// 1 = no pool (attached engines run serially but still share the cache).
  int num_threads = 0;
  /// Lock shards of the leaf-fit cache. 0 = 4 x resolved thread count.
  int cache_shards = 0;
  /// Entry cap on the cross-run leaf-fit cache, enforced on every insert by
  /// evicting least-recently-used fits. 0 = unbounded (an engine-side
  /// CharlesOptions::max_cache_entries can still trim after each run). The
  /// budget is split across the cache's lock shards (rounding down, at
  /// least one entry per shard — see ShardedCache). Evictions never affect
  /// results — a missing fit is simply recomputed.
  int64_t max_cache_entries = 0;
  /// Admission control: Find() calls allowed to execute concurrently
  /// against this context. 0 = unbounded. The pool is shared, so admitting
  /// every caller only slices the same workers thinner; bounding admissions
  /// keeps per-run latency predictable under a request flood.
  int max_concurrent_runs = 0;
  /// What happens to calls beyond max_concurrent_runs.
  AdmissionPolicy admission = AdmissionPolicy::kQueue;
};

/// \brief Long-lived owner of the ThreadPool and leaf-fit cache shared by
/// repeated engine runs.
///
/// Construct one per process (or per tenant) and attach engines to it:
///
/// \code
///   charles::EngineContext context;                 // spawns the pool once
///   charles::CharlesEngine engine(options, &context);
///   auto first  = engine.Find(source, target);      // cold: fits + caches
///   auto second = engine.Find(source, target);      // warm: served from cache
/// \endcode
///
/// Thread safety: the pool and cache are concurrency-safe, so multiple
/// threads may run Find() against one context simultaneously (each run
/// schedules its waves through the shared pool). ClearCaches() is the only
/// exception — it must not race with an active run.
///
/// Lifetime: the context must outlive every engine attached to it and every
/// future returned by FindAsync() on such an engine.
class EngineContext {
 public:
  explicit EngineContext(EngineContextOptions options = {});

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  /// \brief Movable RAII handle for one admitted run; releasing (or
  /// destroying) it frees the slot and wakes one queued caller.
  ///
  /// A default-constructed slot holds nothing — engines without a context
  /// carry one as a harmless placeholder.
  class RunSlot {
   public:
    RunSlot() = default;
    RunSlot(RunSlot&& other) noexcept : context_(other.context_) {
      other.context_ = nullptr;
    }
    RunSlot& operator=(RunSlot&& other) noexcept {
      if (this != &other) {
        Release();
        context_ = other.context_;
        other.context_ = nullptr;
      }
      return *this;
    }
    RunSlot(const RunSlot&) = delete;
    RunSlot& operator=(const RunSlot&) = delete;
    ~RunSlot() { Release(); }

    /// Frees the slot early; idempotent.
    void Release();

   private:
    friend class EngineContext;
    explicit RunSlot(EngineContext* context) : context_(context) {}
    EngineContext* context_ = nullptr;
  };

  /// \brief Admits one run under the context's admission policy.
  ///
  /// Unbounded contexts admit immediately (the slot still tracks
  /// active_runs()). At the bound, kQueue blocks the calling thread until a
  /// slot frees — callers, not pool workers, wait, so queued admissions
  /// cannot deadlock the pool — and kReject returns
  /// Status::ResourceExhausted. A queued wait also honours `stop`:
  /// a cancelled caller leaves the queue with Status::Cancelled instead of
  /// waiting out the runs ahead of it. Engines call this at the top of
  /// Find() with the run's token; callers running engines by hand can use
  /// it to scope their own critical sections.
  Result<RunSlot> AdmitRun(const StopToken* stop = nullptr);

  /// The context's pool, spawned at construction; nullptr when the resolved
  /// thread count is 1 (attached engines then run serially).
  ThreadPool* pool() const { return pool_.get(); }

  /// The cross-run leaf-fit cache; never null.
  SharedLeafFitCache* leaf_cache() const { return leaf_cache_.get(); }

  /// Resolved worker-thread count (>= 1).
  int num_threads() const { return num_threads_; }

  /// \name Diagnostics
  /// @{
  /// Number of Find() calls completed against this context.
  int64_t runs_completed() const {
    return runs_completed_.load(std::memory_order_relaxed);
  }
  /// Distinct leaf fits currently cached across all runs.
  size_t leaf_cache_entries() const { return leaf_cache_->Size(); }
  /// Cumulative shared-cache lookup hits (cross-worker plus cross-run).
  int64_t leaf_cache_hits() const { return leaf_cache_->hits(); }
  /// Cumulative shared-cache lookup misses.
  int64_t leaf_cache_misses() const { return leaf_cache_->misses(); }
  /// Cumulative fits dropped by the cache bound (LRU eviction); 0 while the
  /// cache is unbounded and untrimmed.
  int64_t leaf_cache_evictions() const { return leaf_cache_->evictions(); }
  /// Runs executing right now (admitted, not yet released).
  int active_runs() const;
  /// Cumulative admissions that had to wait for a slot (kQueue).
  int64_t runs_queued() const {
    return runs_queued_.load(std::memory_order_relaxed);
  }
  /// Cumulative admissions refused at the bound (kReject).
  int64_t runs_rejected() const {
    return runs_rejected_.load(std::memory_order_relaxed);
  }
  /// The configured admission bound (0 = unbounded).
  int max_concurrent_runs() const { return max_concurrent_runs_; }
  /// @}

  /// Drops every cached leaf fit (e.g. after a snapshot refresh made cached
  /// entries unreachable and memory matters). Must not be called while a run
  /// is in flight — runs hold pointers into the cache.
  void ClearCaches() { leaf_cache_->Clear(); }

 private:
  friend class CharlesEngine;
  friend class RunPipeline;

  /// Called by the engine at the end of each Find() against this context.
  void NoteRunCompleted() {
    runs_completed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// RunSlot's release path.
  void FinishRun();

  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SharedLeafFitCache> leaf_cache_;
  std::atomic<int64_t> runs_completed_{0};

  int max_concurrent_runs_ = 0;
  AdmissionPolicy admission_ = AdmissionPolicy::kQueue;
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int active_runs_ = 0;  ///< guarded by admission_mu_
  std::atomic<int64_t> runs_queued_{0};
  std::atomic<int64_t> runs_rejected_{0};
};

inline void EngineContext::RunSlot::Release() {
  if (context_ != nullptr) {
    context_->FinishRun();
    context_ = nullptr;
  }
}

}  // namespace charles

#endif  // CHARLES_CORE_ENGINE_CONTEXT_H_
