#ifndef CHARLES_CORE_STOP_TOKEN_H_
#define CHARLES_CORE_STOP_TOKEN_H_

#include <atomic>

namespace charles {

/// \brief Cooperative cancellation flag for long-running searches.
///
/// Pass one to CharlesEngine::Find / FindAsync and call RequestStop() from
/// any thread (typically a SummaryStream callback that has seen enough, or a
/// serving layer's request-timeout path). The engine checks the token at
/// phase boundaries, between distributed shard executions, and between
/// phase-3 (partition, T) work items; on observing a stop it abandons the
/// remaining work, emits a final SummaryStreamUpdate with `cancelled` set
/// (when a stream is attached), and resolves with Status::Cancelled.
///
/// Cancellation is cooperative and prompt, not instantaneous: a work item
/// already executing runs to completion (items are small — one summary
/// build, one shard scan), so a stop is observed within one item's latency.
/// A token may be reused across runs only after Reset(); sharing one live
/// token between concurrent runs cancels all of them, which is a legitimate
/// "shed everything" pattern.
class StopToken {
 public:
  StopToken() = default;

  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Requests cancellation; idempotent, callable from any thread.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// True once RequestStop() has been called.
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  /// Rearms the token for a new run. Must not race with an active run
  /// holding this token.
  void Reset() { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace charles

#endif  // CHARLES_CORE_STOP_TOKEN_H_
