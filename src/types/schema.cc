#include "types/schema.h"

#include "common/logging.h"

namespace charles {

std::string Field::ToString() const {
  std::string out = name;
  out += ": ";
  out += TypeKindName(type);
  if (!nullable) out += " NOT NULL";
  return out;
}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  Schema schema;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name.empty()) {
      return Status::InvalidArgument("field " + std::to_string(i) + " has empty name");
    }
    auto [it, inserted] = schema.index_.emplace(fields[i].name, static_cast<int>(i));
    if (!inserted) {
      return Status::AlreadyExists("duplicate field name: " + fields[i].name);
    }
  }
  schema.fields_ = std::move(fields);
  return schema;
}

const Field& Schema::field(int i) const {
  CHARLES_CHECK_GE(i, 0);
  CHARLES_CHECK_LT(i, num_fields());
  return fields_[static_cast<size_t>(i)];
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no field named '" + name + "'");
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.find(name) != index_.end();
}

std::vector<int> Schema::NumericFieldIndices() const {
  std::vector<int> out;
  for (int i = 0; i < num_fields(); ++i) {
    if (IsNumeric(fields_[static_cast<size_t>(i)].type)) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[static_cast<size_t>(i)].ToString();
  }
  return out;
}

}  // namespace charles
