#ifndef CHARLES_TYPES_DATA_TYPE_H_
#define CHARLES_TYPES_DATA_TYPE_H_

#include <string_view>

namespace charles {

/// \brief Logical type of a column or value.
///
/// ChARLES operates on flat relational snapshots, so four scalar types plus
/// NULL cover the domain: integers, doubles, strings (categoricals), bools.
enum class TypeKind {
  kNull = 0,   ///< The type of an untyped NULL.
  kInt64,      ///< 64-bit signed integer.
  kDouble,     ///< IEEE-754 double.
  kString,     ///< UTF-8 string (categorical attributes).
  kBool,       ///< Boolean.
};

/// Canonical lowercase name: "null", "int64", "double", "string", "bool".
std::string_view TypeKindName(TypeKind kind);

/// True for kInt64 and kDouble — the types regression/clustering consume.
bool IsNumeric(TypeKind kind);

/// The result type when mixing two numeric kinds (int64 + double -> double).
/// Non-numeric inputs return kNull.
TypeKind CommonNumericType(TypeKind a, TypeKind b);

}  // namespace charles

#endif  // CHARLES_TYPES_DATA_TYPE_H_
