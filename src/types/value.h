#ifndef CHARLES_TYPES_VALUE_H_
#define CHARLES_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/data_type.h"

namespace charles {

/// \brief A dynamically-typed scalar cell: NULL, int64, double, string, or bool.
///
/// Value is the lingua franca between the table layer, the expression
/// evaluator, and the CSV reader. It is small (a tagged variant), regular
/// (copyable, comparable, hashable), and explicit about numeric coercion:
/// comparisons between int64 and double compare numerically, anything else
/// compares only within its own type.
class Value {
 public:
  /// NULL value.
  Value() : storage_(std::monostate{}) {}
  Value(int64_t v) : storage_(v) {}            // NOLINT(runtime/explicit)
  Value(double v) : storage_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : storage_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : storage_(std::string(v)) {}  // NOLINT(runtime/explicit)
  Value(bool v) : storage_(v) {}               // NOLINT(runtime/explicit)
  // Guard: `Value(42)` must become int64, not bool/double by surprise.
  Value(int v) : storage_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  TypeKind kind() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(storage_); }

  /// \name Checked accessors. CHECK-fail on kind mismatch.
  /// @{
  int64_t int64() const;
  double dbl() const;
  const std::string& str() const;
  bool boolean() const;
  /// @}

  /// Numeric view: int64 and double values convert to double; everything
  /// else (including bool and NULL) is a TypeError.
  Result<double> AsDouble() const;

  /// Renders the value for display; NULL prints as "NULL", doubles compactly.
  std::string ToString() const;

  /// \brief Three-way comparison for ordering within a column.
  ///
  /// NULL sorts before everything; int64/double compare numerically; other
  /// cross-type comparisons order by TypeKind (stable but arbitrary).
  int Compare(const Value& other) const;

  /// Equality: numeric values equal across int64/double when numerically
  /// equal; NULL equals only NULL.
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator== (numerically equal int64/double values
  /// hash identically).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> storage_;
};

/// std::hash adapter so Values key unordered containers directly.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace charles

#endif  // CHARLES_TYPES_VALUE_H_
