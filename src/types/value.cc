#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace charles {

TypeKind Value::kind() const {
  switch (storage_.index()) {
    case 0:
      return TypeKind::kNull;
    case 1:
      return TypeKind::kInt64;
    case 2:
      return TypeKind::kDouble;
    case 3:
      return TypeKind::kString;
    case 4:
      return TypeKind::kBool;
  }
  return TypeKind::kNull;
}

int64_t Value::int64() const {
  CHARLES_CHECK(kind() == TypeKind::kInt64) << "Value is " << TypeKindName(kind());
  return std::get<int64_t>(storage_);
}

double Value::dbl() const {
  CHARLES_CHECK(kind() == TypeKind::kDouble) << "Value is " << TypeKindName(kind());
  return std::get<double>(storage_);
}

const std::string& Value::str() const {
  CHARLES_CHECK(kind() == TypeKind::kString) << "Value is " << TypeKindName(kind());
  return std::get<std::string>(storage_);
}

bool Value::boolean() const {
  CHARLES_CHECK(kind() == TypeKind::kBool) << "Value is " << TypeKindName(kind());
  return std::get<bool>(storage_);
}

Result<double> Value::AsDouble() const {
  switch (kind()) {
    case TypeKind::kInt64:
      return static_cast<double>(std::get<int64_t>(storage_));
    case TypeKind::kDouble:
      return std::get<double>(storage_);
    default:
      return Status::TypeError(std::string("cannot interpret ") +
                               std::string(TypeKindName(kind())) + " value as double");
  }
}

std::string Value::ToString() const {
  switch (kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kInt64:
      return std::to_string(std::get<int64_t>(storage_));
    case TypeKind::kDouble:
      return FormatDouble(std::get<double>(storage_));
    case TypeKind::kString:
      return std::get<std::string>(storage_);
    case TypeKind::kBool:
      return std::get<bool>(storage_) ? "true" : "false";
  }
  return "NULL";
}

namespace {
int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}
}  // namespace

int Value::Compare(const Value& other) const {
  TypeKind lk = kind();
  TypeKind rk = other.kind();
  if (lk == TypeKind::kNull || rk == TypeKind::kNull) {
    if (lk == rk) return 0;
    return lk == TypeKind::kNull ? -1 : 1;
  }
  if (IsNumeric(lk) && IsNumeric(rk)) {
    double a = lk == TypeKind::kInt64 ? static_cast<double>(std::get<int64_t>(storage_))
                                      : std::get<double>(storage_);
    double b = rk == TypeKind::kInt64
                   ? static_cast<double>(std::get<int64_t>(other.storage_))
                   : std::get<double>(other.storage_);
    return CompareDoubles(a, b);
  }
  if (lk != rk) return static_cast<int>(lk) < static_cast<int>(rk) ? -1 : 1;
  switch (lk) {
    case TypeKind::kString: {
      const std::string& a = std::get<std::string>(storage_);
      const std::string& b = std::get<std::string>(other.storage_);
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case TypeKind::kBool: {
      bool a = std::get<bool>(storage_);
      bool b = std::get<bool>(other.storage_);
      return a == b ? 0 : (a ? 1 : -1);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (kind()) {
    case TypeKind::kNull:
      return 0x9e3779b97f4a7c15ull;
    case TypeKind::kInt64: {
      // Hash via double so numerically-equal int64/double collide, matching ==.
      double d = static_cast<double>(std::get<int64_t>(storage_));
      return std::hash<double>()(d);
    }
    case TypeKind::kDouble:
      return std::hash<double>()(std::get<double>(storage_));
    case TypeKind::kString:
      return std::hash<std::string>()(std::get<std::string>(storage_));
    case TypeKind::kBool:
      return std::get<bool>(storage_) ? 0x2545f4914f6cdd1dull : 0x6a09e667f3bcc909ull;
  }
  return 0;
}

}  // namespace charles
