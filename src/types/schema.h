#ifndef CHARLES_TYPES_SCHEMA_H_
#define CHARLES_TYPES_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace charles {

/// \brief A named, typed column slot in a Schema.
struct Field {
  std::string name;
  TypeKind type = TypeKind::kNull;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && nullable == other.nullable;
  }
  std::string ToString() const;
};

/// \brief An ordered set of uniquely named Fields.
///
/// Schemas are value types; two snapshots are comparable iff their schemas
/// are Equals() (the paper's identical-schema assumption, validated by the
/// diff engine).
class Schema {
 public:
  Schema() = default;

  /// Fails with AlreadyExists on duplicate names or InvalidArgument on empty
  /// names.
  static Result<Schema> Make(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const;

  /// Indices of every field with a numeric type (int64/double).
  std::vector<int> NumericFieldIndices() const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }
  bool operator==(const Schema& other) const { return Equals(other); }

  /// "name: type, name: type, ..." rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace charles

#endif  // CHARLES_TYPES_SCHEMA_H_
