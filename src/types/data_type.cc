#include "types/data_type.h"

namespace charles {

std::string_view TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "null";
    case TypeKind::kInt64:
      return "int64";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
    case TypeKind::kBool:
      return "bool";
  }
  return "invalid";
}

bool IsNumeric(TypeKind kind) {
  return kind == TypeKind::kInt64 || kind == TypeKind::kDouble;
}

TypeKind CommonNumericType(TypeKind a, TypeKind b) {
  if (!IsNumeric(a) || !IsNumeric(b)) return TypeKind::kNull;
  if (a == TypeKind::kDouble || b == TypeKind::kDouble) return TypeKind::kDouble;
  return TypeKind::kInt64;
}

}  // namespace charles
