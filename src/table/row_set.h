#ifndef CHARLES_TABLE_ROW_SET_H_
#define CHARLES_TABLE_ROW_SET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace charles {

/// \brief An ordered set of row indices into a Table.
///
/// RowSet is how ChARLES represents data partitions: filters produce them,
/// Table::Take materializes them, and partition coverage is their size
/// relative to the table. Indices are kept sorted and unique.
class RowSet {
 public:
  RowSet() = default;

  /// Takes ownership of indices; sorts and deduplicates them.
  explicit RowSet(std::vector<int64_t> indices);

  /// The full set {0, ..., n-1}.
  static RowSet All(int64_t n);

  /// Rows where mask[i] is true.
  static RowSet FromMask(const std::vector<bool>& mask);

  int64_t size() const { return static_cast<int64_t>(indices_.size()); }
  bool empty() const { return indices_.empty(); }
  int64_t operator[](int64_t i) const { return indices_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& indices() const { return indices_; }

  bool Contains(int64_t row) const;

  /// Set algebra; operands may index the same table.
  RowSet Intersect(const RowSet& other) const;
  RowSet Union(const RowSet& other) const;
  /// Rows of this set absent from `other`.
  RowSet Difference(const RowSet& other) const;
  /// {0..n-1} minus this set.
  RowSet Complement(int64_t n) const;

  /// Fraction of an n-row table covered by this set.
  double Coverage(int64_t n) const;

  /// \name Row-range views (shard execution).
  /// Indices are sorted, so both are O(log n) binary searches (plus the
  /// copy, for Restrict).
  /// @{
  /// Positions [lo, hi) into indices() of the rows in [begin, end) — the
  /// zero-copy form the shard kernel scans with.
  std::pair<int64_t, int64_t> PositionsInRange(int64_t begin, int64_t end) const;
  /// The subset of this set falling in the half-open row range [begin, end),
  /// materialized — the set-algebra companion for callers that need an
  /// owning RowSet (e.g. shipping a leaf slice to a remote executor).
  RowSet Restrict(int64_t begin, int64_t end) const;
  /// @}

  bool operator==(const RowSet& other) const { return indices_ == other.indices_; }

  std::string ToString(int64_t max_items = 16) const;

  auto begin() const { return indices_.begin(); }
  auto end() const { return indices_.end(); }

 private:
  std::vector<int64_t> indices_;
};

}  // namespace charles

#endif  // CHARLES_TABLE_ROW_SET_H_
