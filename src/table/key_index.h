#ifndef CHARLES_TABLE_KEY_INDEX_H_
#define CHARLES_TABLE_KEY_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "types/value.h"

namespace charles {

/// \brief A (possibly composite) primary-key value for one row.
struct RowKey {
  std::vector<Value> parts;

  bool operator==(const RowKey& other) const { return parts == other.parts; }
  std::string ToString() const;
};

struct RowKeyHash {
  size_t operator()(const RowKey& key) const;
};

/// \brief Hash index from primary-key values to row positions.
///
/// The diff engine aligns two snapshots through their KeyIndexes; Build fails
/// if keys contain NULLs or duplicates (the paper assumes entity identity is
/// stable and unique).
class KeyIndex {
 public:
  /// Builds over the named key columns.
  static Result<KeyIndex> Build(const Table& table, const std::vector<std::string>& key_columns);

  /// Row holding the key, or NotFound.
  Result<int64_t> Lookup(const RowKey& key) const;

  /// The key of a given row (in key-column order).
  RowKey KeyOfRow(const Table& table, int64_t row) const;

  int64_t size() const { return static_cast<int64_t>(map_.size()); }
  const std::vector<int>& key_column_indices() const { return key_column_indices_; }

  /// Every key in this index, in row order of the indexed table.
  std::vector<RowKey> KeysInRowOrder() const { return keys_in_row_order_; }

 private:
  std::vector<int> key_column_indices_;
  std::unordered_map<RowKey, int64_t, RowKeyHash> map_;
  std::vector<RowKey> keys_in_row_order_;
};

}  // namespace charles

#endif  // CHARLES_TABLE_KEY_INDEX_H_
