#include "table/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace charles {

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (static_cast<int>(columns.size()) != schema.num_fields()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) + " != schema fields " +
        std::to_string(schema.num_fields()));
  }
  int64_t rows = columns.empty() ? 0 : columns[0].length();
  for (int i = 0; i < schema.num_fields(); ++i) {
    const auto& col = columns[static_cast<size_t>(i)];
    if (col.type() != schema.field(i).type) {
      return Status::TypeError("column '" + schema.field(i).name + "' has type " +
                               std::string(TypeKindName(col.type())) + ", schema says " +
                               std::string(TypeKindName(schema.field(i).type)));
    }
    if (col.length() != rows) {
      return Status::InvalidArgument("column '" + schema.field(i).name +
                                     "' length mismatch");
    }
    if (!schema.field(i).nullable && col.null_count() > 0) {
      return Status::InvalidArgument("column '" + schema.field(i).name +
                                     "' is NOT NULL but contains NULLs");
    }
  }
  Table table;
  table.schema_ = std::move(schema);
  table.columns_ = std::move(columns);
  table.num_rows_ = rows;
  return table;
}

const Column& Table::column(int i) const {
  CHARLES_CHECK(i >= 0 && i < num_columns()) << "column " << i << " out of range";
  return columns_[static_cast<size_t>(i)];
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  CHARLES_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[static_cast<size_t>(idx)];
}

Value Table::GetValue(int64_t row, int col) const {
  return column(col).GetValue(row);
}

Result<Value> Table::GetValueByName(int64_t row, const std::string& name) const {
  CHARLES_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  if (row < 0 || row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  return columns_[static_cast<size_t>(idx)].GetValue(row);
}

Status Table::SetValue(int64_t row, int col, const Value& value) {
  if (col < 0 || col >= num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col) + " out of range");
  }
  return columns_[static_cast<size_t>(col)].Set(row, value);
}

std::vector<Value> Table::GetRow(int64_t row) const {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(num_columns()));
  for (int c = 0; c < num_columns(); ++c) out.push_back(GetValue(row, c));
  return out;
}

Result<Table> Table::Take(const RowSet& rows) const {
  for (int64_t r : rows) {
    if (r < 0 || r >= num_rows_) {
      return Status::OutOfRange("Take: row " + std::to_string(r) + " out of range");
    }
  }
  std::vector<Column> taken;
  taken.reserve(columns_.size());
  for (const Column& col : columns_) taken.push_back(col.Take(rows));
  return Make(schema_, std::move(taken));
}

Result<Table> Table::SelectColumns(const std::vector<int>& column_indices) const {
  std::vector<Field> fields;
  std::vector<Column> cols;
  for (int idx : column_indices) {
    if (idx < 0 || idx >= num_columns()) {
      return Status::OutOfRange("SelectColumns: column " + std::to_string(idx));
    }
    fields.push_back(schema_.field(idx));
    cols.push_back(columns_[static_cast<size_t>(idx)]);
  }
  CHARLES_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Make(std::move(schema), std::move(cols));
}

Result<std::vector<double>> Table::ColumnAsDoubles(const std::string& name) const {
  CHARLES_ASSIGN_OR_RETURN(const Column* col, ColumnByName(name));
  return col->ToDoubles();
}

bool Table::Equals(const Table& other) const {
  if (!schema_.Equals(other.schema_) || num_rows_ != other.num_rows_) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].Equals(other.columns_[i])) return false;
  }
  return true;
}

std::string Table::ToString(int64_t max_rows) const {
  // Compute column widths over the shown window.
  int64_t shown = std::min(num_rows_, max_rows);
  std::vector<size_t> widths;
  std::vector<std::vector<std::string>> cells;
  for (int c = 0; c < num_columns(); ++c) {
    widths.push_back(schema_.field(c).name.size());
  }
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < num_columns(); ++c) {
      std::string cell = GetValue(r, c).ToString();
      widths[static_cast<size_t>(c)] = std::max(widths[static_cast<size_t>(c)], cell.size());
      row.push_back(std::move(cell));
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  for (int c = 0; c < num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += PadRight(schema_.field(c).name, widths[static_cast<size_t>(c)]);
  }
  out += "\n";
  for (int c = 0; c < num_columns(); ++c) {
    if (c > 0) out += "-+-";
    out += std::string(widths[static_cast<size_t>(c)], '-');
  }
  out += "\n";
  for (const auto& row : cells) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += PadRight(row[static_cast<size_t>(c)], widths[static_cast<size_t>(c)]);
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace charles
