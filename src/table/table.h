#ifndef CHARLES_TABLE_TABLE_H_
#define CHARLES_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/column.h"
#include "table/row_set.h"
#include "types/schema.h"
#include "types/value.h"

namespace charles {

/// \brief An immutable-by-convention relational snapshot: Schema + columns.
///
/// Tables are the unit ChARLES diffs: a source snapshot and a target snapshot
/// with Equals() schemas. Construction goes through Make (validating) or
/// TableBuilder (row-at-a-time). Mutation is limited to SetValue, used by the
/// policy engine in the workload generators.
class Table {
 public:
  Table() = default;

  /// Validates that columns align with the schema (count, types, equal
  /// lengths).
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return schema_.num_fields(); }

  const Column& column(int i) const;
  /// Column by name; NotFound if missing.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Cell accessors; CHECK-fail on out-of-range (programmer error).
  Value GetValue(int64_t row, int col) const;
  Result<Value> GetValueByName(int64_t row, const std::string& name) const;

  /// Overwrites one cell (type-checked). The workload policy engine's hook.
  Status SetValue(int64_t row, int col, const Value& value);

  /// Row materialized as Values, in schema order.
  std::vector<Value> GetRow(int64_t row) const;

  /// New table with only the given rows, in RowSet order.
  Result<Table> Take(const RowSet& rows) const;

  /// New table with only the given columns (by index), in the given order.
  Result<Table> SelectColumns(const std::vector<int>& column_indices) const;

  /// Convenience: numeric column as doubles (TypeError on non-numeric,
  /// InvalidArgument on NULLs).
  Result<std::vector<double>> ColumnAsDoubles(const std::string& name) const;

  bool Equals(const Table& other) const;

  /// Fixed-width textual rendering of up to max_rows rows.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace charles

#endif  // CHARLES_TABLE_TABLE_H_
