#ifndef CHARLES_TABLE_TABLE_BUILDER_H_
#define CHARLES_TABLE_TABLE_BUILDER_H_

#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace charles {

/// \brief Row-at-a-time Table construction.
///
/// \code
///   TableBuilder builder(schema);
///   CHARLES_RETURN_NOT_OK(builder.AppendRow({Value("Anne"), Value(230000)}));
///   CHARLES_ASSIGN_OR_RETURN(Table table, builder.Finish());
/// \endcode
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row; the vector must match the schema arity and each value
  /// the column type (int64 widens into double columns). On failure the
  /// builder is left unchanged.
  Status AppendRow(const std::vector<Value>& row);

  int64_t num_rows() const { return num_rows_; }

  /// Validates and hands off the table; the builder is reset to empty.
  Result<Table> Finish();

 private:
  Schema schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace charles

#endif  // CHARLES_TABLE_TABLE_BUILDER_H_
