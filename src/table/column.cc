#include "table/column.h"

#include <unordered_set>

#include "common/logging.h"

namespace charles {

Column::Column(TypeKind type) : type_(type) {
  switch (type) {
    case TypeKind::kNull:
      data_ = std::monostate{};
      break;
    case TypeKind::kInt64:
      data_ = std::vector<int64_t>{};
      break;
    case TypeKind::kDouble:
      data_ = std::vector<double>{};
      break;
    case TypeKind::kString:
      data_ = std::vector<std::string>{};
      break;
    case TypeKind::kBool:
      data_ = std::vector<uint8_t>{};
      break;
  }
}

bool Column::IsNull(int64_t i) const {
  CHARLES_DCHECK(i >= 0 && i < length());
  return validity_[static_cast<size_t>(i)] == 0;
}

Value Column::GetValue(int64_t i) const {
  CHARLES_CHECK(i >= 0 && i < length()) << "row " << i << " out of range";
  if (IsNull(i)) return Value::Null();
  size_t idx = static_cast<size_t>(i);
  switch (type_) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kInt64:
      return Value(std::get<std::vector<int64_t>>(data_)[idx]);
    case TypeKind::kDouble:
      return Value(std::get<std::vector<double>>(data_)[idx]);
    case TypeKind::kString:
      return Value(std::get<std::vector<std::string>>(data_)[idx]);
    case TypeKind::kBool:
      return Value(std::get<std::vector<uint8_t>>(data_)[idx] != 0);
  }
  return Value::Null();
}

void Column::AppendDefaultSlot() {
  switch (type_) {
    case TypeKind::kNull:
      break;
    case TypeKind::kInt64:
      std::get<std::vector<int64_t>>(data_).push_back(0);
      break;
    case TypeKind::kDouble:
      std::get<std::vector<double>>(data_).push_back(0.0);
      break;
    case TypeKind::kString:
      std::get<std::vector<std::string>>(data_).emplace_back();
      break;
    case TypeKind::kBool:
      std::get<std::vector<uint8_t>>(data_).push_back(0);
      break;
  }
}

void Column::AppendNull() {
  AppendDefaultSlot();
  validity_.push_back(0);
  ++null_count_;
}

Status Column::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case TypeKind::kNull:
      return Status::TypeError("cannot append non-NULL value to null column");
    case TypeKind::kInt64:
      if (value.kind() != TypeKind::kInt64) {
        return Status::TypeError("expected int64, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      std::get<std::vector<int64_t>>(data_).push_back(value.int64());
      break;
    case TypeKind::kDouble: {
      if (!IsNumeric(value.kind())) {
        return Status::TypeError("expected numeric, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      CHARLES_ASSIGN_OR_RETURN(double d, value.AsDouble());
      std::get<std::vector<double>>(data_).push_back(d);
      break;
    }
    case TypeKind::kString:
      if (value.kind() != TypeKind::kString) {
        return Status::TypeError("expected string, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      std::get<std::vector<std::string>>(data_).push_back(value.str());
      break;
    case TypeKind::kBool:
      if (value.kind() != TypeKind::kBool) {
        return Status::TypeError("expected bool, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      std::get<std::vector<uint8_t>>(data_).push_back(value.boolean() ? 1 : 0);
      break;
  }
  validity_.push_back(1);
  return Status::OK();
}

Status Column::Set(int64_t i, const Value& value) {
  if (i < 0 || i >= length()) {
    return Status::OutOfRange("Set: row " + std::to_string(i) + " out of range");
  }
  size_t idx = static_cast<size_t>(i);
  if (value.is_null()) {
    if (validity_[idx] != 0) ++null_count_;
    validity_[idx] = 0;
    return Status::OK();
  }
  switch (type_) {
    case TypeKind::kNull:
      return Status::TypeError("cannot set non-NULL value in null column");
    case TypeKind::kInt64:
      if (value.kind() != TypeKind::kInt64) {
        return Status::TypeError("expected int64, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      std::get<std::vector<int64_t>>(data_)[idx] = value.int64();
      break;
    case TypeKind::kDouble: {
      if (!IsNumeric(value.kind())) {
        return Status::TypeError("expected numeric, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      CHARLES_ASSIGN_OR_RETURN(double d, value.AsDouble());
      std::get<std::vector<double>>(data_)[idx] = d;
      break;
    }
    case TypeKind::kString:
      if (value.kind() != TypeKind::kString) {
        return Status::TypeError("expected string, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      std::get<std::vector<std::string>>(data_)[idx] = value.str();
      break;
    case TypeKind::kBool:
      if (value.kind() != TypeKind::kBool) {
        return Status::TypeError("expected bool, got " +
                                 std::string(TypeKindName(value.kind())));
      }
      std::get<std::vector<uint8_t>>(data_)[idx] = value.boolean() ? 1 : 0;
      break;
  }
  if (validity_[idx] == 0) --null_count_;
  validity_[idx] = 1;
  return Status::OK();
}

Result<std::vector<double>> Column::ToDoubles() const {
  return GatherDoubles(RowSet::All(length()));
}

Result<std::vector<double>> Column::GatherDoubles(const RowSet& rows) const {
  if (!IsNumeric(type_)) {
    return Status::TypeError("column of type " + std::string(TypeKindName(type_)) +
                             " has no numeric view");
  }
  std::vector<double> out;
  out.reserve(static_cast<size_t>(rows.size()));
  for (int64_t row : rows) {
    if (row < 0 || row >= length()) {
      return Status::OutOfRange("GatherDoubles: row " + std::to_string(row));
    }
    if (IsNull(row)) {
      return Status::InvalidArgument("GatherDoubles: NULL at row " + std::to_string(row));
    }
    if (type_ == TypeKind::kInt64) {
      out.push_back(static_cast<double>(
          std::get<std::vector<int64_t>>(data_)[static_cast<size_t>(row)]));
    } else {
      out.push_back(std::get<std::vector<double>>(data_)[static_cast<size_t>(row)]);
    }
  }
  return out;
}

Column Column::Take(const RowSet& rows) const {
  Column out(type_);
  for (int64_t row : rows) {
    // GetValue bounds-checks; Append cannot fail since types match by
    // construction.
    Status s = out.Append(GetValue(row));
    CHARLES_CHECK_OK(s);
  }
  return out;
}

Result<Column> Column::CastTo(TypeKind target_type) const {
  if (target_type == type_) return *this;
  if (!(type_ == TypeKind::kInt64 && target_type == TypeKind::kDouble)) {
    return Status::TypeError("unsupported cast " + std::string(TypeKindName(type_)) +
                             " -> " + std::string(TypeKindName(target_type)));
  }
  Column out(TypeKind::kDouble);
  for (int64_t i = 0; i < length(); ++i) {
    if (IsNull(i)) {
      out.AppendNull();
    } else {
      CHARLES_RETURN_NOT_OK(out.Append(GetValue(i)));  // int64 widens
    }
  }
  return out;
}

int64_t Column::CountDistinct() const {
  std::unordered_set<Value, ValueHash> seen;
  for (int64_t i = 0; i < length(); ++i) {
    if (!IsNull(i)) seen.insert(GetValue(i));
  }
  return static_cast<int64_t>(seen.size());
}

std::vector<Value> Column::DistinctValues() const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (int64_t i = 0; i < length(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (seen.insert(v).second) out.push_back(std::move(v));
  }
  return out;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || length() != other.length()) return false;
  for (int64_t i = 0; i < length(); ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (!IsNull(i) && GetValue(i) != other.GetValue(i)) return false;
  }
  return true;
}

}  // namespace charles
