#include "table/row_set.h"

#include <algorithm>

#include "common/logging.h"

namespace charles {

RowSet::RowSet(std::vector<int64_t> indices) : indices_(std::move(indices)) {
  std::sort(indices_.begin(), indices_.end());
  indices_.erase(std::unique(indices_.begin(), indices_.end()), indices_.end());
}

RowSet RowSet::All(int64_t n) {
  CHARLES_CHECK_GE(n, 0);
  RowSet set;
  set.indices_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) set.indices_[static_cast<size_t>(i)] = i;
  return set;
}

RowSet RowSet::FromMask(const std::vector<bool>& mask) {
  RowSet set;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) set.indices_.push_back(static_cast<int64_t>(i));
  }
  return set;
}

bool RowSet::Contains(int64_t row) const {
  return std::binary_search(indices_.begin(), indices_.end(), row);
}

RowSet RowSet::Intersect(const RowSet& other) const {
  RowSet out;
  std::set_intersection(indices_.begin(), indices_.end(), other.indices_.begin(),
                        other.indices_.end(), std::back_inserter(out.indices_));
  return out;
}

RowSet RowSet::Union(const RowSet& other) const {
  RowSet out;
  std::set_union(indices_.begin(), indices_.end(), other.indices_.begin(),
                 other.indices_.end(), std::back_inserter(out.indices_));
  return out;
}

RowSet RowSet::Difference(const RowSet& other) const {
  RowSet out;
  std::set_difference(indices_.begin(), indices_.end(), other.indices_.begin(),
                      other.indices_.end(), std::back_inserter(out.indices_));
  return out;
}

RowSet RowSet::Complement(int64_t n) const { return All(n).Difference(*this); }

std::pair<int64_t, int64_t> RowSet::PositionsInRange(int64_t begin,
                                                     int64_t end) const {
  auto lo = std::lower_bound(indices_.begin(), indices_.end(), begin);
  auto hi = std::lower_bound(lo, indices_.end(), end);
  return {lo - indices_.begin(), hi - indices_.begin()};
}

RowSet RowSet::Restrict(int64_t begin, int64_t end) const {
  auto [lo, hi] = PositionsInRange(begin, end);
  RowSet out;
  out.indices_.assign(indices_.begin() + lo, indices_.begin() + hi);
  return out;
}

double RowSet::Coverage(int64_t n) const {
  if (n <= 0) return 0.0;
  return static_cast<double>(size()) / static_cast<double>(n);
}

std::string RowSet::ToString(int64_t max_items) const {
  std::string out = "RowSet{";
  int64_t shown = std::min<int64_t>(size(), max_items);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(indices_[static_cast<size_t>(i)]);
  }
  if (shown < size()) out += ", ... +" + std::to_string(size() - shown);
  out += "}";
  return out;
}

}  // namespace charles
