#ifndef CHARLES_TABLE_COLUMN_H_
#define CHARLES_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "table/row_set.h"
#include "types/data_type.h"
#include "types/value.h"

namespace charles {

/// \brief A typed column: contiguous typed storage plus a validity vector.
///
/// Storage is columnar (one std::vector of the physical type) with a parallel
/// byte-per-row validity vector, so numeric kernels (regression, clustering,
/// diffing) can run over raw doubles without per-cell variant unboxing.
///
/// Type discipline: appends must match the column type, with one documented
/// coercion — int64 values append into double columns (CSV-style widening).
class Column {
 public:
  /// An empty column of the given type. kNull columns hold only NULLs.
  explicit Column(TypeKind type);

  TypeKind type() const { return type_; }
  int64_t length() const { return static_cast<int64_t>(validity_.size()); }
  bool IsNull(int64_t i) const;
  int64_t null_count() const { return null_count_; }

  /// Cell as a dynamically typed Value (NULL if invalid).
  Value GetValue(int64_t i) const;

  /// \name Append paths.
  /// @{
  /// Type-checked append; int64 widens into double columns, anything else
  /// mismatched is a TypeError. NULL appends are always accepted.
  Status Append(const Value& value);
  void AppendNull();
  /// @}

  /// Overwrites one cell, same typing rules as Append.
  Status Set(int64_t i, const Value& value);

  /// \brief Numeric view of the column as doubles.
  ///
  /// Fails with TypeError for non-numeric columns and with InvalidArgument if
  /// any row is NULL (callers choose their own NULL policy before fitting).
  Result<std::vector<double>> ToDoubles() const;

  /// Numeric view restricted to a RowSet (partition-local regression input).
  Result<std::vector<double>> GatherDoubles(const RowSet& rows) const;

  /// New column with only the given rows, in RowSet order.
  Column Take(const RowSet& rows) const;

  /// \brief Copy of the column converted to another type.
  ///
  /// Supported conversions: identity, and the int64 → double widening (the
  /// CSV reader may infer int64 for a snapshot whose counterpart holds
  /// doubles). Anything else is a TypeError.
  Result<Column> CastTo(TypeKind target_type) const;

  /// Number of distinct non-NULL values.
  int64_t CountDistinct() const;

  /// Distinct non-NULL values in first-appearance order.
  std::vector<Value> DistinctValues() const;

  bool Equals(const Column& other) const;

 private:
  using Storage = std::variant<std::monostate,            // kNull
                               std::vector<int64_t>,      // kInt64
                               std::vector<double>,       // kDouble
                               std::vector<std::string>,  // kString
                               std::vector<uint8_t>>;     // kBool

  void AppendDefaultSlot();

  TypeKind type_;
  Storage data_;
  std::vector<uint8_t> validity_;  // 1 = valid, 0 = NULL
  int64_t null_count_ = 0;
};

}  // namespace charles

#endif  // CHARLES_TABLE_COLUMN_H_
