#include "table/table_builder.h"

namespace charles {

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.num_fields()));
  }
  // Validate the whole row before mutating any column so a failed append
  // leaves the builder consistent.
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const Value& v = row[static_cast<size_t>(i)];
    if (v.is_null()) {
      if (!schema_.field(i).nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column '" +
                                       schema_.field(i).name + "'");
      }
      continue;
    }
    TypeKind expected = schema_.field(i).type;
    TypeKind actual = v.kind();
    bool compatible = actual == expected ||
                      (expected == TypeKind::kDouble && actual == TypeKind::kInt64);
    if (!compatible) {
      return Status::TypeError("column '" + schema_.field(i).name + "' expects " +
                               std::string(TypeKindName(expected)) + ", got " +
                               std::string(TypeKindName(actual)));
    }
  }
  for (int i = 0; i < schema_.num_fields(); ++i) {
    CHARLES_RETURN_NOT_OK(columns_[static_cast<size_t>(i)].Append(row[static_cast<size_t>(i)]));
  }
  ++num_rows_;
  return Status::OK();
}

Result<Table> TableBuilder::Finish() {
  Result<Table> table = Table::Make(schema_, std::move(columns_));
  columns_.clear();
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
  num_rows_ = 0;
  return table;
}

}  // namespace charles
