#include "table/key_index.h"

namespace charles {

std::string RowKey::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i].ToString();
  }
  out += ")";
  return out;
}

size_t RowKeyHash::operator()(const RowKey& key) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : key.parts) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

Result<KeyIndex> KeyIndex::Build(const Table& table,
                                 const std::vector<std::string>& key_columns) {
  if (key_columns.empty()) {
    return Status::InvalidArgument("KeyIndex requires at least one key column");
  }
  KeyIndex index;
  for (const std::string& name : key_columns) {
    CHARLES_ASSIGN_OR_RETURN(int idx, table.schema().FieldIndex(name));
    index.key_column_indices_.push_back(idx);
  }
  index.keys_in_row_order_.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    RowKey key;
    key.parts.reserve(index.key_column_indices_.size());
    for (int col : index.key_column_indices_) {
      Value v = table.GetValue(row, col);
      if (v.is_null()) {
        return Status::InvalidArgument("NULL key at row " + std::to_string(row));
      }
      key.parts.push_back(std::move(v));
    }
    auto [it, inserted] = index.map_.emplace(key, row);
    if (!inserted) {
      return Status::AlreadyExists("duplicate key " + key.ToString() + " at rows " +
                                   std::to_string(it->second) + " and " +
                                   std::to_string(row));
    }
    index.keys_in_row_order_.push_back(std::move(key));
  }
  return index;
}

Result<int64_t> KeyIndex::Lookup(const RowKey& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key " + key.ToString() + " not present");
  return it->second;
}

RowKey KeyIndex::KeyOfRow(const Table& table, int64_t row) const {
  RowKey key;
  for (int col : key_column_indices_) key.parts.push_back(table.GetValue(row, col));
  return key;
}

}  // namespace charles
