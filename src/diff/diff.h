#ifndef CHARLES_DIFF_DIFF_H_
#define CHARLES_DIFF_DIFF_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "table/key_index.h"
#include "table/row_set.h"
#include "table/table.h"

namespace charles {

/// \brief Options for SnapshotDiff::Compute.
struct DiffOptions {
  /// Primary-key columns identifying the same real-world entity across
  /// snapshots. Required, must be unique and NULL-free in both snapshots.
  std::vector<std::string> key_columns;
  /// Numeric cells differing by at most this are considered unchanged.
  double numeric_tolerance = 1e-9;
  /// When false (paper assumption), a key present in only one snapshot is an
  /// error. When true, unmatched rows are dropped from the alignment and
  /// counted in insertions()/deletions().
  bool allow_insert_delete = false;
};

/// \brief Per-column summary of what changed between snapshots.
struct ColumnChangeStats {
  std::string name;
  bool numeric = false;
  int64_t num_changed = 0;
  double change_fraction = 0.0;
  /// \name Deltas (target - source), numeric columns only, over changed rows.
  /// @{
  double mean_delta = 0.0;
  double mean_abs_delta = 0.0;
  double min_delta = 0.0;
  double max_delta = 0.0;
  /// @}
};

/// \brief Reconciles numeric representation differences between snapshots.
///
/// When the same column is int64 in one snapshot and double in the other
/// (typical after CSV type inference on a year whose values happen to be
/// integral), both sides are promoted to double. Any other type disagreement
/// is left for SnapshotDiff::Compute to reject. Returns the (possibly
/// promoted) pair.
Result<std::pair<Table, Table>> UnifyNumericTypes(const Table& source,
                                                  const Table& target);

/// \brief The aligned difference between two snapshots of the same relation.
///
/// Computes the key-based row alignment (validating the paper's assumptions:
/// identical schemas, identical entity sets, unique keys) and per-column
/// change statistics. Everything downstream — the setup assistant, partition
/// discovery, scoring — consumes snapshots through this view.
class SnapshotDiff {
 public:
  /// One source row paired with the target row holding the same key.
  struct AlignedPair {
    int64_t source_row = 0;
    int64_t target_row = 0;
  };

  static Result<SnapshotDiff> Compute(const Table& source, const Table& target,
                                      const DiffOptions& options);

  const Table& source() const { return *source_; }
  const Table& target() const { return *target_; }

  /// Pairs in source row order; with the default options this covers every
  /// row of both snapshots.
  const std::vector<AlignedPair>& pairs() const { return pairs_; }
  int64_t num_pairs() const { return static_cast<int64_t>(pairs_.size()); }

  int64_t insertions() const { return insertions_; }
  int64_t deletions() const { return deletions_; }

  const std::vector<ColumnChangeStats>& column_stats() const { return column_stats_; }
  Result<const ColumnChangeStats*> StatsFor(const std::string& column) const;

  /// True at pair position i iff `column` changed for that entity.
  Result<std::vector<bool>> ChangedMask(const std::string& column) const;

  /// Source rows whose `column` changed.
  Result<RowSet> ChangedRows(const std::string& column) const;

  /// \name Aligned numeric vectors, indexed by pair position.
  /// @{
  Result<std::vector<double>> SourceValues(const std::string& column) const;
  Result<std::vector<double>> TargetValues(const std::string& column) const;
  /// TargetValues - SourceValues.
  Result<std::vector<double>> Deltas(const std::string& column) const;
  /// @}

  /// Human-readable change report (one line per changed column).
  std::string Summary() const;

 private:
  const Table* source_ = nullptr;
  const Table* target_ = nullptr;
  std::vector<AlignedPair> pairs_;
  std::vector<ColumnChangeStats> column_stats_;
  double numeric_tolerance_ = 1e-9;
  int64_t insertions_ = 0;
  int64_t deletions_ = 0;
};

}  // namespace charles

#endif  // CHARLES_DIFF_DIFF_H_
