#include "diff/diff.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace charles {

namespace {

bool CellChanged(const Value& a, const Value& b, bool numeric, double tolerance) {
  if (a.is_null() || b.is_null()) return a.is_null() != b.is_null();
  if (numeric) {
    double da = a.AsDouble().ValueOrDie();
    double db = b.AsDouble().ValueOrDie();
    return std::abs(da - db) > tolerance;
  }
  return a != b;
}

}  // namespace

Result<std::pair<Table, Table>> UnifyNumericTypes(const Table& source,
                                                  const Table& target) {
  if (source.num_columns() != target.num_columns()) {
    return std::make_pair(source, target);  // let Compute report the mismatch
  }
  auto promote = [](const Table& table, const std::vector<int>& columns) -> Result<Table> {
    if (columns.empty()) return table;
    std::vector<Field> fields = table.schema().fields();
    std::vector<Column> promoted;
    for (int c = 0; c < table.num_columns(); ++c) {
      bool cast = std::find(columns.begin(), columns.end(), c) != columns.end();
      if (cast) {
        CHARLES_ASSIGN_OR_RETURN(Column col, table.column(c).CastTo(TypeKind::kDouble));
        promoted.push_back(std::move(col));
        fields[static_cast<size_t>(c)].type = TypeKind::kDouble;
      } else {
        promoted.push_back(table.column(c));
      }
    }
    CHARLES_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
    return Table::Make(std::move(schema), std::move(promoted));
  };
  std::vector<int> source_casts;
  std::vector<int> target_casts;
  for (int c = 0; c < source.num_columns(); ++c) {
    TypeKind s = source.schema().field(c).type;
    TypeKind t = target.schema().field(c).type;
    if (s == TypeKind::kInt64 && t == TypeKind::kDouble) source_casts.push_back(c);
    if (s == TypeKind::kDouble && t == TypeKind::kInt64) target_casts.push_back(c);
  }
  CHARLES_ASSIGN_OR_RETURN(Table unified_source, promote(source, source_casts));
  CHARLES_ASSIGN_OR_RETURN(Table unified_target, promote(target, target_casts));
  return std::make_pair(std::move(unified_source), std::move(unified_target));
}

Result<SnapshotDiff> SnapshotDiff::Compute(const Table& source, const Table& target,
                                           const DiffOptions& options) {
  if (!source.schema().Equals(target.schema())) {
    return Status::InvalidArgument(
        "snapshots have different schemas:\n  source: " + source.schema().ToString() +
        "\n  target: " + target.schema().ToString());
  }
  if (options.key_columns.empty()) {
    return Status::InvalidArgument("DiffOptions.key_columns must not be empty");
  }
  CHARLES_ASSIGN_OR_RETURN(KeyIndex source_index,
                           KeyIndex::Build(source, options.key_columns));
  CHARLES_ASSIGN_OR_RETURN(KeyIndex target_index,
                           KeyIndex::Build(target, options.key_columns));

  SnapshotDiff diff;
  diff.source_ = &source;
  diff.target_ = &target;
  diff.numeric_tolerance_ = options.numeric_tolerance;

  for (int64_t row = 0; row < source.num_rows(); ++row) {
    RowKey key = source_index.KeyOfRow(source, row);
    Result<int64_t> target_row = target_index.Lookup(key);
    if (target_row.ok()) {
      diff.pairs_.push_back(AlignedPair{row, *target_row});
    } else if (options.allow_insert_delete) {
      ++diff.deletions_;
    } else {
      return Status::InvalidArgument(
          "entity " + key.ToString() +
          " present in source but missing from target; the paper's no-delete "
          "assumption is violated (set allow_insert_delete to proceed)");
    }
  }
  int64_t matched = static_cast<int64_t>(diff.pairs_.size());
  if (target.num_rows() != matched) {
    if (options.allow_insert_delete) {
      diff.insertions_ = target.num_rows() - matched;
    } else {
      return Status::InvalidArgument(
          std::to_string(target.num_rows() - matched) +
          " target row(s) have keys absent from the source; the paper's "
          "no-insert assumption is violated (set allow_insert_delete to proceed)");
    }
  }

  // Per-column change statistics.
  for (int c = 0; c < source.num_columns(); ++c) {
    const Field& field = source.schema().field(c);
    ColumnChangeStats stats;
    stats.name = field.name;
    stats.numeric = IsNumeric(field.type);
    double sum_delta = 0.0;
    double sum_abs_delta = 0.0;
    stats.min_delta = std::numeric_limits<double>::max();
    stats.max_delta = std::numeric_limits<double>::lowest();
    for (const AlignedPair& pair : diff.pairs_) {
      Value a = source.GetValue(pair.source_row, c);
      Value b = target.GetValue(pair.target_row, c);
      if (!CellChanged(a, b, stats.numeric, options.numeric_tolerance)) continue;
      ++stats.num_changed;
      if (stats.numeric && !a.is_null() && !b.is_null()) {
        double delta = b.AsDouble().ValueOrDie() - a.AsDouble().ValueOrDie();
        sum_delta += delta;
        sum_abs_delta += std::abs(delta);
        stats.min_delta = std::min(stats.min_delta, delta);
        stats.max_delta = std::max(stats.max_delta, delta);
      }
    }
    if (stats.num_changed > 0) {
      stats.change_fraction =
          static_cast<double>(stats.num_changed) / static_cast<double>(matched);
      if (stats.numeric) {
        stats.mean_delta = sum_delta / static_cast<double>(stats.num_changed);
        stats.mean_abs_delta = sum_abs_delta / static_cast<double>(stats.num_changed);
      }
    }
    if (stats.num_changed == 0 || !stats.numeric) {
      stats.min_delta = 0.0;
      stats.max_delta = 0.0;
    }
    diff.column_stats_.push_back(std::move(stats));
  }
  return diff;
}

Result<const ColumnChangeStats*> SnapshotDiff::StatsFor(const std::string& column) const {
  for (const ColumnChangeStats& stats : column_stats_) {
    if (stats.name == column) return &stats;
  }
  return Status::NotFound("no column named '" + column + "'");
}

Result<std::vector<bool>> SnapshotDiff::ChangedMask(const std::string& column) const {
  CHARLES_ASSIGN_OR_RETURN(int col, source_->schema().FieldIndex(column));
  bool numeric = IsNumeric(source_->schema().field(col).type);
  std::vector<bool> mask(pairs_.size(), false);
  for (size_t i = 0; i < pairs_.size(); ++i) {
    Value a = source_->GetValue(pairs_[i].source_row, col);
    Value b = target_->GetValue(pairs_[i].target_row, col);
    mask[i] = CellChanged(a, b, numeric, numeric_tolerance_);
  }
  return mask;
}

Result<RowSet> SnapshotDiff::ChangedRows(const std::string& column) const {
  CHARLES_ASSIGN_OR_RETURN(std::vector<bool> mask, ChangedMask(column));
  std::vector<int64_t> rows;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) rows.push_back(pairs_[i].source_row);
  }
  return RowSet(std::move(rows));
}

Result<std::vector<double>> SnapshotDiff::SourceValues(const std::string& column) const {
  CHARLES_ASSIGN_OR_RETURN(const Column* col, source_->ColumnByName(column));
  std::vector<int64_t> rows;
  rows.reserve(pairs_.size());
  for (const AlignedPair& pair : pairs_) rows.push_back(pair.source_row);
  return col->GatherDoubles(RowSet(std::move(rows)));
}

Result<std::vector<double>> SnapshotDiff::TargetValues(const std::string& column) const {
  CHARLES_ASSIGN_OR_RETURN(const Column* col, target_->ColumnByName(column));
  // Pair order, not sorted target order: gather one by one.
  CHARLES_ASSIGN_OR_RETURN(int col_idx, target_->schema().FieldIndex(column));
  std::vector<double> out;
  out.reserve(pairs_.size());
  for (const AlignedPair& pair : pairs_) {
    Value v = target_->GetValue(pair.target_row, col_idx);
    if (v.is_null()) {
      return Status::InvalidArgument("TargetValues: NULL at target row " +
                                     std::to_string(pair.target_row));
    }
    CHARLES_ASSIGN_OR_RETURN(double d, v.AsDouble());
    out.push_back(d);
  }
  (void)col;
  return out;
}

Result<std::vector<double>> SnapshotDiff::Deltas(const std::string& column) const {
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> src, SourceValues(column));
  CHARLES_ASSIGN_OR_RETURN(std::vector<double> tgt, TargetValues(column));
  std::vector<double> out(src.size());
  for (size_t i = 0; i < src.size(); ++i) out[i] = tgt[i] - src[i];
  return out;
}

std::string SnapshotDiff::Summary() const {
  std::string out = "SnapshotDiff: " + std::to_string(num_pairs()) + " aligned entities";
  if (insertions_ > 0 || deletions_ > 0) {
    out += " (+" + std::to_string(insertions_) + " inserted, -" +
           std::to_string(deletions_) + " deleted)";
  }
  out += "\n";
  for (const ColumnChangeStats& stats : column_stats_) {
    if (stats.num_changed == 0) continue;
    out += "  " + stats.name + ": " + std::to_string(stats.num_changed) + " changed (" +
           FormatDouble(stats.change_fraction * 100.0, 1) + "%)";
    if (stats.numeric) {
      out += ", mean delta " + FormatDouble(stats.mean_delta, 2) + ", range [" +
             FormatDouble(stats.min_delta, 2) + ", " + FormatDouble(stats.max_delta, 2) +
             "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace charles
