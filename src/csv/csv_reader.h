#ifndef CHARLES_CSV_CSV_READER_H_
#define CHARLES_CSV_CSV_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace charles {

/// \brief Options controlling CSV parsing.
struct CsvReadOptions {
  char delimiter = ',';
  char quote = '"';
  /// First record is a header of column names. Without a header, columns are
  /// named f0, f1, ...
  bool has_header = true;
  /// Cell spellings (post-trim) treated as NULL.
  std::vector<std::string> null_tokens = {"", "NULL", "null", "NA", "N/A"};
  /// Trim ASCII whitespace around unquoted cells before interpretation.
  bool trim_cells = true;
  /// When true (default), column types are inferred by scanning all rows:
  /// int64 if every non-NULL cell parses as int64, else double if every cell
  /// parses as double, else bool, else string. When false, all columns are
  /// string.
  bool infer_types = true;
};

/// \brief RFC-4180-style CSV parser producing a typed Table.
///
/// Handles quoted fields, embedded delimiters/newlines/escaped quotes ("" ->
/// "), and both \n and \r\n record separators. Ragged rows are an error
/// (Invalid argument with the offending 1-based record number).
class CsvReader {
 public:
  /// Parses an in-memory CSV document.
  static Result<Table> ReadString(std::string_view text, const CsvReadOptions& options = {});

  /// Reads and parses a file.
  static Result<Table> ReadFile(const std::string& path, const CsvReadOptions& options = {});

  /// Lower-level: the raw cell grid (no typing), exposed for tooling/tests.
  static Result<std::vector<std::vector<std::string>>> ParseRecords(
      std::string_view text, const CsvReadOptions& options);
};

}  // namespace charles

#endif  // CHARLES_CSV_CSV_READER_H_
