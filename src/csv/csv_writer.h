#ifndef CHARLES_CSV_CSV_WRITER_H_
#define CHARLES_CSV_CSV_WRITER_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace charles {

/// \brief Options controlling CSV serialization.
struct CsvWriteOptions {
  char delimiter = ',';
  char quote = '"';
  bool write_header = true;
  /// Spelling for NULL cells (written unquoted).
  std::string null_token = "";
  /// Line terminator.
  std::string eol = "\n";
};

/// \brief Serializes a Table to RFC-4180 CSV.
///
/// Cells containing the delimiter, the quote, or a newline are quoted with
/// internal quotes doubled, so ReadString(WriteString(t)) round-trips.
class CsvWriter {
 public:
  static std::string WriteString(const Table& table, const CsvWriteOptions& options = {});
  static Status WriteFile(const Table& table, const std::string& path,
                          const CsvWriteOptions& options = {});
};

}  // namespace charles

#endif  // CHARLES_CSV_CSV_WRITER_H_
