#include "csv/csv_writer.h"

#include <cctype>
#include <fstream>

namespace charles {

namespace {

std::string EscapeCell(const std::string& cell, const CsvWriteOptions& options) {
  // Leading/trailing whitespace must be quoted too: readers (including ours,
  // by default) trim unquoted cells, which would otherwise corrupt the
  // round-trip.
  bool whitespace_bordered =
      !cell.empty() && (std::isspace(static_cast<unsigned char>(cell.front())) ||
                        std::isspace(static_cast<unsigned char>(cell.back())));
  bool needs_quoting = whitespace_bordered ||
                       cell.find(options.delimiter) != std::string::npos ||
                       cell.find(options.quote) != std::string::npos ||
                       cell.find('\n') != std::string::npos ||
                       cell.find('\r') != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out;
  out += options.quote;
  for (char c : cell) {
    if (c == options.quote) out += options.quote;
    out += c;
  }
  out += options.quote;
  return out;
}

}  // namespace

std::string CsvWriter::WriteString(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  if (options.write_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      out += EscapeCell(table.schema().field(c).name, options);
    }
    out += options.eol;
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      Value v = table.GetValue(r, c);
      if (v.is_null()) {
        out += options.null_token;
      } else {
        out += EscapeCell(v.ToString(), options);
      }
    }
    out += options.eol;
  }
  return out;
}

Status CsvWriter::WriteFile(const Table& table, const std::string& path,
                            const CsvWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteString(table, options);
  if (!out) return Status::IOError("error while writing '" + path + "'");
  return Status::OK();
}

}  // namespace charles
