#include "csv/csv_reader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "table/table_builder.h"

namespace charles {

namespace {

bool IsNullToken(const std::string& cell, const CsvReadOptions& options) {
  for (const std::string& token : options.null_tokens) {
    if (cell == token) return true;
  }
  return false;
}

/// Column type lattice walked during inference: int64 -> double -> bool ->
/// string. A column starts at the narrowest type and widens as cells fail to
/// parse.
TypeKind InferColumnType(const std::vector<std::vector<std::string>>& records,
                         size_t column, size_t first_data_row,
                         const CsvReadOptions& options) {
  bool all_int = true;
  bool all_double = true;
  bool all_bool = true;
  bool saw_value = false;
  for (size_t r = first_data_row; r < records.size(); ++r) {
    const std::string& cell = records[r][column];
    if (IsNullToken(cell, options)) continue;
    saw_value = true;
    if (all_int && !ParseInt64(cell).has_value()) all_int = false;
    if (all_double && !ParseDouble(cell).has_value()) all_double = false;
    if (all_bool && !ParseBool(cell).has_value()) all_bool = false;
    if (!all_int && !all_double && !all_bool) return TypeKind::kString;
  }
  if (!saw_value) return TypeKind::kString;  // all-NULL column: keep it generic
  if (all_int) return TypeKind::kInt64;
  if (all_double) return TypeKind::kDouble;
  if (all_bool) return TypeKind::kBool;
  return TypeKind::kString;
}

Result<Value> CellToValue(const std::string& cell, TypeKind type,
                          const CsvReadOptions& options, size_t record_number) {
  if (IsNullToken(cell, options)) return Value::Null();
  switch (type) {
    case TypeKind::kInt64: {
      auto v = ParseInt64(cell);
      if (!v) {
        return Status::InvalidArgument("record " + std::to_string(record_number) +
                                       ": '" + cell + "' is not an int64");
      }
      return Value(*v);
    }
    case TypeKind::kDouble: {
      auto v = ParseDouble(cell);
      if (!v) {
        return Status::InvalidArgument("record " + std::to_string(record_number) +
                                       ": '" + cell + "' is not a double");
      }
      return Value(*v);
    }
    case TypeKind::kBool: {
      auto v = ParseBool(cell);
      if (!v) {
        return Status::InvalidArgument("record " + std::to_string(record_number) +
                                       ": '" + cell + "' is not a bool");
      }
      return Value(*v);
    }
    default:
      return Value(cell);
  }
}

}  // namespace

Result<std::vector<std::vector<std::string>>> CsvReader::ParseRecords(
    std::string_view text, const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current_record;
  std::string current_cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  bool record_has_content = false;

  auto finish_cell = [&]() {
    if (options.trim_cells && !cell_was_quoted) {
      current_record.push_back(Trim(current_cell));
    } else {
      current_record.push_back(current_cell);
    }
    current_cell.clear();
    cell_was_quoted = false;
  };
  auto finish_record = [&]() {
    finish_cell();
    records.push_back(std::move(current_record));
    current_record.clear();
    record_has_content = false;
  };

  size_t i = 0;
  size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == options.quote) {
        if (i + 1 < n && text[i + 1] == options.quote) {
          current_cell += options.quote;  // escaped quote
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current_cell += c;
      ++i;
      continue;
    }
    if (c == options.quote && current_cell.empty() && !cell_was_quoted) {
      in_quotes = true;
      cell_was_quoted = true;
      record_has_content = true;
      ++i;
      continue;
    }
    if (c == options.delimiter) {
      finish_cell();
      record_has_content = true;
      ++i;
      continue;
    }
    if (c == '\r') {
      if (i + 1 < n && text[i + 1] == '\n') ++i;
      if (record_has_content || !current_cell.empty() || !current_record.empty()) {
        finish_record();
      }
      ++i;
      continue;
    }
    if (c == '\n') {
      if (record_has_content || !current_cell.empty() || !current_record.empty()) {
        finish_record();
      }
      ++i;
      continue;
    }
    current_cell += c;
    record_has_content = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field at end of input");
  }
  if (record_has_content || !current_record.empty() || !current_cell.empty()) {
    finish_record();
  }
  return records;
}

Result<Table> CsvReader::ReadString(std::string_view text, const CsvReadOptions& options) {
  CHARLES_ASSIGN_OR_RETURN(auto records, ParseRecords(text, options));
  if (records.empty()) return Status::InvalidArgument("empty CSV input");

  size_t width = records[0].size();
  for (size_t r = 0; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::InvalidArgument("record " + std::to_string(r + 1) + " has " +
                                     std::to_string(records[r].size()) +
                                     " fields, expected " + std::to_string(width));
    }
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    names = records[0];
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < width; ++c) names.push_back("f" + std::to_string(c));
  }

  std::vector<Field> fields;
  for (size_t c = 0; c < width; ++c) {
    TypeKind type = options.infer_types
                        ? InferColumnType(records, c, first_data_row, options)
                        : TypeKind::kString;
    fields.push_back(Field{names[c], type, /*nullable=*/true});
  }
  CHARLES_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));

  TableBuilder builder(schema);
  for (size_t r = first_data_row; r < records.size(); ++r) {
    std::vector<Value> row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      CHARLES_ASSIGN_OR_RETURN(
          Value v, CellToValue(records[r][c], schema.field(static_cast<int>(c)).type,
                               options, r + 1));
      row.push_back(std::move(v));
    }
    CHARLES_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

Result<Table> CsvReader::ReadFile(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("error while reading '" + path + "'");
  return ReadString(buffer.str(), options);
}

}  // namespace charles
