#ifndef CHARLES_NET_SOCKET_H_
#define CHARLES_NET_SOCKET_H_

/// \file
/// \brief Portable (POSIX) TCP primitives with explicit deadlines.
///
/// The RemoteBackend ↔ charles_worker protocol runs over plain TCP. This
/// layer owns the unpleasant parts — nonblocking connect with a timeout,
/// SIGPIPE-free sends, deadline-bounded receives (poll + EINTR retry), and
/// a listener whose accept loop can be stopped — so the protocol layer above
/// it (net/frame.h) deals only in whole buffers. Deadlines are total: a
/// RecvFull with a 2 s timeout fails after 2 s even if bytes trickle in,
/// which is what lets the coordinator treat a wedged worker like a dead one
/// (both surface as IOError and trigger reassignment).

#include <cstddef>
#include <string>

#include "common/result.h"

namespace charles {
namespace net {

/// A "host:port" worker address.
struct Endpoint {
  std::string host;
  int port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port" (the CharlesOptions::remote_workers form). The host
/// may be a name or a numeric address; the port must be in [1, 65535].
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Connects to `endpoint` with a bounded nonblocking connect. Returns a
/// blocking, TCP_NODELAY connected socket fd; IOError on refusal, timeout,
/// or resolution failure.
Result<int> TcpConnect(const Endpoint& endpoint, int timeout_ms);

/// Sends the whole buffer without ever raising SIGPIPE (a dead peer surfaces
/// as IOError, not a process-killing signal). EINTR- and short-send-safe.
Status SendFull(int fd, const void* data, size_t size);

/// Receives exactly `size` bytes under one total deadline. `timeout_ms <= 0`
/// blocks indefinitely (net::ReadFull). Timeout, EOF, and errors are all
/// IOError — the caller's recovery (mark the worker unhealthy, reassign) is
/// the same for each.
Status RecvFull(int fd, void* data, size_t size, int timeout_ms);

/// Closes `fd`, ignoring errors; no-op for fd < 0.
void CloseFd(int fd);

/// \brief A listening TCP socket (the worker daemon's accept side).
///
/// Move-only; the destructor closes the socket. Bind to port 0 for an
/// ephemeral port (loopback tests), then read the chosen one from port().
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept { *this = std::move(other); }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener() { Close(); }

  /// Binds and listens on host:port (SO_REUSEADDR, so a restarted worker can
  /// re-bind its old port immediately — the re-admission path).
  static Result<TcpListener> Bind(const std::string& host, int port);

  /// The bound port (the ephemeral one when Bind was given port 0).
  int port() const { return port_; }
  bool listening() const { return fd_ >= 0; }

  /// Waits up to `timeout_ms` for a connection. Returns the accepted fd, or
  /// -1 when none arrived within the timeout — the poll tick a serve loop
  /// uses to check its stop flag.
  Result<int> AcceptWithTimeout(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace net
}  // namespace charles

#endif  // CHARLES_NET_SOCKET_H_
