#ifndef CHARLES_NET_IO_H_
#define CHARLES_NET_IO_H_

/// \file
/// \brief EINTR-safe whole-buffer I/O over POSIX file descriptors.
///
/// Every byte stream ChARLES ships results over — the SubprocessBackend
/// pipe, the RemoteBackend TCP connection — needs the same three loops:
/// write everything (retrying short writes and EINTR), read exactly n bytes,
/// and drain to EOF. They are extracted here so the retry-on-partial
/// discipline exists exactly once; backends and the frame layer build on
/// these instead of re-implementing them per call site.

#include <cstddef>
#include <string>

#include "common/status.h"

namespace charles {
namespace net {

/// Writes the whole buffer to `fd`, retrying on EINTR and short writes.
/// Fails with IOError on any unrecoverable write error (e.g. the peer died
/// and closed the read end).
Status WriteFull(int fd, const void* data, size_t size);

/// Reads exactly `size` bytes into `data`, retrying on EINTR and short
/// reads. EOF before `size` bytes arrived is an IOError — a frame that ends
/// mid-payload means the peer died or the stream is torn.
Status ReadFull(int fd, void* data, size_t size);

/// Appends everything until EOF to `*out`, retrying on EINTR. The
/// read-the-whole-pipe half of the subprocess protocol: a worker that dies
/// closes its pipe, so this always terminates.
Status ReadToEof(int fd, std::string* out);

}  // namespace net
}  // namespace charles

#endif  // CHARLES_NET_IO_H_
