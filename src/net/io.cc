#include "net/io.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

namespace charles {
namespace net {

Status WriteFull(int fd, const void* data, size_t size) {
  const char* at = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t written = ::write(fd, at, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("WriteFull: ") + ::strerror(errno));
    }
    at += written;
    size -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t size) {
  char* at = static_cast<char*>(data);
  while (size > 0) {
    ssize_t got = ::read(fd, at, size);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("ReadFull: ") + ::strerror(errno));
    }
    if (got == 0) {
      return Status::IOError("ReadFull: unexpected EOF with " +
                             std::to_string(size) + " bytes still expected");
    }
    at += got;
    size -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status ReadToEof(int fd, std::string* out) {
  char buffer[1 << 16];
  for (;;) {
    ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("ReadToEof: ") + ::strerror(errno));
    }
    if (got == 0) return Status::OK();
    out->append(buffer, static_cast<size_t>(got));
  }
}

}  // namespace net
}  // namespace charles
