#include "net/frame.h"

#include <cstring>

#include "net/socket.h"

namespace charles {
namespace net {

namespace {

constexpr char kFrameMagic[4] = {'C', 'N', 'F', '1'};
constexpr size_t kHeaderBytes = sizeof(kFrameMagic) + sizeof(int32_t) +
                                sizeof(int64_t);

}  // namespace

Status WriteFrame(int fd, int32_t type, const std::string& payload) {
  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kFrameMagic, sizeof(kFrameMagic));
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  int64_t length = static_cast<int64_t>(payload.size());
  header.append(reinterpret_cast<const char*>(&length), sizeof(length));
  CHARLES_RETURN_NOT_OK(SendFull(fd, header.data(), header.size()));
  if (!payload.empty()) {
    CHARLES_RETURN_NOT_OK(SendFull(fd, payload.data(), payload.size()));
  }
  return Status::OK();
}

Result<Frame> ReadFrame(int fd, int timeout_ms, int64_t max_payload) {
  char header[kHeaderBytes];
  CHARLES_RETURN_NOT_OK(RecvFull(fd, header, sizeof(header), timeout_ms));
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::IOError("ReadFrame: bad magic (torn or foreign stream)");
  }
  Frame frame;
  int64_t length = 0;
  std::memcpy(&frame.type, header + sizeof(kFrameMagic), sizeof(frame.type));
  std::memcpy(&length, header + sizeof(kFrameMagic) + sizeof(frame.type),
              sizeof(length));
  if (length < 0 || length > max_payload) {
    // Bounded before any allocation: a corrupt or hostile length field must
    // fail loudly, never reserve() gigabytes.
    return Status::IOError("ReadFrame: payload length " + std::to_string(length) +
                           " outside [0, " + std::to_string(max_payload) + "]");
  }
  frame.payload.resize(static_cast<size_t>(length));
  if (length > 0) {
    CHARLES_RETURN_NOT_OK(
        RecvFull(fd, frame.payload.data(), frame.payload.size(), timeout_ms));
  }
  return frame;
}

}  // namespace net
}  // namespace charles
