#include "net/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <utility>

#include "net/io.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace charles {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + ::strerror(errno));
}

/// Milliseconds left until `deadline`, clamped at 0; -1 for "no deadline".
int RemainingMs(bool bounded,
                std::chrono::steady_clock::time_point deadline) {
  if (!bounded) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// poll() one fd for `events`, retrying on EINTR against the same deadline.
/// Returns +1 ready, 0 timed out, -1 error (errno set).
int PollFd(int fd, short events, bool bounded,
           std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, RemainingMs(bounded, deadline));
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

void SetNoSigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;  // Linux: MSG_NOSIGNAL on every send instead.
#endif
}

}  // namespace

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return Status::InvalidArgument("ParseEndpoint: expected host:port, got '" +
                                   spec + "'");
  }
  Endpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  char* parse_end = nullptr;
  long port = std::strtol(spec.c_str() + colon + 1, &parse_end, 10);
  if (parse_end == nullptr || *parse_end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument("ParseEndpoint: bad port in '" + spec + "'");
  }
  endpoint.port = static_cast<int>(port);
  return endpoint;
}

Result<int> TcpConnect(const Endpoint& endpoint, int timeout_ms) {
  struct addrinfo hints;
  ::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  std::string port = std::to_string(endpoint.port);
  struct addrinfo* resolved = nullptr;
  int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &resolved);
  if (rc != 0) {
    return Status::IOError("TcpConnect: cannot resolve " + endpoint.ToString() +
                           ": " + ::gai_strerror(rc));
  }

  Status last = Status::IOError("TcpConnect: no addresses for " +
                                endpoint.ToString());
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("TcpConnect: socket");
      continue;
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    bool bounded = timeout_ms > 0;
    rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      int ready = PollFd(fd, POLLOUT, bounded, deadline);
      if (ready == 0) {
        last = Status::IOError("TcpConnect: " + endpoint.ToString() +
                               " timed out after " + std::to_string(timeout_ms) +
                               " ms");
        CloseFd(fd);
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (ready < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        errno = so_error != 0 ? so_error : errno;
        last = Errno("TcpConnect: " + endpoint.ToString());
        CloseFd(fd);
        continue;
      }
      rc = 0;
    }
    if (rc != 0) {
      last = Errno("TcpConnect: " + endpoint.ToString());
      CloseFd(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetNoSigpipe(fd);
    ::freeaddrinfo(resolved);
    return fd;
  }
  ::freeaddrinfo(resolved);
  return last;
}

Status SendFull(int fd, const void* data, size_t size) {
  const char* at = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t sent = ::send(fd, at, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("SendFull");
    }
    at += sent;
    size -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status RecvFull(int fd, void* data, size_t size, int timeout_ms) {
  if (timeout_ms <= 0) return ReadFull(fd, data, size);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  char* at = static_cast<char*>(data);
  while (size > 0) {
    int ready = PollFd(fd, POLLIN, /*bounded=*/true, deadline);
    if (ready < 0) return Errno("RecvFull: poll");
    if (ready == 0) {
      return Status::IOError("RecvFull: timed out after " +
                             std::to_string(timeout_ms) + " ms with " +
                             std::to_string(size) + " bytes still expected");
    }
    ssize_t got = ::recv(fd, at, size, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("RecvFull");
    }
    if (got == 0) {
      return Status::IOError("RecvFull: connection closed with " +
                             std::to_string(size) + " bytes still expected");
    }
    at += got;
    size -= static_cast<size_t>(got);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(const std::string& host, int port) {
  struct addrinfo hints;
  ::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  std::string service = std::to_string(port);
  struct addrinfo* resolved = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(),
                         &hints, &resolved);
  if (rc != 0) {
    return Status::IOError("TcpListener::Bind: cannot resolve " + host + ":" +
                           service + ": " + ::gai_strerror(rc));
  }
  Status last = Status::IOError("TcpListener::Bind: no addresses for " + host);
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("TcpListener::Bind: socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, 16) != 0) {
      last = Errno("TcpListener::Bind: " + host + ":" + service);
      CloseFd(fd);
      continue;
    }
    struct sockaddr_storage bound;
    socklen_t len = sizeof(bound);
    int bound_port = port;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        bound_port =
            ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        bound_port =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    ::freeaddrinfo(resolved);
    TcpListener listener;
    listener.fd_ = fd;
    listener.port_ = bound_port;
    return listener;
  }
  ::freeaddrinfo(resolved);
  return last;
}

Result<int> TcpListener::AcceptWithTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("TcpListener: not listening");
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int ready = PollFd(fd_, POLLIN, /*bounded=*/timeout_ms >= 0, deadline);
  if (ready < 0) return Errno("TcpListener: poll");
  if (ready == 0) return -1;
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("TcpListener: accept");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetNoSigpipe(fd);
    return fd;
  }
}

void TcpListener::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

}  // namespace net
}  // namespace charles
