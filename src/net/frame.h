#ifndef CHARLES_NET_FRAME_H_
#define CHARLES_NET_FRAME_H_

/// \file
/// \brief Length-prefixed message framing over a stream socket.
///
/// Every RemoteBackend ↔ charles_worker message is one frame:
///
/// ```
///   magic "CNF1" (4) | type int32 (4) | payload length int64 (8) | payload
/// ```
///
/// Same-architecture native-endian framing, like every other ChARLES wire
/// format (common/wire.h): scalars are copied bit-for-bit, which is what
/// keeps shipped doubles exact. The reader validates magic and bounds the
/// length against `max_payload` *before* allocating, so a torn stream or a
/// hostile peer fails with a clean IOError instead of a giant reserve() —
/// the same discipline as the CTK1/CST1 deserializers.

#include <cstdint>
#include <string>

#include "common/result.h"

namespace charles {
namespace net {

/// One framed message: a small type tag plus an opaque payload.
struct Frame {
  int32_t type = 0;
  std::string payload;
};

/// Writes one frame (header + payload) to a connected socket.
Status WriteFrame(int fd, int32_t type, const std::string& payload);

/// Reads one frame under a total deadline (`timeout_ms <= 0` blocks).
/// Fails with IOError on bad magic, a payload length outside
/// [0, max_payload], timeout, or a stream that ends mid-frame.
Result<Frame> ReadFrame(int fd, int timeout_ms, int64_t max_payload);

}  // namespace net
}  // namespace charles

#endif  // CHARLES_NET_FRAME_H_
