#include "distributed/coordinator.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "parallel/parallel.h"

namespace charles {

namespace {

/// ParallelMap slot: Result<ShardTaskResult> is not default-constructible,
/// so shard outcomes travel as a (status, result) pair.
struct ShardOutcome {
  bool executed = false;
  Status status;
  ShardTaskResult result;
};

/// Merges the kLeafMoments payload of one shard into the per-requested-leaf
/// rollups. `position` maps a global leaf index to its slot.
Status MergeLeafMoments(const ShardOutcome& outcome,
                        const std::unordered_map<int64_t, size_t>& position,
                        CoordinatorTaskResult* merged) {
  for (const LeafShardStats& leaf : outcome.result.leaves) {
    auto it = position.find(leaf.leaf);
    if (it == position.end()) {
      return Status::Internal("Coordinator::RunTask: shard " +
                              std::to_string(outcome.result.shard) +
                              " reported unrequested leaf " +
                              std::to_string(leaf.leaf));
    }
    LeafRollup& rollup = merged->leaves[it->second];
    rollup.max_abs_delta = std::max(rollup.max_abs_delta, leaf.max_abs_delta);
    for (const auto& [block, stats] : leaf.blocks) {
      (void)block;  // ascending by construction; order is the contract
      CHARLES_RETURN_NOT_OK(rollup.stats.Merge(stats));
      rollup.blocks_merged += 1;
    }
  }
  return Status::OK();
}

Status MergeSignalStats(const ShardOutcome& outcome, int64_t* signal_blocks,
                        CoordinatorTaskResult* merged) {
  for (const auto& [block, stats] : outcome.result.signal_blocks) {
    (void)block;
    CHARLES_RETURN_NOT_OK(merged->signal_stats.Merge(stats));
    *signal_blocks += 1;
  }
  merged->signal_max_abs_delta =
      std::max(merged->signal_max_abs_delta, outcome.result.signal_max_abs_delta);
  merged->signal_rows_changed += outcome.result.signal_rows_changed;
  return Status::OK();
}

Status MergeErrorPartials(const ShardOutcome& outcome,
                          CoordinatorTaskResult* merged) {
  for (const ProbeShardErrors& probe : outcome.result.probes) {
    if (probe.probe < 0 ||
        probe.probe >= static_cast<int64_t>(merged->probes.size())) {
      return Status::Internal("Coordinator::RunTask: shard " +
                              std::to_string(outcome.result.shard) +
                              " reported unknown probe " +
                              std::to_string(probe.probe));
    }
    ProbeRollup& rollup = merged->probes[static_cast<size_t>(probe.probe)];
    for (const auto& [block, partials] : probe.blocks) {
      (void)block;
      rollup.partials.Merge(partials);
      rollup.blocks_merged += 1;
    }
  }
  return Status::OK();
}

Status MergeScorePartials(const ShardOutcome& outcome,
                          CoordinatorTaskResult* merged) {
  for (const ProbeShardScores& probe : outcome.result.score_probes) {
    if (probe.probe < 0 ||
        probe.probe >= static_cast<int64_t>(merged->score_probes.size())) {
      return Status::Internal("Coordinator::RunTask: shard " +
                              std::to_string(outcome.result.shard) +
                              " reported unknown score probe " +
                              std::to_string(probe.probe));
    }
    ScoreRollup& rollup = merged->score_probes[static_cast<size_t>(probe.probe)];
    for (const auto& [block, partials] : probe.blocks) {
      (void)block;
      rollup.partials.Merge(partials);
      rollup.blocks_merged += 1;
    }
  }
  return Status::OK();
}

/// Static span name per round kind (Span wants a const char* so the
/// tracing-off path never materializes a std::string).
const char* RoundSpanName(ShardTaskKind kind) {
  switch (kind) {
    case ShardTaskKind::kLeafMoments:
      return "round:leaf_moments";
    case ShardTaskKind::kSignalStats:
      return "round:signal_stats";
    case ShardTaskKind::kErrorPartials:
      return "round:error_partials";
    case ShardTaskKind::kScorePartials:
      return "round:score_partials";
  }
  return "round:?";
}

}  // namespace

Result<CoordinatorTaskResult> Coordinator::RunTask(const ShardInput& input,
                                                   const ShardPlan& plan,
                                                   ShardBackend* backend,
                                                   ThreadPool* pool,
                                                   const ShardTask& task,
                                                   const StopToken* stop) {
  if (backend == nullptr) {
    return Status::InvalidArgument("Coordinator::RunTask: null backend");
  }
  auto start = std::chrono::steady_clock::now();

  // Trace context of the *calling* thread (the pipeline stage's span and the
  // run id). Captured once here because the fan-out lambda below runs on
  // pool threads, whose own thread-local context is empty — each dispatch
  // re-installs the run id and parents its span on the round span
  // explicitly. All of this is inert when tracing is off (null recorder).
  const obs::ThreadTraceContext caller = obs::CurrentTraceContext();
  obs::Span round_span(caller.recorder, RoundSpanName(task.kind));
  if (round_span.active()) {
    round_span.Annotate("backend", backend->name());
    round_span.Annotate("shards", std::to_string(plan.num_shards()));
  }
  const uint64_t round_id = round_span.id();

  std::vector<ShardOutcome> outcomes = ParallelMap<ShardOutcome>(
      pool, plan.num_shards(), [&](int64_t shard) {
        ShardOutcome outcome;
        // Checked per shard, not once: a stop raised mid-plan skips every
        // not-yet-dispatched shard (in-flight ones run to completion).
        if (stop != nullptr && stop->stop_requested()) return outcome;
        obs::RunIdScope run_scope(caller.run_id);
        obs::Span dispatch_span(caller.recorder, "dispatch", round_id);
        if (dispatch_span.active()) {
          dispatch_span.Annotate("shard", std::to_string(shard));
        }
        Result<ShardTaskResult> result =
            backend->ExecuteTask(input, plan, shard, task);
        outcome.executed = true;
        if (result.ok()) {
          outcome.result = std::move(*result);
        } else {
          outcome.status = result.status();
        }
        return outcome;
      });

  if (stop != nullptr && stop->stop_requested()) {
    return Status::Cancelled("shard sweep cancelled (" + backend->name() +
                             " backend, " + ShardTaskKindName(task.kind) +
                             " task)");
  }
  for (const ShardOutcome& outcome : outcomes) {
    CHARLES_RETURN_NOT_OK(outcome.status);
  }

  CoordinatorTaskResult merged;
  merged.kind = task.kind;
  const int64_t num_features =
      input.shortlist == nullptr ? 0
                                 : static_cast<int64_t>(input.shortlist->size());
  // Feature counts are fixed up front: a leaf entirely inside one shard
  // contributes no partials from the others, and an all-empty rollup must
  // still carry the shortlist width.
  std::unordered_map<int64_t, size_t> leaf_position;
  if (task.kind == ShardTaskKind::kLeafMoments) {
    merged.leaves.resize(task.leaves.size());
    leaf_position.reserve(task.leaves.size());
    for (size_t l = 0; l < task.leaves.size(); ++l) {
      merged.leaves[l].stats = SufficientStats(num_features);
      leaf_position.emplace(task.leaves[l], l);
    }
  } else if (task.kind == ShardTaskKind::kSignalStats) {
    merged.signal_stats = SufficientStats(num_features);
  } else if (task.kind == ShardTaskKind::kScorePartials) {
    merged.score_probes.resize(task.probes.size());
  } else {
    merged.probes.resize(task.probes.size());
  }

  // Outcomes arrive in shard (= row) order and each shard lists its blocks
  // in ascending order, so the merges below visit every partial in
  // ascending global block order — the canonical fold of each currency.
  // The merge span wraps the fold; it observes the order, never changes it.
  obs::Span merge_span(caller.recorder, "merge", round_id);
  int64_t signal_blocks = 0;
  for (const ShardOutcome& outcome : outcomes) {
    if (!outcome.executed) continue;
    merged.shards_executed += 1;
    merged.rows_scanned += outcome.result.rows_scanned;
    merged.batch_blocks_staged += outcome.result.batch_blocks_staged;
    merged.batch_accumulators_folded += outcome.result.batch_accumulators_folded;
    merged.batch_max_accumulators_per_block =
        std::max(merged.batch_max_accumulators_per_block,
                 outcome.result.batch_max_accumulators_per_block);
    switch (task.kind) {
      case ShardTaskKind::kLeafMoments:
        CHARLES_RETURN_NOT_OK(MergeLeafMoments(outcome, leaf_position, &merged));
        break;
      case ShardTaskKind::kSignalStats:
        CHARLES_RETURN_NOT_OK(MergeSignalStats(outcome, &signal_blocks, &merged));
        break;
      case ShardTaskKind::kErrorPartials:
        CHARLES_RETURN_NOT_OK(MergeErrorPartials(outcome, &merged));
        break;
      case ShardTaskKind::kScorePartials:
        CHARLES_RETURN_NOT_OK(MergeScorePartials(outcome, &merged));
        break;
    }
  }
  for (const LeafRollup& rollup : merged.leaves) {
    merged.blocks_merged += rollup.blocks_merged;
  }
  for (const ProbeRollup& rollup : merged.probes) {
    merged.blocks_merged += rollup.blocks_merged;
  }
  for (const ScoreRollup& rollup : merged.score_probes) {
    merged.blocks_merged += rollup.blocks_merged;
  }
  merged.blocks_merged += signal_blocks;
  merged.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merged;
}

Result<CoordinatorResult> Coordinator::Run(const ShardInput& input,
                                           const ShardPlan& plan,
                                           ShardBackend* backend, ThreadPool* pool,
                                           const StopToken* stop) {
  CHARLES_ASSIGN_OR_RETURN(
      CoordinatorTaskResult merged,
      RunTask(input, plan, backend, pool, AllLeavesTask(input), stop));
  CoordinatorResult legacy;
  legacy.leaves = std::move(merged.leaves);
  legacy.shards_executed = merged.shards_executed;
  legacy.rows_scanned = merged.rows_scanned;
  legacy.blocks_merged = merged.blocks_merged;
  legacy.elapsed_seconds = merged.elapsed_seconds;
  return legacy;
}

}  // namespace charles
