#include "distributed/coordinator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "parallel/parallel.h"

namespace charles {

namespace {

/// ParallelMap slot: Result<ShardResult> is not default-constructible, so
/// shard outcomes travel as a (status, result) pair.
struct ShardOutcome {
  bool executed = false;
  Status status;
  ShardResult result;
};

}  // namespace

Result<CoordinatorResult> Coordinator::Run(const ShardInput& input,
                                           const ShardPlan& plan,
                                           ShardBackend* backend, ThreadPool* pool,
                                           const StopToken* stop) {
  if (backend == nullptr) {
    return Status::InvalidArgument("Coordinator::Run: null backend");
  }
  auto start = std::chrono::steady_clock::now();

  std::vector<ShardOutcome> outcomes = ParallelMap<ShardOutcome>(
      pool, plan.num_shards(), [&](int64_t shard) {
        ShardOutcome outcome;
        // Checked per shard, not once: a stop raised mid-plan skips every
        // not-yet-dispatched shard (in-flight ones run to completion).
        if (stop != nullptr && stop->stop_requested()) return outcome;
        Result<ShardResult> result = backend->ExecuteShard(input, plan, shard);
        outcome.executed = true;
        if (result.ok()) {
          outcome.result = std::move(*result);
        } else {
          outcome.status = result.status();
        }
        return outcome;
      });

  if (stop != nullptr && stop->stop_requested()) {
    return Status::Cancelled("shard sweep cancelled (" + backend->name() +
                             " backend)");
  }
  for (const ShardOutcome& outcome : outcomes) {
    CHARLES_RETURN_NOT_OK(outcome.status);
  }

  CoordinatorResult merged;
  merged.leaves.resize(input.leaves.size());
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    // Feature count must be fixed up front: a leaf entirely inside one shard
    // contributes no partials from the others, and an all-empty rollup must
    // still carry the shortlist width.
    merged.leaves[l].stats = SufficientStats(
        input.shortlist == nullptr ? 0
                                   : static_cast<int64_t>(input.shortlist->size()));
  }
  // Outcomes arrive in shard (= row) order and each shard lists its blocks
  // in ascending order, so this double loop visits every (leaf, block)
  // partial in ascending global block order — the canonical fold.
  for (const ShardOutcome& outcome : outcomes) {
    if (!outcome.executed) continue;
    merged.shards_executed += 1;
    merged.rows_scanned += outcome.result.rows_scanned;
    for (const LeafShardStats& leaf : outcome.result.leaves) {
      if (leaf.leaf < 0 ||
          leaf.leaf >= static_cast<int64_t>(merged.leaves.size())) {
        return Status::Internal("Coordinator::Run: shard " +
                                std::to_string(outcome.result.shard) +
                                " reported unknown leaf " +
                                std::to_string(leaf.leaf));
      }
      LeafRollup& rollup = merged.leaves[static_cast<size_t>(leaf.leaf)];
      rollup.max_abs_delta = std::max(rollup.max_abs_delta, leaf.max_abs_delta);
      for (const auto& [block, stats] : leaf.blocks) {
        CHARLES_RETURN_NOT_OK(rollup.stats.Merge(stats));
        rollup.blocks_merged += 1;
      }
    }
  }
  for (const LeafRollup& rollup : merged.leaves) {
    merged.blocks_merged += rollup.blocks_merged;
  }
  merged.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merged;
}

}  // namespace charles
