#include "distributed/remote_backend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "distributed/remote_protocol.h"
#include "distributed/shard_planner.h"
#include "distributed/worker_service.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace charles {

namespace {

/// Backoff before retry `attempt` (0-based): base × 2^attempt, capped.
int BackoffMs(int base_ms, int attempt) {
  if (base_ms <= 0) return 0;
  int64_t backoff = static_cast<int64_t>(base_ms) << std::min(attempt, 16);
  return static_cast<int>(std::min<int64_t>(backoff, 10LL * base_ms));
}

}  // namespace

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::Create(
    RemoteBackendOptions options) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument(
        "RemoteBackend: no worker endpoints configured");
  }
  std::vector<net::Endpoint> endpoints;
  endpoints.reserve(options.endpoints.size());
  for (const std::string& spec : options.endpoints) {
    CHARLES_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::ParseEndpoint(spec));
    endpoints.push_back(std::move(endpoint));
  }
  std::unique_ptr<RemoteBackend> backend(
      new RemoteBackend(std::move(options), std::move(endpoints)));
  return backend;
}

RemoteBackend::RemoteBackend(RemoteBackendOptions options,
                             std::vector<net::Endpoint> endpoints)
    : options_(std::move(options)),
      max_frame_bytes_(options_.max_frame_bytes > 0 ? options_.max_frame_bytes
                                                    : kRemoteMaxFrameBytes),
      registry_(std::move(endpoints)) {
  registry_.StartHealthChecks(options_.health_check_interval_ms,
                              options_.connect_timeout_ms, max_frame_bytes_);
}

RemoteBackend::~RemoteBackend() { registry_.StopHealthChecks(); }

Result<RemoteBackend::InstallBundle> RemoteBackend::EnsureInstallBundle(
    const ShardInput& input, const ShardPlan& plan) {
  std::lock_guard<std::mutex> lock(input_mu_);
  bool same = key_shortlist_ == input.shortlist &&
              key_columns_ == input.columns && key_y_old_ == input.y_old &&
              key_y_new_ == input.y_new && key_leaves_ == input.leaves &&
              key_num_rows_ == plan.num_rows &&
              key_block_rows_ == plan.block_rows &&
              key_num_shards_ == plan.num_shards();
  if (same && bundle_.payload != nullptr) return bundle_;

  auto payload = std::make_shared<std::string>();
  CHARLES_RETURN_NOT_OK(
      SerializeInstallInput(bundle_.epoch + 1, input, plan, payload.get()));
  bundle_.epoch += 1;
  bundle_.payload = std::move(payload);
  key_shortlist_ = input.shortlist;
  key_columns_ = input.columns;
  key_y_old_ = input.y_old;
  key_y_new_ = input.y_new;
  key_leaves_ = input.leaves;
  key_num_rows_ = plan.num_rows;
  key_block_rows_ = plan.block_rows;
  key_num_shards_ = plan.num_shards();
  return bundle_;
}

Result<ShardTaskResult> RemoteBackend::TryExecuteOn(WorkerSession* session,
                                                    const InstallBundle& bundle,
                                                    int64_t shard_index,
                                                    const ShardTask& task,
                                                    bool* transport_failure) {
  *transport_failure = true;  // every early exit below is a transport failure
  std::lock_guard<std::mutex> lock(session->mu);

  // Connect + handshake on demand. A fresh connection always re-installs
  // (installed_epoch resets), so a restarted worker can never serve a task
  // against stale or missing input.
  if (session->fd < 0) {
    CHARLES_ASSIGN_OR_RETURN(
        int fd, net::TcpConnect(session->endpoint, options_.connect_timeout_ms));
    Result<int32_t> version = RemoteClientHandshake(
        fd, options_.connect_timeout_ms, max_frame_bytes_);
    if (!version.ok()) {
      net::CloseFd(fd);
      return version.status();
    }
    session->fd = fd;
    session->wire_version = *version;
    session->installed_epoch = -1;
  }

  auto fail_connection = [&](const Status& status) {
    net::CloseFd(session->fd);
    session->fd = -1;
    session->installed_epoch = -1;
    return status;
  };

  if (session->installed_epoch != bundle.epoch) {
    Status sent = net::WriteFrame(
        session->fd, static_cast<int32_t>(RemoteMessageType::kInstallInput),
        *bundle.payload);
    if (!sent.ok()) return fail_connection(sent);
    Result<net::Frame> reply =
        net::ReadFrame(session->fd, options_.task_timeout_ms, max_frame_bytes_);
    if (!reply.ok()) return fail_connection(reply.status());
    if (reply->type != static_cast<int32_t>(RemoteMessageType::kInstallOk)) {
      return fail_connection(Status::IOError(
          "RemoteBackend: install rejected by " + session->endpoint.ToString() +
          " (frame type " + std::to_string(reply->type) + ")"));
    }
    session->installed_epoch = bundle.epoch;
    registry_.RecordInstall(session);
    {
      static obs::Counter* const install_bytes =
          obs::MetricsRegistry::Global().counter("remote.install_bytes");
      install_bytes->Add(static_cast<int64_t>(bundle.payload->size()));
    }
  }

  // Trace context of the dispatching pool thread (the coordinator installed
  // it: run id + dispatch span). The request carries it to the worker; a
  // traced task's composite reply returns the worker's spans, which are
  // rebased below into this process's timeline.
  const obs::ThreadTraceContext trace = obs::CurrentTraceContext();
  const bool traced = trace.recorder != nullptr;

  std::string request;
  SerializeExecuteRequest(bundle.epoch, shard_index, trace.run_id,
                          trace.span_id, traced, task, &request);
  registry_.RecordDispatch(session);
  const int64_t send_ns = obs::TraceRecorder::NowNs();
  Status sent = net::WriteFrame(
      session->fd, static_cast<int32_t>(RemoteMessageType::kExecuteTask),
      request);
  if (!sent.ok()) return fail_connection(sent);
  Result<net::Frame> reply =
      net::ReadFrame(session->fd, options_.task_timeout_ms, max_frame_bytes_);
  if (!reply.ok()) return fail_connection(reply.status());
  const int64_t reply_ns = obs::TraceRecorder::NowNs();

  if (reply->type == static_cast<int32_t>(RemoteMessageType::kTaskError)) {
    // The worker ran and deterministically refused or failed the task. The
    // connection is fine; the error would repeat on any worker — propagate.
    *transport_failure = false;
    return ParseStatusPayload(reply->payload)
        .WithContext("RemoteBackend: worker " + session->endpoint.ToString());
  }
  if (reply->type != static_cast<int32_t>(RemoteMessageType::kTaskOk)) {
    return fail_connection(Status::IOError(
        "RemoteBackend: unexpected reply frame type " +
        std::to_string(reply->type) + " from " + session->endpoint.ToString()));
  }
  Result<ShardTaskResult> result = [&]() -> Result<ShardTaskResult> {
    if (!traced) {
      return ShardTaskResult::Deserialize(reply->payload.data(),
                                          reply->payload.size());
    }
    Result<TracedTaskReply> parsed =
        ParseTracedTaskReply(reply->payload.data(), reply->payload.size());
    if (!parsed.ok()) return parsed.status();
    // Rebase the worker's relative timestamps into our dispatch span. The
    // two steady clocks share no epoch, so anchor the worker's first span
    // at send time plus half the non-compute round-trip slack — the usual
    // symmetric-latency estimate — and never before the send itself.
    if (!parsed->spans.empty()) {
      const int64_t worker_total_ns = parsed->spans.front().dur_ns > 0
                                          ? parsed->spans.front().dur_ns
                                          : 0;
      int64_t slack_ns = (reply_ns - send_ns) - worker_total_ns;
      if (slack_ns < 0) slack_ns = 0;
      const int64_t anchor_ns = send_ns + slack_ns / 2;
      trace.recorder->ImportSpans(parsed->spans, trace.span_id, anchor_ns,
                                  1000 + static_cast<uint64_t>(shard_index));
    }
    return std::move(parsed->result);
  }();
  if (!result.ok()) {
    return fail_connection(result.status().WithContext(
        "RemoteBackend: malformed result from " + session->endpoint.ToString()));
  }
  if (result->shard != shard_index || result->kind != task.kind) {
    return fail_connection(Status::IOError(
        "RemoteBackend: worker " + session->endpoint.ToString() +
        " answered for shard " + std::to_string(result->shard) +
        ", expected " + std::to_string(shard_index)));
  }
  *transport_failure = false;
  return result;
}

Result<ShardTaskResult> RemoteBackend::ExecuteTask(const ShardInput& input,
                                                   const ShardPlan& plan,
                                                   int64_t shard_index,
                                                   const ShardTask& task) {
  CHARLES_ASSIGN_OR_RETURN(InstallBundle bundle,
                           EnsureInstallBundle(input, plan));
  tasks_dispatched_.fetch_add(1);

  Status last_error = Status::OK();
  WorkerSession* failed_on = nullptr;
  for (int attempt = 0; attempt <= options_.max_task_retries; ++attempt) {
    WorkerSession* session = registry_.Acquire(failed_on);
    if (session == nullptr) {
      // Fleet ran dry: one synchronous readmission sweep before giving up.
      if (!registry_.ReProbe(options_.connect_timeout_ms, max_frame_bytes_)) {
        break;
      }
      session = registry_.Acquire(failed_on);
      if (session == nullptr) session = registry_.Acquire();
      if (session == nullptr) break;
    }
    bool transport_failure = false;
    Result<ShardTaskResult> result =
        TryExecuteOn(session, bundle, shard_index, task, &transport_failure);
    if (result.ok() || !transport_failure) return result;

    if (result.status().IsInvalidArgument()) {
      // Handshake version rejection (RemoteClientHandshake's one
      // InvalidArgument) — exclude the worker permanently and reassign; no
      // amount of retrying makes a version-skewed worker safe to merge from.
      registry_.MarkVersionRejected(session, result.status().message());
    } else {
      registry_.RecordFailure(session);
      registry_.MarkUnhealthy(session, result.status().message());
    }
    last_error = result.status();
    failed_on = session;
    if (attempt < options_.max_task_retries) {
      task_retries_.fetch_add(1);
      int backoff = BackoffMs(options_.retry_backoff_ms, attempt);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
  }
  std::string detail = last_error.ok()
                           ? "no healthy worker available"
                           : last_error.ToString();
  return Status::IOError("RemoteBackend: shard " + std::to_string(shard_index) +
                         " failed after " +
                         std::to_string(options_.max_task_retries + 1) +
                         " attempts: " + detail);
}

RemoteBackendDiagnostics RemoteBackend::Diagnostics() const {
  RemoteBackendDiagnostics diagnostics;
  diagnostics.tasks_dispatched = tasks_dispatched_.load();
  diagnostics.task_retries = task_retries_.load();
  diagnostics.workers = registry_.Snapshot();
  for (const RemoteWorkerCounters& worker : diagnostics.workers) {
    diagnostics.input_installs += worker.input_installs;
  }
  {
    std::lock_guard<std::mutex> lock(input_mu_);
    diagnostics.input_epochs = bundle_.epoch;
  }
  return diagnostics;
}

}  // namespace charles
