#ifndef CHARLES_DISTRIBUTED_REMOTE_COUNTERS_H_
#define CHARLES_DISTRIBUTED_REMOTE_COUNTERS_H_

/// \file
/// \brief Per-worker dispatch diagnostics of the RemoteBackend fleet.
///
/// Tiny standalone header so both producers (WorkerRegistry / RemoteBackend)
/// and the consumer (SummaryList in core/engine.h) can name the struct
/// without pulling each other's worlds in.

#include <cstdint>
#include <string>

namespace charles {

/// One remote worker's dispatch/health counters, snapshotted at the end of a
/// run (SummaryList::remote_workers) or on demand from the registry.
struct RemoteWorkerCounters {
  /// The worker's "host:port" address.
  std::string endpoint;
  /// False while the worker is marked unhealthy (connection lost, timeout,
  /// or failed handshake) and not yet re-admitted.
  bool healthy = true;
  /// True when the worker was excluded permanently at handshake because it
  /// advertises no wire version the coordinator speaks.
  bool version_rejected = false;
  /// The negotiated wire version (0 = never connected).
  int32_t wire_version = 0;
  /// Task executions sent to this worker, including ones that later failed.
  int64_t tasks_dispatched = 0;
  /// Dispatches that failed in transport (the task was then reassigned).
  int64_t tasks_failed = 0;
  /// ShardInput bundles installed on this worker — stays at one per
  /// (snapshot, plan) epoch per connection, however many tasks follow.
  int64_t input_installs = 0;
  /// Last transport/handshake error observed on this worker ("" when none).
  std::string last_error;
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_REMOTE_COUNTERS_H_
