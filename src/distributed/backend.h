#ifndef CHARLES_DISTRIBUTED_BACKEND_H_
#define CHARLES_DISTRIBUTED_BACKEND_H_

/// \file
/// \brief The pluggable executor seam of distributed shard execution.
///
/// A ShardBackend executes one tagged ShardTask over one ShardRange of a
/// plan and returns a ShardTaskResult. Four task kinds cover the engine's
/// row-bound work (see ShardTaskKind): the per-leaf moments sweep behind
/// every transformation fit, the phase-1 signal accumulation over the whole
/// diff, exact L1-error partials for candidate transforms, and exact score
/// partials (L1 + within-band counts) for row-free scoring. Every kind's
/// payload is built from per-block partials, so the Coordinator's ordered
/// fold reproduces a central scan bit-for-bit (docs/distributed.md).
///
/// Backends are the seam future multi-box dispatch plugs into — a remote
/// backend ships ShardTask bytes out and ShardTaskResult bytes back, which
/// is exactly what SubprocessBackend's pipe protocol rehearses on one
/// machine. The legacy single-purpose entry points (ShardResult,
/// ExecuteShardKernel, ExecuteShard) are kept as thin wrappers over the
/// kLeafMoments task so pre-protocol callers keep working.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/partition_finder.h"
#include "linalg/error_partials.h"
#include "linalg/score_partials.h"
#include "linalg/suffstats.h"
#include "table/row_set.h"

namespace charles {

struct ShardPlan;

/// \brief Read-only view of everything a shard needs: the shortlist columns
/// and targets of the aligned analysis table, and the leaf row sets of every
/// surviving partition (deduplicated; row indices are analysis-table rows).
///
/// All pointers must outlive the shard execution. The view is shared
/// memory on one box; a future remote backend would ship the referenced
/// data once per (snapshot, plan) and address it the same way. Tasks that
/// never touch leaves (kSignalStats) may run against an empty `leaves`.
struct ShardInput {
  /// Transformation shortlist, in stats feature order.
  const std::vector<std::string>* shortlist = nullptr;
  /// Pre-converted columns covering `shortlist` over the analysis table.
  const ColumnCache* columns = nullptr;
  /// Old/new target values, aligned with analysis rows.
  const std::vector<double>* y_old = nullptr;
  const std::vector<double>* y_new = nullptr;
  /// Deduplicated partition leaves; task payloads and results refer to these
  /// by index. Order must be identical on every executor of a plan.
  std::vector<const RowSet*> leaves;
};

/// \brief What a ShardTask asks a shard to compute.
enum class ShardTaskKind : int64_t {
  /// Per-leaf sufficient statistics + snap evidence over the shard's range —
  /// the original (pre-protocol) sweep behind every transformation fit.
  kLeafMoments = 1,
  /// Phase-1 signal accumulation: per-block shortlist moments over *all*
  /// rows of the range (the run's global OLS currency) plus the folded
  /// delta evidence (max |Δy|, changed-row count) of the change signals.
  kSignalStats = 2,
  /// Exact L1-error partials: per-block Σ|y_new − ŷ| for each probe's
  /// candidate transform over its leaf's rows in the range.
  kErrorPartials = 3,
  /// Exact score partials: per-block (Σ|y_new − ŷ|, exact-within-tolerance
  /// count, n) for each probe's candidate transform over its leaf's rows in
  /// the range — the row-free scoring currency. The Σ chain replays
  /// kErrorPartials' addends exactly, so the L1 projection of a score probe
  /// doubles as its error probe (one round serves both).
  kScorePartials = 4,
};

/// Short lowercase name for diagnostics and bench output.
std::string ShardTaskKindName(ShardTaskKind kind);

/// \brief One candidate transform whose exact L1 error a kErrorPartials
/// task (or exact score partials a kScorePartials task) evaluates.
///
/// The model is addressed against the run's shortlist: `features` are
/// shortlist column indices (the transformation subset T, in order) and
/// `coefficients` pair with them; ŷ(row) = intercept + Σ cᵢ·xᵢ(row) through
/// the same LinearModel::PredictRow arithmetic the central engine uses, so
/// shard-evaluated predictions are bit-identical to centrally evaluated
/// ones.
struct ErrorProbe {
  /// Index into ShardInput::leaves naming the probe's row set.
  int64_t leaf = 0;
  std::vector<int64_t> features;
  double intercept = 0.0;
  std::vector<double> coefficients;
};

/// \brief A tagged request: what one shard of the plan should compute.
///
/// The task is the coordinator→executor half of the protocol. In-process
/// and forked backends pass it by reference; the wire form exists for
/// remote dispatch and is covered by round-trip tests.
struct ShardTask {
  ShardTaskKind kind = ShardTaskKind::kLeafMoments;
  /// kLeafMoments: indices into ShardInput::leaves to sweep. A warm
  /// coordinator elides already-cached leaves by simply leaving them out.
  std::vector<int64_t> leaves;
  /// kErrorPartials / kScorePartials: the candidate transforms to evaluate.
  std::vector<ErrorProbe> probes;
  /// kScorePartials: the exactness band every score fold must use — the run
  /// Scorer's exact_tolerance(), shipped with the task so every executor
  /// tallies the identical within-band count. Ignored by other kinds (and
  /// serialized unconditionally, which is what moved the wire to v4).
  double score_tolerance = 0.0;

  /// \name Wire format (versioned, native-endian; magic "CTK1").
  /// @{
  void SerializeTo(std::string* out) const;
  static Result<ShardTask> Deserialize(const void* data, size_t size);
  /// @}
};

/// \brief One leaf's contribution from one shard (kLeafMoments).
struct LeafShardStats {
  /// Index into ShardInput::leaves.
  int64_t leaf = 0;
  /// Snap evidence: max |y_new − y_old| over the leaf's rows in this shard.
  /// Max is exactly associative, so the coordinator's fold reproduces the
  /// engine's serial no-change scan bit-for-bit — this is what lets the
  /// central fit snap a distributed leaf to the no-change transformation
  /// without rescanning its rows.
  double max_abs_delta = 0.0;
  /// Per-block moments over the run's full shortlist, ascending block
  /// index. Blocks are never split across shards, so these partials are
  /// identical under every sharding.
  std::vector<std::pair<int64_t, SufficientStats>> blocks;
};

/// \brief One probe's contribution from one shard (kErrorPartials):
/// per-block exact L1 partials, ascending block index.
struct ProbeShardErrors {
  /// Index into ShardTask::probes.
  int64_t probe = 0;
  std::vector<std::pair<int64_t, ErrorPartials>> blocks;
};

/// \brief One probe's contribution from one shard (kScorePartials):
/// per-block exact score partials, ascending block index.
struct ProbeShardScores {
  /// Index into ShardTask::probes.
  int64_t probe = 0;
  std::vector<std::pair<int64_t, ScorePartials>> blocks;
};

/// \brief Everything a shard sends back for one task.
///
/// Only the fields of the task's kind are populated; the rest stay empty.
struct ShardTaskResult {
  ShardTaskKind kind = ShardTaskKind::kLeafMoments;
  int64_t shard = 0;

  /// kLeafMoments: leaves intersecting the shard's range, ascending index.
  std::vector<LeafShardStats> leaves;

  /// \name kSignalStats payload.
  /// @{
  /// Per-block shortlist moments over every row of the range, ascending.
  std::vector<std::pair<int64_t, SufficientStats>> signal_blocks;
  /// max |y_new − y_old| over the range (exactly associative fold).
  double signal_max_abs_delta = 0.0;
  /// Rows of the range whose target moved at all (|Δy| > 0); a cheap
  /// change-density diagnostic.
  int64_t signal_rows_changed = 0;
  /// @}

  /// kErrorPartials: one entry per probe intersecting the range, ascending
  /// probe index.
  std::vector<ProbeShardErrors> probes;

  /// kScorePartials: one entry per probe intersecting the range, ascending
  /// probe index.
  std::vector<ProbeShardScores> score_probes;

  /// \name Diagnostics.
  /// @{
  int64_t rows_scanned = 0;    ///< rows the task actually visited
  int64_t blocks_emitted = 0;  ///< per-block partials produced
  double elapsed_seconds = 0.0;
  /// Batched-fold diagnostics (linalg/batch_fold.h): blocks the task staged,
  /// accumulators folded over staged blocks, and the widest single-block
  /// batch. All zero when the task ran the per-leaf path — the counters are
  /// diagnostics only, and deliberately outside every parity comparison of
  /// the canonical payloads.
  int64_t batch_blocks_staged = 0;
  int64_t batch_accumulators_folded = 0;
  int64_t batch_max_accumulators_per_block = 0;
  /// @}

  /// \name Wire format.
  /// Versioned native-endian framing (magic "CST1") over the payload
  /// serializers — the bytes SubprocessBackend workers pipe back. A round
  /// trip is exact (doubles are copied bit-for-bit), so a deserialized
  /// result merges bit-identically to an in-process one.
  /// @{
  void SerializeTo(std::string* out) const;
  static Result<ShardTaskResult> Deserialize(const void* data, size_t size);
  /// @}
};

/// \brief Executes one task on one shard of a plan against in-memory input.
///
/// This is the shard *kernel* both built-in backends run — InProcessBackend
/// on a pool thread, SubprocessBackend inside a forked worker. Deterministic:
/// output depends only on (input, plan, shard index, task).
Result<ShardTaskResult> ExecuteShardTaskKernel(const ShardInput& input,
                                               const ShardPlan& plan,
                                               int64_t shard_index,
                                               const ShardTask& task);

/// \name Legacy single-purpose seam (pre-ShardTask)
///
/// The original protocol carried exactly one request — "sweep every leaf's
/// moments" — with its own result struct and wire format. Both are kept as
/// wrappers over the kLeafMoments task so existing callers and the recorded
/// "CSR1" wire format stay valid.
/// @{

/// \brief Everything a shard sends back to the coordinator (legacy form of
/// the kLeafMoments payload).
struct ShardResult {
  int64_t shard = 0;
  /// Leaves intersecting the shard's range, ascending leaf index.
  std::vector<LeafShardStats> leaves;

  /// \name Diagnostics.
  /// @{
  int64_t rows_scanned = 0;    ///< Σ leaf∩shard rows (leaves overlap).
  int64_t blocks_emitted = 0;  ///< per-leaf block partials produced
  double elapsed_seconds = 0.0;
  /// @}

  /// \name Wire format (legacy "CSR1" framing; exact round trip).
  /// @{
  void SerializeTo(std::string* out) const;
  static Result<ShardResult> Deserialize(const void* data, size_t size);
  /// @}
};

/// \brief The kLeafMoments request the legacy seam always issued: every
/// input leaf, in order. Shared by the legacy wrappers here and by
/// Coordinator::Run.
ShardTask AllLeavesTask(const ShardInput& input);

/// \brief Legacy kernel: the kLeafMoments task over every input leaf.
Result<ShardResult> ExecuteShardKernel(const ShardInput& input,
                                       const ShardPlan& plan,
                                       int64_t shard_index);

/// @}

/// \brief A shard executor. Implementations must be safe for concurrent
/// ExecuteTask calls on distinct shards — the coordinator fans out over the
/// run's thread pool.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Short human-readable backend name for diagnostics ("in-process", ...).
  virtual std::string name() const = 0;

  /// Executes `task` on shard `shard_index` of `plan` over `input`.
  virtual Result<ShardTaskResult> ExecuteTask(const ShardInput& input,
                                              const ShardPlan& plan,
                                              int64_t shard_index,
                                              const ShardTask& task) = 0;

  /// Legacy entry point: the kLeafMoments task over every input leaf,
  /// reported in the legacy ShardResult form.
  Result<ShardResult> ExecuteShard(const ShardInput& input, const ShardPlan& plan,
                                   int64_t shard_index);
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_BACKEND_H_
