#ifndef CHARLES_DISTRIBUTED_BACKEND_H_
#define CHARLES_DISTRIBUTED_BACKEND_H_

/// \file
/// \brief The pluggable executor seam of distributed shard execution.
///
/// A ShardBackend executes one ShardRange of a plan and returns a
/// ShardResult: for every partition leaf intersecting the range, the leaf's
/// per-block sufficient statistics (the exact-merge currency, see
/// linalg/suffstats.h) plus row-local snap evidence and diagnostics. The
/// Coordinator fans ranges out over a backend and folds the results; the
/// engine consumes the fold. Backends are the seam future multi-box
/// dispatch plugs into — a remote backend ships ShardInput references as
/// data and ShardResult bytes back, which is exactly what
/// SubprocessBackend's pipe protocol rehearses on one machine.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/partition_finder.h"
#include "linalg/suffstats.h"
#include "table/row_set.h"

namespace charles {

struct ShardPlan;

/// \brief Read-only view of everything a shard needs: the shortlist columns
/// and targets of the aligned analysis table, and the leaf row sets of every
/// surviving partition (deduplicated; row indices are analysis-table rows).
///
/// All pointers must outlive the shard execution. The view is shared
/// memory on one box; a future remote backend would ship the referenced
/// data once per (snapshot, plan) and address it the same way.
struct ShardInput {
  /// Transformation shortlist, in stats feature order.
  const std::vector<std::string>* shortlist = nullptr;
  /// Pre-converted columns covering `shortlist` over the analysis table.
  const ColumnCache* columns = nullptr;
  /// Old/new target values, aligned with analysis rows.
  const std::vector<double>* y_old = nullptr;
  const std::vector<double>* y_new = nullptr;
  /// Deduplicated partition leaves; ShardResult entries refer to these by
  /// index. Order must be identical on every executor of a plan.
  std::vector<const RowSet*> leaves;
};

/// \brief One leaf's contribution from one shard.
struct LeafShardStats {
  /// Index into ShardInput::leaves.
  int64_t leaf = 0;
  /// Snap evidence: max |y_new − y_old| over the leaf's rows in this shard.
  /// Max is exactly associative, so the coordinator's fold reproduces the
  /// engine's serial no-change scan bit-for-bit — this is what lets the
  /// central fit snap a distributed leaf to the no-change transformation
  /// without rescanning its rows.
  double max_abs_delta = 0.0;
  /// Per-block moments over the run's full shortlist, ascending block
  /// index. Blocks are never split across shards, so these partials are
  /// identical under every sharding.
  std::vector<std::pair<int64_t, SufficientStats>> blocks;
};

/// \brief Everything a shard sends back to the coordinator.
struct ShardResult {
  int64_t shard = 0;
  /// Leaves intersecting the shard's range, ascending leaf index.
  std::vector<LeafShardStats> leaves;

  /// \name Diagnostics.
  /// @{
  int64_t rows_scanned = 0;    ///< Σ leaf∩shard rows (leaves overlap).
  int64_t blocks_emitted = 0;  ///< per-leaf block partials produced
  double elapsed_seconds = 0.0;
  /// @}

  /// \name Wire format.
  /// Versioned native-endian framing over SufficientStats::SerializeTo —
  /// the bytes SubprocessBackend workers pipe to the coordinator. A round
  /// trip is exact (doubles are copied bit-for-bit), so a deserialized
  /// result merges bit-identically to an in-process one.
  /// @{
  void SerializeTo(std::string* out) const;
  static Result<ShardResult> Deserialize(const void* data, size_t size);
  /// @}
};

/// \brief Executes one shard of a plan against in-memory input: scans each
/// leaf's rows inside [range.row_begin, range.row_end), accumulating one
/// SufficientStats per canonical block and folding the snap evidence.
///
/// This is the shard *kernel* both built-in backends run — InProcessBackend
/// on a pool thread, SubprocessBackend inside a forked worker. Deterministic:
/// output depends only on (input, plan, shard index).
Result<ShardResult> ExecuteShardKernel(const ShardInput& input,
                                       const ShardPlan& plan,
                                       int64_t shard_index);

/// \brief A shard executor. Implementations must be safe for concurrent
/// ExecuteShard calls on distinct shards — the coordinator fans out over the
/// run's thread pool.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Short human-readable backend name for diagnostics ("in-process", ...).
  virtual std::string name() const = 0;

  /// Executes shard `shard_index` of `plan` over `input`.
  virtual Result<ShardResult> ExecuteShard(const ShardInput& input,
                                           const ShardPlan& plan,
                                           int64_t shard_index) = 0;
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_BACKEND_H_
