#ifndef CHARLES_DISTRIBUTED_SHARD_PLANNER_H_
#define CHARLES_DISTRIBUTED_SHARD_PLANNER_H_

/// \file
/// \brief Row-range shard planning for distributed leaf-statistics sweeps.
///
/// The aligned diff is split into contiguous row ranges, one per shard, and
/// every range boundary falls on a boundary of the canonical statistics
/// blocks (see AccumulateRowBlocks in linalg/suffstats.h). Block alignment
/// is what makes the merge exact: a block is never split across executors,
/// so every sharding produces the identical per-block partials, and the
/// coordinator's ordered Merge fold produces the identical moments — the
/// distributed run is bit-identical to the unsharded engine, not merely
/// close.
///
/// Rows are ranged in analysis-table order, which the engine derives from
/// key-ordered diff alignment — so plans are deterministic functions of
/// (row count, block size, shard count) and carry no data.

#include <cstdint>
#include <string>
#include <vector>

namespace charles {

/// One shard's contiguous slice of the diff: blocks [block_begin, block_end)
/// covering rows [row_begin, row_end).
struct ShardRange {
  int64_t index = 0;
  int64_t block_begin = 0;
  int64_t block_end = 0;
  int64_t row_begin = 0;
  int64_t row_end = 0;

  int64_t num_rows() const { return row_end - row_begin; }
  std::string ToString() const;
};

/// \brief A full shard plan over an n-row diff.
struct ShardPlan {
  int64_t num_rows = 0;
  int64_t block_rows = 0;
  /// Shards in row order; ranges are disjoint and cover [0, num_rows).
  std::vector<ShardRange> shards;

  int64_t num_shards() const { return static_cast<int64_t>(shards.size()); }
  /// Total canonical blocks of the diff (ceil(num_rows / block_rows)).
  int64_t num_blocks() const;
  std::string ToString() const;
};

/// \brief Deterministic planner: splits ceil(num_rows / block_rows) blocks
/// into at most `requested_shards` contiguous runs of near-equal block
/// count (earlier shards take the remainder, exactly like the thread pool's
/// chunking).
///
/// The effective shard count is min(requested_shards, block count) — on
/// data smaller than `requested_shards` blocks some shards would own no
/// rows, so they are not created. `requested_shards` >= 1; an empty diff
/// yields a plan with no shards.
ShardPlan PlanShards(int64_t num_rows, int64_t block_rows, int requested_shards);

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_SHARD_PLANNER_H_
