#ifndef CHARLES_DISTRIBUTED_REMOTE_PROTOCOL_H_
#define CHARLES_DISTRIBUTED_REMOTE_PROTOCOL_H_

/// \file
/// \brief Message vocabulary of the RemoteBackend ↔ charles_worker protocol.
///
/// Transport is net/frame.h ("CNF1" length-prefixed frames); this header
/// defines the frame *types* and their payload formats. The conversation:
///
/// ```
///   coordinator                      worker
///   ----------- kHello ------------>        version range [min, max]
///   <--- kHelloOk | kHelloReject ---        chosen version | worker's range
///   ----------- kInstallInput ----->        "CSI1" bundle, once per epoch
///   <---------- kInstallOk ---------
///   ----------- kExecuteTask ------>        epoch + shard + CTK1 task
///   <----- kTaskOk | kTaskError ----        CST1 result | encoded Status
///   ----------- kPing ------------->        health check
///   <---------- kPong --------------
///   ----------- kShutdown --------->        orderly drain (tests, CI)
///   <---------- kShutdownOk --------
/// ```
///
/// The ShardInput bundle ("CSI1") ships the shortlist columns, targets, plan
/// and leaf row sets once per (snapshot, plan) epoch; every subsequent task
/// frame carries only the epoch it expects, so a worker can detect a stale
/// or missing install and fail cleanly instead of computing over the wrong
/// snapshot. Task and result payloads reuse the CTK1/CST1 formats verbatim —
/// the same bytes SubprocessBackend pipes, so remote results merge
/// bit-identically to in-process ones.
///
/// Like every ChARLES wire format this is a same-architecture native-endian
/// protocol (common/wire.h); doubles survive the trip bit-for-bit, which is
/// what the determinism contract rests on.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "distributed/backend.h"
#include "distributed/shard_planner.h"
#include "obs/trace.h"
#include "table/row_set.h"

namespace charles {

/// \name Wire version negotiation.
///
/// The coordinator's kHello carries the closed version range it speaks; the
/// worker picks the highest version both sides support (kHelloOk) or, if the
/// ranges are disjoint, answers kHelloReject with its own range so the
/// coordinator can log a precise diagnostic and exclude the worker.
/// @{
/// Version 2: ShardTaskResult ("CST1") gained trailing batched-fold
/// diagnostics counters; a version-1 peer cannot parse the frames, so the
/// range moved past it — skewed builds are excluded at the handshake, never
/// at a confusing mid-run parse error.
///
/// Version 3: the kExecuteTask payload gained run/trace context (run_id,
/// parent span, traced flag) between the shard index and the CTK1 bytes,
/// and a *traced* task's kTaskOk reply became a composite payload (CST1
/// result + the worker's span blob) so one run yields a single
/// cross-process trace. Untraced kTaskOk replies stay raw CST1, but the
/// request layout change alone makes version 2 unparseable, so the range
/// moved past it — same policy as v1 → v2.
///
/// Version 4: the kScorePartials task kind — ShardTask ("CTK1") gained a
/// trailing score_tolerance double and ShardTaskResult ("CST1") a trailing
/// score-probes section, both serialized unconditionally, so a version-3
/// peer cannot parse either frame (and would reject the kind even if it
/// could). The range moved past it — same policy as every bump before.
inline constexpr int32_t kRemoteWireVersionMin = 4;
inline constexpr int32_t kRemoteWireVersionMax = 4;
/// @}

/// Frame types of the remote protocol (net::Frame::type values).
enum class RemoteMessageType : int32_t {
  kHello = 1,
  kHelloOk = 2,
  kHelloReject = 3,
  kInstallInput = 4,
  kInstallOk = 5,
  kExecuteTask = 6,
  kTaskOk = 7,
  kTaskError = 8,
  kPing = 9,
  kPong = 10,
  kShutdown = 11,
  kShutdownOk = 12,
};

/// A closed wire-version range, as carried by kHello and kHelloReject.
struct RemoteVersionRange {
  int32_t min = 0;
  int32_t max = 0;
};

/// \name Handshake payloads.
/// @{
std::string SerializeVersionRange(int32_t version_min, int32_t version_max);
Result<RemoteVersionRange> ParseVersionRange(const std::string& payload);
std::string SerializeChosenVersion(int32_t version);
Result<int32_t> ParseChosenVersion(const std::string& payload);
/// @}

/// Runs the coordinator side of the handshake over a freshly connected
/// socket: sends kHello with this build's version range, awaits the reply.
/// Returns the negotiated version on kHelloOk. A kHelloReject surfaces as
/// InvalidArgument quoting both ranges — the registry's cue to exclude the
/// worker *permanently* (a version-skewed worker must never contribute to a
/// merge). Everything else (timeout, torn stream, nonsense reply) is
/// IOError — transient, retry elsewhere.
Result<int32_t> RemoteClientHandshake(int fd, int timeout_ms,
                                      int64_t max_frame_bytes);

/// \brief A worker's owned reconstruction of the coordinator's ShardInput.
///
/// The coordinator's ShardInput is a pointer view into engine-owned state;
/// on the worker those objects don't exist, so the install bundle is
/// deserialized into this owning struct and `View()` re-forms the pointer
/// view the shard kernel expects. Held in a unique_ptr so the view's
/// pointers stay stable for the lifetime of the install.
struct InstalledInput {
  int64_t epoch = 0;
  ShardPlan plan;
  std::vector<std::string> shortlist;
  ColumnCache columns;
  std::vector<double> y_old;
  std::vector<double> y_new;
  std::vector<RowSet> leaves;

  /// The kernel-facing pointer view over this owned storage. Valid while
  /// this object stays alive and unmodified.
  ShardInput View() const;
};

/// \name kInstallInput payload ("CSI1" bundle).
///
/// Layout: magic "CSI1" | epoch i64 | plan (num_rows, block_rows, shard
/// count, 5×i64 per shard) | shortlist strings | one double column per
/// shortlist entry (in shortlist order) | y_old | y_new | leaf index
/// vectors. All counts are validated against the bytes actually present
/// before any allocation.
/// @{

/// Serializes `input` (+ its plan) as epoch `epoch`. Fails if `input` does
/// not cover its own shortlist — a coordinator-side bug, caught before any
/// bytes hit the wire.
Status SerializeInstallInput(int64_t epoch, const ShardInput& input,
                             const ShardPlan& plan, std::string* out);

/// Parses a "CSI1" bundle into owning storage. Rejects bad magic,
/// truncation, over-length counts and trailing bytes with IOError.
Result<std::unique_ptr<InstalledInput>> DeserializeInstallInput(const void* data,
                                                                size_t size);
/// @}

/// \name kExecuteTask payload.
///
/// Layout (v3): epoch i64 | shard i64 | run_id u64 | parent_span u64 |
/// traced i32 | CTK1 task bytes (the remainder of the payload, exactly as
/// ShardTask::SerializeTo emits them). `run_id` tags the worker's log lines
/// whether or not tracing is on; `traced` != 0 asks the worker to record
/// spans for this task (parented under `parent_span`, the coordinator's
/// dispatch span) and return them in a composite kTaskOk reply.
/// @{

/// One parsed execute request.
struct RemoteTaskRequest {
  int64_t epoch = 0;
  int64_t shard = 0;
  uint64_t run_id = 0;       ///< run fingerprint (0 = unknown)
  uint64_t parent_span = 0;  ///< coordinator dispatch span id
  bool traced = false;       ///< record + return worker spans
  ShardTask task;
};

void SerializeExecuteRequest(int64_t epoch, int64_t shard, uint64_t run_id,
                             uint64_t parent_span, bool traced,
                             const ShardTask& task, std::string* out);
Result<RemoteTaskRequest> ParseExecuteRequest(const void* data, size_t size);
/// @}

/// \name Traced kTaskOk payload.
///
/// An untraced task's kTaskOk reply is the raw CST1 bytes (unchanged since
/// v2). A *traced* task replies with a composite payload:
/// result length i64 | CST1 bytes | span count i64 | per span (id u64 |
/// parent u64 | name string (len i64 + bytes) | start_rel_ns i64 |
/// dur_ns i64 | annotation count i64 | per annotation key string + value
/// string). Span ids are 1..count in blob order; `start_rel_ns` is relative
/// to the worker's first span, because the two processes' steady clocks
/// share no epoch — the coordinator rebases on import
/// (TraceRecorder::ImportSpans). Both sides know the request's `traced`
/// flag, so the two reply layouts are never ambiguous.
/// @{

/// A parsed composite kTaskOk reply.
struct TracedTaskReply {
  ShardTaskResult result;
  std::vector<obs::SpanRecord> spans;
};

void SerializeTracedTaskResult(const ShardTaskResult& result,
                               const std::vector<obs::SpanRecord>& spans,
                               std::string* out);
Result<TracedTaskReply> ParseTracedTaskReply(const void* data, size_t size);
/// @}

/// \name kTaskError payload: an encoded Status.
///
/// Layout: code int32 | message length i64 | message bytes. Lets a worker's
/// deterministic kernel error (bad shard index, unknown task kind) propagate
/// to the coordinator with its category intact — such errors are *not*
/// transport failures and must not trigger reassignment.
/// @{
std::string SerializeStatusPayload(const Status& status);
/// Returns the decoded (non-OK) status, or IOError if the payload itself is
/// malformed or encodes OK (a worker never errors with OK).
Status ParseStatusPayload(const std::string& payload);
/// @}

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_REMOTE_PROTOCOL_H_
