#ifndef CHARLES_DISTRIBUTED_IN_PROCESS_BACKEND_H_
#define CHARLES_DISTRIBUTED_IN_PROCESS_BACKEND_H_

#include "distributed/backend.h"

namespace charles {

/// \brief The zero-copy backend: runs the shard kernel on the calling
/// thread, against the run's in-memory ShardInput.
///
/// Parallelism comes from the Coordinator, which fans ExecuteShard calls
/// out over the run's thread pool (the EngineContext pool for attached
/// engines) — the backend itself is stateless and trivially concurrent.
/// This is the default production backend on one box; SubprocessBackend
/// exists to prove the wire format this backend never needs.
class InProcessBackend : public ShardBackend {
 public:
  std::string name() const override { return "in-process"; }

  Result<ShardTaskResult> ExecuteTask(const ShardInput& input, const ShardPlan& plan,
                                      int64_t shard_index,
                                      const ShardTask& task) override {
    return ExecuteShardTaskKernel(input, plan, shard_index, task);
  }
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_IN_PROCESS_BACKEND_H_
