#include "distributed/shard_planner.h"

#include <algorithm>

#include "common/logging.h"

namespace charles {

std::string ShardRange::ToString() const {
  return "shard " + std::to_string(index) + ": rows [" + std::to_string(row_begin) +
         ", " + std::to_string(row_end) + ") blocks [" + std::to_string(block_begin) +
         ", " + std::to_string(block_end) + ")";
}

int64_t ShardPlan::num_blocks() const {
  if (block_rows <= 0) return 0;
  return (num_rows + block_rows - 1) / block_rows;
}

std::string ShardPlan::ToString() const {
  std::string out = "ShardPlan{" + std::to_string(num_rows) + " rows, " +
                    std::to_string(block_rows) + "-row blocks";
  for (const ShardRange& shard : shards) out += "; " + shard.ToString();
  out += "}";
  return out;
}

ShardPlan PlanShards(int64_t num_rows, int64_t block_rows, int requested_shards) {
  CHARLES_CHECK_GE(num_rows, 0);
  CHARLES_CHECK_GE(block_rows, 1);
  CHARLES_CHECK_GE(requested_shards, 1);
  ShardPlan plan;
  plan.num_rows = num_rows;
  plan.block_rows = block_rows;
  int64_t blocks = plan.num_blocks();
  int64_t shards = std::min<int64_t>(requested_shards, blocks);
  int64_t block_begin = 0;
  for (int64_t s = 0; s < shards; ++s) {
    // Near-equal block counts, earlier shards absorbing the remainder — the
    // same deterministic split parallel_internal::MakeChunks uses.
    int64_t count = blocks / shards + (s < blocks % shards ? 1 : 0);
    ShardRange range;
    range.index = s;
    range.block_begin = block_begin;
    range.block_end = block_begin + count;
    range.row_begin = range.block_begin * block_rows;
    range.row_end = std::min(range.block_end * block_rows, num_rows);
    plan.shards.push_back(range);
    block_begin = range.block_end;
  }
  return plan;
}

}  // namespace charles
