#include "distributed/worker_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/wire.h"
#include "net/frame.h"
#include "obs/trace.h"

namespace charles {

namespace {

/// A fresh connection must say Hello promptly: connections are served
/// sequentially, so a silent peer (port scanner, wedged dialer) must not be
/// able to park the accept loop forever.
constexpr int kHandshakeTimeoutMs = 10'000;

Status Reply(int fd, RemoteMessageType type, const std::string& payload) {
  return net::WriteFrame(fd, static_cast<int32_t>(type), payload);
}

Status ReplyError(int fd, const Status& error) {
  return Reply(fd, RemoteMessageType::kTaskError, SerializeStatusPayload(error));
}

}  // namespace

Status WorkerService::ServeConnection(int fd) {
  // Handshake: the first frame must be a Hello carrying the coordinator's
  // version range. Pick the highest version both sides speak, or reject with
  // this worker's range so the coordinator can log a precise diagnostic.
  CHARLES_ASSIGN_OR_RETURN(
      net::Frame hello,
      net::ReadFrame(fd, kHandshakeTimeoutMs, options_.max_frame_bytes));
  if (hello.type != static_cast<int32_t>(RemoteMessageType::kHello)) {
    return Status::IOError("worker: expected Hello, got frame type " +
                           std::to_string(hello.type));
  }
  CHARLES_ASSIGN_OR_RETURN(RemoteVersionRange peer,
                           ParseVersionRange(hello.payload));
  int32_t lo = std::max(peer.min, options_.version_min);
  int32_t hi = std::min(peer.max, options_.version_max);
  if (lo > hi) {
    // Disjoint ranges: refuse, orderly. The coordinator excludes this worker
    // permanently; a corrupted merge is never on the table.
    CHARLES_RETURN_NOT_OK(
        Reply(fd, RemoteMessageType::kHelloReject,
              SerializeVersionRange(options_.version_min, options_.version_max)));
    return Status::OK();
  }
  CHARLES_RETURN_NOT_OK(
      Reply(fd, RemoteMessageType::kHelloOk, SerializeChosenVersion(hi)));

  // Request loop. The coordinator holds the connection open for a whole run
  // with idle gaps between phases, so reads block without a deadline; the
  // connection ends when the peer disconnects (any read failure) or sends
  // kShutdown.
  while (true) {
    Result<net::Frame> frame = net::ReadFrame(fd, 0, options_.max_frame_bytes);
    if (!frame.ok()) return Status::OK();  // peer gone — connection is over
    switch (static_cast<RemoteMessageType>(frame->type)) {
      case RemoteMessageType::kPing:
        CHARLES_RETURN_NOT_OK(Reply(fd, RemoteMessageType::kPong, ""));
        break;
      case RemoteMessageType::kInstallInput: {
        Result<std::unique_ptr<InstalledInput>> input = DeserializeInstallInput(
            frame->payload.data(), frame->payload.size());
        if (!input.ok()) {
          CHARLES_RETURN_NOT_OK(ReplyError(fd, input.status()));
          break;
        }
        installed_ = std::move(input).ValueUnsafe();
        std::string ok_payload;
        wire::AppendScalar(&ok_payload, installed_->epoch);
        CHARLES_RETURN_NOT_OK(
            Reply(fd, RemoteMessageType::kInstallOk, ok_payload));
        break;
      }
      case RemoteMessageType::kExecuteTask: {
        Result<RemoteTaskRequest> request =
            ParseExecuteRequest(frame->payload.data(), frame->payload.size());
        if (!request.ok()) {
          CHARLES_RETURN_NOT_OK(ReplyError(fd, request.status()));
          break;
        }
        if (installed_ == nullptr || installed_->epoch != request->epoch) {
          CHARLES_RETURN_NOT_OK(ReplyError(
              fd, Status::Internal(
                      "worker: task expects input epoch " +
                      std::to_string(request->epoch) + " but " +
                      (installed_ == nullptr
                           ? std::string("no input is installed")
                           : "epoch " + std::to_string(installed_->epoch) +
                                 " is installed") +
                      " — coordinator must reinstall")));
          break;
        }
        if (options_.task_hook) options_.task_hook(request->shard);
        // The run id rides every v3 request; the guard macro means a
        // suppressed level formats nothing (per-task hot path).
        CHARLES_VLOG(Debug) << "worker: run " << obs::FormatRunId(request->run_id)
                            << " task " << ShardTaskKindName(request->task.kind)
                            << " shard " << request->shard << " epoch "
                            << request->epoch;
        // Traced requests record the kernel execution as spans against a
        // task-local recorder and ship them back in the composite reply.
        // Timestamps are rebased to the task span's start before
        // serialization: the coordinator's steady clock shares no epoch with
        // ours, so the wire carries only durations and relative offsets.
        obs::TraceRecorder task_recorder(request->run_id);
        obs::TraceRecorder* recorder =
            request->traced ? &task_recorder : nullptr;
        ShardInput view = installed_->View();
        Result<ShardTaskResult> result = [&]() -> Result<ShardTaskResult> {
          obs::RunIdScope run_scope(request->run_id);
          obs::Span task_span(recorder, "worker:task");
          if (task_span.active()) {
            task_span.Annotate("shard", std::to_string(request->shard));
            task_span.Annotate("kind", ShardTaskKindName(request->task.kind));
          }
          return ExecuteShardTaskKernel(view, installed_->plan, request->shard,
                                        request->task);
        }();
        if (!result.ok()) {
          CHARLES_RETURN_NOT_OK(ReplyError(fd, result.status()));
          break;
        }
        std::string wire_result;
        if (request->traced) {
          std::vector<obs::SpanRecord> spans = task_recorder.Snapshot();
          const int64_t origin =
              spans.empty() ? 0 : spans.front().start_ns;
          for (obs::SpanRecord& span : spans) span.start_ns -= origin;
          SerializeTracedTaskResult(*result, spans, &wire_result);
        } else {
          result->SerializeTo(&wire_result);
        }
        CHARLES_RETURN_NOT_OK(
            Reply(fd, RemoteMessageType::kTaskOk, wire_result));
        break;
      }
      case RemoteMessageType::kShutdown:
        shutdown_requested_.store(true);
        CHARLES_RETURN_NOT_OK(Reply(fd, RemoteMessageType::kShutdownOk, ""));
        return Status::OK();
      default:
        return Status::IOError("worker: unexpected frame type " +
                               std::to_string(frame->type));
    }
  }
}

Status WorkerService::Serve(net::TcpListener& listener,
                            const std::atomic<bool>* stop) {
  while (!(stop != nullptr && stop->load()) && !shutdown_requested_.load()) {
    CHARLES_ASSIGN_OR_RETURN(int fd, listener.AcceptWithTimeout(100));
    if (fd < 0) continue;  // poll tick: re-check the stop flag
    // Per-connection failures (torn streams, protocol violations) end that
    // connection only; the daemon keeps accepting.
    ServeConnection(fd);
    net::CloseFd(fd);
  }
  return Status::OK();
}

Result<std::unique_ptr<LoopbackWorker>> LoopbackWorker::Start(
    WorkerServiceOptions options, int port) {
  std::unique_ptr<LoopbackWorker> worker(
      new LoopbackWorker(std::move(options)));
  CHARLES_ASSIGN_OR_RETURN(worker->listener_,
                           net::TcpListener::Bind("127.0.0.1", port));
  LoopbackWorker* raw = worker.get();
  worker->thread_ = std::thread(
      [raw]() { raw->service_.Serve(raw->listener_, &raw->stop_); });
  return worker;
}

void LoopbackWorker::Stop() {
  if (thread_.joinable()) {
    stop_.store(true);
    thread_.join();
  }
  listener_.Close();
}

}  // namespace charles
