#ifndef CHARLES_DISTRIBUTED_REMOTE_BACKEND_H_
#define CHARLES_DISTRIBUTED_REMOTE_BACKEND_H_

/// \file
/// \brief ShardBackend over TCP: tasks run on charles_worker daemons.
///
/// RemoteBackend implements the same seam InProcessBackend and
/// SubprocessBackend plug into, so the coordinator's fan-out/merge logic is
/// untouched — only *where* the kernel runs changes. Determinism is
/// preserved end to end: the ShardInput ships once per (snapshot, plan)
/// epoch as an exact native-endian bundle, tasks and results reuse the
/// CTK1/CST1 wire formats bit-for-bit, and the coordinator's merge stays
/// block-ordered — so a remote run is bit-identical to an in-process run at
/// every shard count, even when a worker dies mid-shard and its task is
/// re-executed elsewhere (the kernel is deterministic, so the retried
/// shard's bytes are the same bytes).
///
/// Fault model: any transport failure (connect refusal, deadline, torn
/// stream, malformed reply) marks the worker unhealthy and reassigns the
/// task to another worker with bounded exponential backoff. A worker that
/// *deterministically* fails the task (kTaskError) propagates the error
/// without retry — rerunning a deterministic failure elsewhere would only
/// repeat it. A worker with no common wire version is excluded permanently
/// at handshake.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "distributed/backend.h"
#include "distributed/remote_counters.h"
#include "distributed/worker_registry.h"
#include "net/socket.h"

namespace charles {

struct RemoteBackendOptions {
  /// Worker addresses, "host:port" each.
  std::vector<std::string> endpoints;
  /// Deadline for connect + handshake and for health probes.
  int connect_timeout_ms = 2'000;
  /// Deadline for one install or task round trip (0 = no deadline). Installs
  /// and shard sweeps scale with data size, so this is the knob to raise for
  /// big snapshots.
  int task_timeout_ms = 30'000;
  /// Transport-failure retries per task beyond the first attempt. Each retry
  /// reassigns to another healthy worker when one exists.
  int max_task_retries = 2;
  /// Base of the exponential backoff between retries (base × 2^attempt,
  /// capped at 10×base).
  int retry_backoff_ms = 50;
  /// Period of the background health sweep; <= 0 disables it (unhealthy
  /// workers are then only re-probed when the fleet runs dry).
  int health_check_interval_ms = 0;
  /// Upper bound on any received frame payload.
  int64_t max_frame_bytes = 0;  // 0 → kRemoteMaxFrameBytes
};

/// Aggregate dispatch diagnostics of one backend instance.
struct RemoteBackendDiagnostics {
  int64_t tasks_dispatched = 0;   ///< ExecuteTask calls served
  int64_t task_retries = 0;       ///< transport-failure reassignments
  int64_t input_installs = 0;     ///< install bundles shipped (Σ workers)
  int64_t input_epochs = 0;       ///< distinct (snapshot, plan) epochs seen
  std::vector<RemoteWorkerCounters> workers;
};

/// \brief The networked ShardBackend.
///
/// Thread-safe for concurrent ExecuteTask calls on distinct shards (the
/// coordinator fans out over the run's pool); each worker serves one request
/// at a time, serialized by its session mutex.
///
/// Input identity: the backend assumes the data behind a ShardInput's
/// pointers is immutable for the backend's lifetime (the ShardBackend
/// contract), and keys install epochs on the pointer tuple + leaf pointers +
/// plan shape. Engine runs construct one backend per run, where phases 1 and
/// 3 legitimately share column/target storage — giving exactly one install
/// per phase per worker.
class RemoteBackend : public ShardBackend {
 public:
  /// Validates and parses endpoints. Fails on an empty endpoint list or an
  /// unparseable "host:port". Does not dial anyone yet — connections are
  /// established lazily on first dispatch.
  static Result<std::unique_ptr<RemoteBackend>> Create(
      RemoteBackendOptions options);

  ~RemoteBackend() override;

  std::string name() const override { return "remote"; }

  Result<ShardTaskResult> ExecuteTask(const ShardInput& input,
                                      const ShardPlan& plan,
                                      int64_t shard_index,
                                      const ShardTask& task) override;

  /// Point-in-time dispatch counters (run_pipeline folds these into the
  /// result SummaryList).
  RemoteBackendDiagnostics Diagnostics() const;

  /// The registry, for tests that inject health transitions.
  WorkerRegistry& registry() { return registry_; }

 private:
  /// What one (snapshot, plan) identity serialized to.
  struct InstallBundle {
    int64_t epoch = 0;
    std::shared_ptr<const std::string> payload;
  };

  RemoteBackend(RemoteBackendOptions options,
                std::vector<net::Endpoint> endpoints);

  /// Returns the current epoch's bundle, serializing a new epoch when the
  /// input identity changed. Guarded by input_mu_.
  Result<InstallBundle> EnsureInstallBundle(const ShardInput& input,
                                            const ShardPlan& plan);

  /// One attempt on one worker: connect/handshake if needed, install if the
  /// session's epoch is stale, send the task, read the reply. On a transport
  /// failure sets *transport_failure, closes the session connection and
  /// marks the worker unhealthy. A kTaskError reply comes back as its
  /// decoded status with *transport_failure = false.
  Result<ShardTaskResult> TryExecuteOn(WorkerSession* session,
                                       const InstallBundle& bundle,
                                       int64_t shard_index,
                                       const ShardTask& task,
                                       bool* transport_failure);

  const RemoteBackendOptions options_;
  const int64_t max_frame_bytes_;
  WorkerRegistry registry_;

  /// \name Install-bundle state, guarded by input_mu_.
  /// @{
  mutable std::mutex input_mu_;
  const void* key_shortlist_ = nullptr;
  const void* key_columns_ = nullptr;
  const void* key_y_old_ = nullptr;
  const void* key_y_new_ = nullptr;
  std::vector<const RowSet*> key_leaves_;
  int64_t key_num_rows_ = -1;
  int64_t key_block_rows_ = -1;
  int64_t key_num_shards_ = -1;
  InstallBundle bundle_;
  /// @}

  std::atomic<int64_t> tasks_dispatched_{0};
  std::atomic<int64_t> task_retries_{0};
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_REMOTE_BACKEND_H_
