#include "distributed/backend.h"

#include <chrono>
#include <cmath>
#include <cstring>

#include "common/wire.h"
#include "distributed/shard_planner.h"

namespace charles {

namespace {

/// Wire framing: magic + version first, so a foreign or torn stream fails
/// loudly instead of deserializing garbage moments.
constexpr char kMagic[4] = {'C', 'S', 'R', '1'};

using wire::AppendRaw;
using wire::ReadRaw;

}  // namespace

void ShardResult::SerializeTo(std::string* out) const {
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendRaw(out, &shard, sizeof(shard));
  AppendRaw(out, &rows_scanned, sizeof(rows_scanned));
  AppendRaw(out, &blocks_emitted, sizeof(blocks_emitted));
  AppendRaw(out, &elapsed_seconds, sizeof(elapsed_seconds));
  int64_t num_leaves = static_cast<int64_t>(leaves.size());
  AppendRaw(out, &num_leaves, sizeof(num_leaves));
  for (const LeafShardStats& leaf : leaves) {
    AppendRaw(out, &leaf.leaf, sizeof(leaf.leaf));
    AppendRaw(out, &leaf.max_abs_delta, sizeof(leaf.max_abs_delta));
    int64_t num_blocks = static_cast<int64_t>(leaf.blocks.size());
    AppendRaw(out, &num_blocks, sizeof(num_blocks));
    for (const auto& [block, stats] : leaf.blocks) {
      AppendRaw(out, &block, sizeof(block));
      stats.SerializeTo(out);
    }
  }
}

Result<ShardResult> ShardResult::Deserialize(const void* data, size_t size) {
  const unsigned char* at = static_cast<const unsigned char*>(data);
  const unsigned char* end = at + size;
  char magic[4];
  if (!ReadRaw(&at, end, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("ShardResult::Deserialize: bad magic");
  }
  ShardResult result;
  int64_t num_leaves = 0;
  bool ok = ReadRaw(&at, end, &result.shard, sizeof(result.shard)) &&
            ReadRaw(&at, end, &result.rows_scanned, sizeof(result.rows_scanned)) &&
            ReadRaw(&at, end, &result.blocks_emitted,
                    sizeof(result.blocks_emitted)) &&
            ReadRaw(&at, end, &result.elapsed_seconds,
                    sizeof(result.elapsed_seconds)) &&
            ReadRaw(&at, end, &num_leaves, sizeof(num_leaves));
  // Length fields are bounded by the bytes present before any reserve():
  // a corrupt count must fail with IOError, not a giant allocation. Every
  // leaf entry occupies at least 3 int64-sized fields; every block at
  // least its index plus a serialized stats header.
  constexpr int64_t kMinLeafBytes = 3 * static_cast<int64_t>(sizeof(int64_t));
  constexpr int64_t kMinBlockBytes = 5 * static_cast<int64_t>(sizeof(int64_t));
  if (!ok || num_leaves < 0 || result.rows_scanned < 0 ||
      num_leaves > (end - at) / kMinLeafBytes) {
    return Status::IOError("ShardResult::Deserialize: truncated header");
  }
  result.leaves.reserve(static_cast<size_t>(num_leaves));
  for (int64_t l = 0; l < num_leaves; ++l) {
    LeafShardStats leaf;
    int64_t num_blocks = 0;
    if (!ReadRaw(&at, end, &leaf.leaf, sizeof(leaf.leaf)) ||
        !ReadRaw(&at, end, &leaf.max_abs_delta, sizeof(leaf.max_abs_delta)) ||
        !ReadRaw(&at, end, &num_blocks, sizeof(num_blocks)) || num_blocks < 0 ||
        num_blocks > (end - at) / kMinBlockBytes) {
      return Status::IOError("ShardResult::Deserialize: truncated leaf entry");
    }
    leaf.blocks.reserve(static_cast<size_t>(num_blocks));
    for (int64_t b = 0; b < num_blocks; ++b) {
      int64_t block = 0;
      if (!ReadRaw(&at, end, &block, sizeof(block))) {
        return Status::IOError("ShardResult::Deserialize: truncated block");
      }
      CHARLES_ASSIGN_OR_RETURN(SufficientStats stats,
                               SufficientStats::Deserialize(&at, end));
      leaf.blocks.emplace_back(block, std::move(stats));
    }
    result.leaves.push_back(std::move(leaf));
  }
  if (at != end) {
    return Status::IOError("ShardResult::Deserialize: trailing bytes");
  }
  return result;
}

Result<ShardResult> ExecuteShardKernel(const ShardInput& input, const ShardPlan& plan,
                                       int64_t shard_index) {
  if (shard_index < 0 || shard_index >= plan.num_shards()) {
    return Status::OutOfRange("ExecuteShardKernel: shard " +
                              std::to_string(shard_index) + " of " +
                              std::to_string(plan.num_shards()));
  }
  if (input.shortlist == nullptr || input.columns == nullptr ||
      input.y_old == nullptr || input.y_new == nullptr) {
    return Status::InvalidArgument("ExecuteShardKernel: incomplete shard input");
  }
  std::vector<const std::vector<double>*> columns;
  if (!input.columns->ResolveColumns(*input.shortlist, &columns)) {
    return Status::InvalidArgument(
        "ExecuteShardKernel: column cache does not cover the shortlist");
  }
  auto start = std::chrono::steady_clock::now();
  const ShardRange& range = plan.shards[static_cast<size_t>(shard_index)];
  ShardResult result;
  result.shard = shard_index;
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    const RowSet& rows = *input.leaves[l];
    auto [lo, hi] = rows.PositionsInRange(range.row_begin, range.row_end);
    if (lo == hi) continue;
    LeafShardStats leaf;
    leaf.leaf = static_cast<int64_t>(l);
    const int64_t* slice = rows.indices().data() + lo;
    for (int64_t r = 0; r < hi - lo; ++r) {
      size_t row = static_cast<size_t>(slice[r]);
      double delta = std::abs((*input.y_new)[row] - (*input.y_old)[row]);
      if (delta > leaf.max_abs_delta) leaf.max_abs_delta = delta;
    }
    ForEachRowBlock(slice, hi - lo, plan.block_rows,
                    [&](int64_t block, const int64_t* block_rows_ptr, int64_t count) {
                      leaf.blocks.emplace_back(
                          block, AccumulateRows(columns, *input.y_new,
                                                block_rows_ptr, count));
                    });
    result.rows_scanned += hi - lo;
    result.blocks_emitted += static_cast<int64_t>(leaf.blocks.size());
    result.leaves.push_back(std::move(leaf));
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace charles
