#include "distributed/backend.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/wire.h"
#include "distributed/shard_planner.h"
#include "linalg/batch_fold.h"
#include "linalg/kernels/block_stage.h"
#include "linalg/kernels/kernel.h"

namespace charles {

namespace {

/// Wire framing: magic + version first, so a foreign or torn stream fails
/// loudly instead of deserializing garbage moments. "CSR1" is the legacy
/// leaf-moments result; "CTK1"/"CST1" frame the tagged task protocol.
constexpr char kMagic[4] = {'C', 'S', 'R', '1'};
constexpr char kTaskMagic[4] = {'C', 'T', 'K', '1'};
constexpr char kTaskResultMagic[4] = {'C', 'S', 'T', '1'};

using wire::AppendRaw;
using wire::AppendScalar;
using wire::AppendVector;
using wire::ReadRaw;
using wire::ReadScalar;
using wire::ReadVector;

bool ValidTaskKind(int64_t kind) {
  return kind == static_cast<int64_t>(ShardTaskKind::kLeafMoments) ||
         kind == static_cast<int64_t>(ShardTaskKind::kSignalStats) ||
         kind == static_cast<int64_t>(ShardTaskKind::kErrorPartials) ||
         kind == static_cast<int64_t>(ShardTaskKind::kScorePartials);
}

void SerializeLeafShardStats(std::string* out, const LeafShardStats& leaf) {
  AppendScalar(out, leaf.leaf);
  AppendScalar(out, leaf.max_abs_delta);
  int64_t num_blocks = static_cast<int64_t>(leaf.blocks.size());
  AppendScalar(out, num_blocks);
  for (const auto& [block, stats] : leaf.blocks) {
    AppendScalar(out, block);
    stats.SerializeTo(out);
  }
}

/// Minimum plausible serialized sizes, used to bound corrupt length fields
/// *before* any reserve() sized from them.
constexpr int64_t kMinLeafBytes = 3 * static_cast<int64_t>(sizeof(int64_t));
constexpr int64_t kMinBlockBytes = 5 * static_cast<int64_t>(sizeof(int64_t));

Status ReadLeafShardStats(const unsigned char** at, const unsigned char* end,
                          LeafShardStats* leaf) {
  int64_t num_blocks = 0;
  if (!ReadScalar(at, end, &leaf->leaf) ||
      !ReadScalar(at, end, &leaf->max_abs_delta) ||
      !ReadScalar(at, end, &num_blocks) || num_blocks < 0 ||
      num_blocks > (end - *at) / kMinBlockBytes) {
    return Status::IOError("ShardTaskResult: truncated leaf entry");
  }
  leaf->blocks.reserve(static_cast<size_t>(num_blocks));
  for (int64_t b = 0; b < num_blocks; ++b) {
    int64_t block = 0;
    if (!ReadScalar(at, end, &block)) {
      return Status::IOError("ShardTaskResult: truncated block");
    }
    CHARLES_ASSIGN_OR_RETURN(SufficientStats stats,
                             SufficientStats::Deserialize(at, end));
    leaf->blocks.emplace_back(block, std::move(stats));
  }
  return Status::OK();
}

}  // namespace

std::string ShardTaskKindName(ShardTaskKind kind) {
  switch (kind) {
    case ShardTaskKind::kLeafMoments:
      return "leaf-moments";
    case ShardTaskKind::kSignalStats:
      return "signal-stats";
    case ShardTaskKind::kErrorPartials:
      return "error-partials";
    case ShardTaskKind::kScorePartials:
      return "score-partials";
  }
  return "unknown";
}

void ShardTask::SerializeTo(std::string* out) const {
  AppendRaw(out, kTaskMagic, sizeof(kTaskMagic));
  AppendScalar(out, static_cast<int64_t>(kind));
  AppendVector(out, leaves);
  int64_t num_probes = static_cast<int64_t>(probes.size());
  AppendScalar(out, num_probes);
  for (const ErrorProbe& probe : probes) {
    AppendScalar(out, probe.leaf);
    AppendScalar(out, probe.intercept);
    AppendVector(out, probe.features);
    AppendVector(out, probe.coefficients);
  }
  // Trailing, unconditional (wire v4): the score-fold exactness band.
  AppendScalar(out, score_tolerance);
}

Result<ShardTask> ShardTask::Deserialize(const void* data, size_t size) {
  const unsigned char* at = static_cast<const unsigned char*>(data);
  const unsigned char* end = at + size;
  char magic[4];
  if (!ReadRaw(&at, end, magic, sizeof(magic)) ||
      std::memcmp(magic, kTaskMagic, sizeof(kTaskMagic)) != 0) {
    return Status::IOError("ShardTask::Deserialize: bad magic");
  }
  ShardTask task;
  int64_t kind = 0;
  int64_t num_probes = 0;
  if (!ReadScalar(&at, end, &kind) || !ValidTaskKind(kind) ||
      !ReadVector(&at, end, &task.leaves) ||
      !ReadScalar(&at, end, &num_probes) || num_probes < 0 ||
      num_probes > (end - at) / kMinLeafBytes) {
    return Status::IOError("ShardTask::Deserialize: truncated header");
  }
  task.kind = static_cast<ShardTaskKind>(kind);
  task.probes.reserve(static_cast<size_t>(num_probes));
  for (int64_t p = 0; p < num_probes; ++p) {
    ErrorProbe probe;
    if (!ReadScalar(&at, end, &probe.leaf) ||
        !ReadScalar(&at, end, &probe.intercept) ||
        !ReadVector(&at, end, &probe.features) ||
        !ReadVector(&at, end, &probe.coefficients)) {
      return Status::IOError("ShardTask::Deserialize: truncated probe");
    }
    task.probes.push_back(std::move(probe));
  }
  if (!ReadScalar(&at, end, &task.score_tolerance)) {
    return Status::IOError("ShardTask::Deserialize: truncated score tolerance");
  }
  if (at != end) {
    return Status::IOError("ShardTask::Deserialize: trailing bytes");
  }
  return task;
}

void ShardTaskResult::SerializeTo(std::string* out) const {
  AppendRaw(out, kTaskResultMagic, sizeof(kTaskResultMagic));
  AppendScalar(out, static_cast<int64_t>(kind));
  AppendScalar(out, shard);
  AppendScalar(out, rows_scanned);
  AppendScalar(out, blocks_emitted);
  AppendScalar(out, elapsed_seconds);
  int64_t num_leaves = static_cast<int64_t>(leaves.size());
  AppendScalar(out, num_leaves);
  for (const LeafShardStats& leaf : leaves) SerializeLeafShardStats(out, leaf);
  int64_t num_signal_blocks = static_cast<int64_t>(signal_blocks.size());
  AppendScalar(out, num_signal_blocks);
  for (const auto& [block, stats] : signal_blocks) {
    AppendScalar(out, block);
    stats.SerializeTo(out);
  }
  AppendScalar(out, signal_max_abs_delta);
  AppendScalar(out, signal_rows_changed);
  int64_t num_probes = static_cast<int64_t>(probes.size());
  AppendScalar(out, num_probes);
  for (const ProbeShardErrors& probe : probes) {
    AppendScalar(out, probe.probe);
    int64_t num_blocks = static_cast<int64_t>(probe.blocks.size());
    AppendScalar(out, num_blocks);
    for (const auto& [block, partials] : probe.blocks) {
      AppendScalar(out, block);
      partials.SerializeTo(out);
    }
  }
  AppendScalar(out, batch_blocks_staged);
  AppendScalar(out, batch_accumulators_folded);
  AppendScalar(out, batch_max_accumulators_per_block);
  // Trailing, unconditional (wire v4): the kScorePartials payload.
  int64_t num_score_probes = static_cast<int64_t>(score_probes.size());
  AppendScalar(out, num_score_probes);
  for (const ProbeShardScores& probe : score_probes) {
    AppendScalar(out, probe.probe);
    int64_t num_blocks = static_cast<int64_t>(probe.blocks.size());
    AppendScalar(out, num_blocks);
    for (const auto& [block, partials] : probe.blocks) {
      AppendScalar(out, block);
      partials.SerializeTo(out);
    }
  }
}

Result<ShardTaskResult> ShardTaskResult::Deserialize(const void* data,
                                                     size_t size) {
  const unsigned char* at = static_cast<const unsigned char*>(data);
  const unsigned char* end = at + size;
  char magic[4];
  if (!ReadRaw(&at, end, magic, sizeof(magic)) ||
      std::memcmp(magic, kTaskResultMagic, sizeof(kTaskResultMagic)) != 0) {
    return Status::IOError("ShardTaskResult::Deserialize: bad magic");
  }
  ShardTaskResult result;
  int64_t kind = 0;
  int64_t num_leaves = 0;
  bool ok = ReadScalar(&at, end, &kind) && ValidTaskKind(kind) &&
            ReadScalar(&at, end, &result.shard) &&
            ReadScalar(&at, end, &result.rows_scanned) &&
            ReadScalar(&at, end, &result.blocks_emitted) &&
            ReadScalar(&at, end, &result.elapsed_seconds) &&
            ReadScalar(&at, end, &num_leaves);
  if (!ok || result.rows_scanned < 0 || num_leaves < 0 ||
      num_leaves > (end - at) / kMinLeafBytes) {
    return Status::IOError("ShardTaskResult::Deserialize: truncated header");
  }
  result.kind = static_cast<ShardTaskKind>(kind);
  result.leaves.reserve(static_cast<size_t>(num_leaves));
  for (int64_t l = 0; l < num_leaves; ++l) {
    LeafShardStats leaf;
    CHARLES_RETURN_NOT_OK(ReadLeafShardStats(&at, end, &leaf));
    result.leaves.push_back(std::move(leaf));
  }
  int64_t num_signal_blocks = 0;
  if (!ReadScalar(&at, end, &num_signal_blocks) || num_signal_blocks < 0 ||
      num_signal_blocks > (end - at) / kMinBlockBytes) {
    return Status::IOError("ShardTaskResult::Deserialize: truncated signal header");
  }
  result.signal_blocks.reserve(static_cast<size_t>(num_signal_blocks));
  for (int64_t b = 0; b < num_signal_blocks; ++b) {
    int64_t block = 0;
    if (!ReadScalar(&at, end, &block)) {
      return Status::IOError("ShardTaskResult::Deserialize: truncated signal block");
    }
    CHARLES_ASSIGN_OR_RETURN(SufficientStats stats,
                             SufficientStats::Deserialize(&at, end));
    result.signal_blocks.emplace_back(block, std::move(stats));
  }
  int64_t num_probes = 0;
  if (!ReadScalar(&at, end, &result.signal_max_abs_delta) ||
      !ReadScalar(&at, end, &result.signal_rows_changed) ||
      !ReadScalar(&at, end, &num_probes) || num_probes < 0 ||
      num_probes > (end - at) / (2 * static_cast<int64_t>(sizeof(int64_t)))) {
    return Status::IOError("ShardTaskResult::Deserialize: truncated probe header");
  }
  result.probes.reserve(static_cast<size_t>(num_probes));
  for (int64_t p = 0; p < num_probes; ++p) {
    ProbeShardErrors probe;
    int64_t num_blocks = 0;
    if (!ReadScalar(&at, end, &probe.probe) ||
        !ReadScalar(&at, end, &num_blocks) || num_blocks < 0 ||
        num_blocks > (end - at) / (3 * static_cast<int64_t>(sizeof(int64_t)))) {
      return Status::IOError("ShardTaskResult::Deserialize: truncated probe entry");
    }
    probe.blocks.reserve(static_cast<size_t>(num_blocks));
    for (int64_t b = 0; b < num_blocks; ++b) {
      int64_t block = 0;
      if (!ReadScalar(&at, end, &block)) {
        return Status::IOError("ShardTaskResult::Deserialize: truncated probe block");
      }
      CHARLES_ASSIGN_OR_RETURN(ErrorPartials partials,
                               ErrorPartials::Deserialize(&at, end));
      probe.blocks.emplace_back(block, partials);
    }
    result.probes.push_back(std::move(probe));
  }
  if (!ReadScalar(&at, end, &result.batch_blocks_staged) ||
      !ReadScalar(&at, end, &result.batch_accumulators_folded) ||
      !ReadScalar(&at, end, &result.batch_max_accumulators_per_block) ||
      result.batch_blocks_staged < 0 || result.batch_accumulators_folded < 0 ||
      result.batch_max_accumulators_per_block < 0) {
    return Status::IOError("ShardTaskResult::Deserialize: truncated batch counters");
  }
  int64_t num_score_probes = 0;
  if (!ReadScalar(&at, end, &num_score_probes) || num_score_probes < 0 ||
      num_score_probes > (end - at) / (2 * static_cast<int64_t>(sizeof(int64_t)))) {
    return Status::IOError(
        "ShardTaskResult::Deserialize: truncated score probe header");
  }
  result.score_probes.reserve(static_cast<size_t>(num_score_probes));
  for (int64_t p = 0; p < num_score_probes; ++p) {
    ProbeShardScores probe;
    int64_t num_blocks = 0;
    if (!ReadScalar(&at, end, &probe.probe) ||
        !ReadScalar(&at, end, &num_blocks) || num_blocks < 0 ||
        num_blocks > (end - at) / (4 * static_cast<int64_t>(sizeof(int64_t)))) {
      return Status::IOError(
          "ShardTaskResult::Deserialize: truncated score probe entry");
    }
    probe.blocks.reserve(static_cast<size_t>(num_blocks));
    for (int64_t b = 0; b < num_blocks; ++b) {
      int64_t block = 0;
      if (!ReadScalar(&at, end, &block)) {
        return Status::IOError(
            "ShardTaskResult::Deserialize: truncated score probe block");
      }
      CHARLES_ASSIGN_OR_RETURN(ScorePartials partials,
                               ScorePartials::Deserialize(&at, end));
      probe.blocks.emplace_back(block, partials);
    }
    result.score_probes.push_back(std::move(probe));
  }
  if (at != end) {
    return Status::IOError("ShardTaskResult::Deserialize: trailing bytes");
  }
  return result;
}

namespace {

/// kLeafMoments: the original sweep — per-(leaf, block) moments in row
/// order, plus the folded snap evidence, for every requested leaf.
void RunLeafMoments(const ShardInput& input, const ShardRange& range,
                    int64_t block_rows,
                    const std::vector<const std::vector<double>*>& columns,
                    const ShardTask& task, ShardTaskResult* result) {
  for (int64_t leaf_index : task.leaves) {
    const RowSet& rows = *input.leaves[static_cast<size_t>(leaf_index)];
    auto [lo, hi] = rows.PositionsInRange(range.row_begin, range.row_end);
    if (lo == hi) continue;
    LeafShardStats leaf;
    leaf.leaf = leaf_index;
    const int64_t* slice = rows.indices().data() + lo;
    for (int64_t r = 0; r < hi - lo; ++r) {
      size_t row = static_cast<size_t>(slice[r]);
      double delta = std::abs((*input.y_new)[row] - (*input.y_old)[row]);
      if (delta > leaf.max_abs_delta) leaf.max_abs_delta = delta;
    }
    ForEachRowBlock(slice, hi - lo, block_rows,
                    [&](int64_t block, const int64_t* block_rows_ptr, int64_t count) {
                      leaf.blocks.emplace_back(
                          block, AccumulateRows(columns, *input.y_new,
                                                block_rows_ptr, count));
                    });
    result->rows_scanned += hi - lo;
    result->blocks_emitted += static_cast<int64_t>(leaf.blocks.size());
    result->leaves.push_back(std::move(leaf));
  }
}

/// Folds one sweep's batch counters into the task result's diagnostics.
void FoldBatchCounters(const kernels::BatchFoldCounters& counters,
                       ShardTaskResult* result) {
  result->batch_blocks_staged += counters.blocks_staged;
  result->batch_accumulators_folded += counters.accumulators_folded;
  if (counters.max_accumulators_per_block >
      result->batch_max_accumulators_per_block) {
    result->batch_max_accumulators_per_block =
        counters.max_accumulators_per_block;
  }
}

/// kLeafMoments, batched: the same upfront per-leaf intersection and snap
/// evidence as RunLeafMoments, then one block-major staged sweep
/// (linalg/batch_fold.h) in place of the per-leaf column walks. Each leaf's
/// blocks arrive in ascending block order with bit-identical partials, so
/// the payload is byte-for-byte the per-leaf path's.
void RunLeafMomentsBatched(const ShardInput& input, const ShardRange& range,
                           int64_t block_rows,
                           const std::vector<const std::vector<double>*>& columns,
                           const ShardTask& task, ShardTaskResult* result) {
  std::vector<kernels::BatchLeafRequest> requests;
  requests.reserve(task.leaves.size());
  for (int64_t leaf_index : task.leaves) {
    const RowSet& rows = *input.leaves[static_cast<size_t>(leaf_index)];
    auto [lo, hi] = rows.PositionsInRange(range.row_begin, range.row_end);
    if (lo == hi) continue;
    LeafShardStats leaf;
    leaf.leaf = leaf_index;
    const int64_t* slice = rows.indices().data() + lo;
    for (int64_t r = 0; r < hi - lo; ++r) {
      size_t row = static_cast<size_t>(slice[r]);
      double delta = std::abs((*input.y_new)[row] - (*input.y_old)[row]);
      if (delta > leaf.max_abs_delta) leaf.max_abs_delta = delta;
    }
    kernels::BatchLeafRequest request;
    request.rows = slice;
    request.count = hi - lo;
    requests.push_back(request);
    result->rows_scanned += hi - lo;
    result->leaves.push_back(std::move(leaf));
  }
  kernels::BatchFoldCounters counters;
  kernels::BatchFoldLeafMoments(
      kernels::ActiveKernel(), columns, *input.y_new, requests,
      range.row_begin, range.row_end, block_rows,
      &kernels::BlockStager::ThreadLocal(), &counters,
      [&](int64_t ordinal, int64_t block, SufficientStats&& stats) {
        result->leaves[static_cast<size_t>(ordinal)].blocks.emplace_back(
            block, std::move(stats));
      });
  for (const LeafShardStats& leaf : result->leaves) {
    result->blocks_emitted += static_cast<int64_t>(leaf.blocks.size());
  }
  FoldBatchCounters(counters, result);
}

/// kSignalStats: per-block shortlist moments over every row of the range —
/// the same per-block partials AccumulateRangeBlocks produces centrally —
/// plus the exactly-associative delta evidence.
void RunSignalStats(const ShardInput& input, const ShardRange& range,
                    int64_t block_rows,
                    const std::vector<const std::vector<double>*>& columns,
                    ShardTaskResult* result) {
  // Per-block partials through the same AccumulateRows fold every other
  // stats producer uses, over the block's identity index run — so the
  // merged moments equal AccumulateRangeBlocks' central output bit-for-bit.
  // The scratch buffer is bounded by the rows actually present: a one-block
  // configuration (stats_block_rows ≫ table size) is legal and must not
  // allocate by the configured block size.
  std::vector<int64_t> block_index(
      static_cast<size_t>(std::min(block_rows, range.num_rows())));
  for (int64_t begin = range.row_begin; begin < range.row_end;
       begin += block_rows) {
    int64_t end = std::min(begin + block_rows, range.row_end);
    int64_t count = end - begin;
    for (int64_t i = 0; i < count; ++i) block_index[static_cast<size_t>(i)] = begin + i;
    result->signal_blocks.emplace_back(
        begin / block_rows,
        AccumulateRows(columns, *input.y_new, block_index.data(), count));
    for (int64_t row = begin; row < end; ++row) {
      size_t r = static_cast<size_t>(row);
      double delta = std::abs((*input.y_new)[r] - (*input.y_old)[r]);
      if (delta > result->signal_max_abs_delta) {
        result->signal_max_abs_delta = delta;
      }
      if (delta > 0.0) ++result->signal_rows_changed;
    }
  }
  result->rows_scanned += range.num_rows();
  result->blocks_emitted += static_cast<int64_t>(result->signal_blocks.size());
}

/// kSignalStats, batched (batch_fold = "on" only — a single accumulator
/// gains nothing under "auto"): one contiguous request over the range,
/// staged block by block. Contiguous staging replays the identical
/// arithmetic as the identity-index scratch fold above (the range and
/// indexed folds are bit-identical by the kernel contract), so the payload
/// is unchanged.
void RunSignalStatsBatched(const ShardInput& input, const ShardRange& range,
                           int64_t block_rows,
                           const std::vector<const std::vector<double>*>& columns,
                           ShardTaskResult* result) {
  std::vector<kernels::BatchLeafRequest> requests(1);
  requests[0].rows = nullptr;
  requests[0].count = range.num_rows();
  requests[0].begin = range.row_begin;
  kernels::BatchFoldCounters counters;
  kernels::BatchFoldLeafMoments(
      kernels::ActiveKernel(), columns, *input.y_new, requests,
      range.row_begin, range.row_end, block_rows,
      &kernels::BlockStager::ThreadLocal(), &counters,
      [&](int64_t /*ordinal*/, int64_t block, SufficientStats&& stats) {
        result->signal_blocks.emplace_back(block, std::move(stats));
      });
  for (int64_t row = range.row_begin; row < range.row_end; ++row) {
    size_t r = static_cast<size_t>(row);
    double delta = std::abs((*input.y_new)[r] - (*input.y_old)[r]);
    if (delta > result->signal_max_abs_delta) {
      result->signal_max_abs_delta = delta;
    }
    if (delta > 0.0) ++result->signal_rows_changed;
  }
  result->rows_scanned += range.num_rows();
  result->blocks_emitted += static_cast<int64_t>(result->signal_blocks.size());
  FoldBatchCounters(counters, result);
}

/// kErrorPartials: per-(probe, block) exact L1 partials. Predictions run
/// through the identical ŷ = intercept + Σ cᵢ·xᵢ left-to-right dot product
/// as LinearModel::PredictRow, and |y − ŷ| is summed in row order per block
/// from zero — so the coordinator's block-ordered merge is bit-identical to
/// the central canonical fold (AccumulateAbsDiffBlocks) over the same leaf.
Status RunErrorPartials(const ShardInput& input, const ShardRange& range,
                        int64_t block_rows,
                        const std::vector<const std::vector<double>*>& columns,
                        const ShardTask& task, ShardTaskResult* result) {
  for (size_t p = 0; p < task.probes.size(); ++p) {
    const ErrorProbe& probe = task.probes[p];
    if (probe.leaf < 0 ||
        probe.leaf >= static_cast<int64_t>(input.leaves.size()) ||
        probe.features.size() != probe.coefficients.size()) {
      return Status::InvalidArgument("ExecuteShardTaskKernel: malformed probe " +
                                     std::to_string(p));
    }
    std::vector<const std::vector<double>*> probe_columns;
    probe_columns.reserve(probe.features.size());
    for (int64_t f : probe.features) {
      if (f < 0 || f >= static_cast<int64_t>(columns.size())) {
        return Status::InvalidArgument(
            "ExecuteShardTaskKernel: probe feature out of shortlist range");
      }
      probe_columns.push_back(columns[static_cast<size_t>(f)]);
    }
    const RowSet& rows = *input.leaves[static_cast<size_t>(probe.leaf)];
    auto [lo, hi] = rows.PositionsInRange(range.row_begin, range.row_end);
    if (lo == hi) continue;
    ProbeShardErrors errors;
    errors.probe = static_cast<int64_t>(p);
    const int64_t* slice = rows.indices().data() + lo;
    const kernels::Kernel& kernel = kernels::ActiveKernel();
    ForEachRowBlock(
        slice, hi - lo, block_rows,
        [&](int64_t block, const int64_t* block_rows_ptr, int64_t count) {
          ErrorPartials partials;
          partials.abs_error_sum = kernel.probe_abs_error_sum(
              probe.intercept, probe.coefficients.data(), probe_columns,
              *input.y_new, block_rows_ptr, count);
          partials.n = count;
          errors.blocks.emplace_back(block, partials);
        });
    result->rows_scanned += hi - lo;
    result->blocks_emitted += static_cast<int64_t>(errors.blocks.size());
    result->probes.push_back(std::move(errors));
  }
  return Status::OK();
}

/// kScorePartials: per-(probe, block) exact score partials. The ŷ chain and
/// the Σ|y − ŷ| chain are the identical arithmetic as RunErrorPartials (so
/// the L1 component is bit-identical to an error probe of the same model),
/// with the within-`score_tolerance` count tallied alongside — an integer
/// tally over the same |errors|, exact under any order. No batched variant:
/// a score probe is a single fused pass already; the batch counters stay
/// zero by design.
Status RunScorePartials(const ShardInput& input, const ShardRange& range,
                        int64_t block_rows,
                        const std::vector<const std::vector<double>*>& columns,
                        const ShardTask& task, ShardTaskResult* result) {
  if (!(task.score_tolerance >= 0.0)) {
    return Status::InvalidArgument(
        "ExecuteShardTaskKernel: kScorePartials requires a non-negative "
        "score tolerance");
  }
  for (size_t p = 0; p < task.probes.size(); ++p) {
    const ErrorProbe& probe = task.probes[p];
    if (probe.leaf < 0 ||
        probe.leaf >= static_cast<int64_t>(input.leaves.size()) ||
        probe.features.size() != probe.coefficients.size()) {
      return Status::InvalidArgument("ExecuteShardTaskKernel: malformed probe " +
                                     std::to_string(p));
    }
    std::vector<const std::vector<double>*> probe_columns;
    probe_columns.reserve(probe.features.size());
    for (int64_t f : probe.features) {
      if (f < 0 || f >= static_cast<int64_t>(columns.size())) {
        return Status::InvalidArgument(
            "ExecuteShardTaskKernel: probe feature out of shortlist range");
      }
      probe_columns.push_back(columns[static_cast<size_t>(f)]);
    }
    const RowSet& rows = *input.leaves[static_cast<size_t>(probe.leaf)];
    auto [lo, hi] = rows.PositionsInRange(range.row_begin, range.row_end);
    if (lo == hi) continue;
    ProbeShardScores scores;
    scores.probe = static_cast<int64_t>(p);
    const int64_t* slice = rows.indices().data() + lo;
    const kernels::Kernel& kernel = kernels::ActiveKernel();
    ForEachRowBlock(
        slice, hi - lo, block_rows,
        [&](int64_t block, const int64_t* block_rows_ptr, int64_t count) {
          ScorePartials partials;
          kernel.probe_score_sum(probe.intercept, probe.coefficients.data(),
                                 probe_columns, *input.y_new, block_rows_ptr,
                                 count, task.score_tolerance,
                                 &partials.abs_error_sum,
                                 &partials.exact_count);
          partials.n = count;
          scores.blocks.emplace_back(block, partials);
        });
    result->rows_scanned += hi - lo;
    result->blocks_emitted += static_cast<int64_t>(scores.blocks.size());
    result->score_probes.push_back(std::move(scores));
  }
  return Status::OK();
}

/// kErrorPartials, batched: validates every probe upfront in probe order
/// (identical first error to the per-probe path), then evaluates all
/// intersecting probes in one block-major staged sweep. Probe features
/// address the staged shortlist directly, so the per-probe column gathers
/// disappear; per-(probe, block) partials are bit-identical and arrive in
/// ascending block order.
Status RunErrorPartialsBatched(
    const ShardInput& input, const ShardRange& range, int64_t block_rows,
    const std::vector<const std::vector<double>*>& columns,
    const ShardTask& task, ShardTaskResult* result) {
  for (size_t p = 0; p < task.probes.size(); ++p) {
    const ErrorProbe& probe = task.probes[p];
    if (probe.leaf < 0 ||
        probe.leaf >= static_cast<int64_t>(input.leaves.size()) ||
        probe.features.size() != probe.coefficients.size()) {
      return Status::InvalidArgument("ExecuteShardTaskKernel: malformed probe " +
                                     std::to_string(p));
    }
    for (int64_t f : probe.features) {
      if (f < 0 || f >= static_cast<int64_t>(columns.size())) {
        return Status::InvalidArgument(
            "ExecuteShardTaskKernel: probe feature out of shortlist range");
      }
    }
  }
  std::vector<kernels::BatchProbeRequest> requests;
  requests.reserve(task.probes.size());
  for (size_t p = 0; p < task.probes.size(); ++p) {
    const ErrorProbe& probe = task.probes[p];
    const RowSet& rows = *input.leaves[static_cast<size_t>(probe.leaf)];
    auto [lo, hi] = rows.PositionsInRange(range.row_begin, range.row_end);
    if (lo == hi) continue;
    kernels::BatchProbeRequest request;
    request.intercept = probe.intercept;
    request.coefficients = probe.coefficients.data();
    request.feature_columns = probe.features.data();
    request.num_features = static_cast<int64_t>(probe.features.size());
    request.rows = rows.indices().data() + lo;
    request.count = hi - lo;
    requests.push_back(request);
    ProbeShardErrors errors;
    errors.probe = static_cast<int64_t>(p);
    result->rows_scanned += hi - lo;
    result->probes.push_back(std::move(errors));
  }
  kernels::BatchFoldCounters counters;
  kernels::BatchFoldProbeErrors(
      kernels::ActiveKernel(), columns, *input.y_new, requests,
      range.row_begin, range.row_end, block_rows,
      &kernels::BlockStager::ThreadLocal(), &counters,
      [&](int64_t ordinal, int64_t block, ErrorPartials&& partials) {
        result->probes[static_cast<size_t>(ordinal)].blocks.emplace_back(
            block, partials);
      });
  for (const ProbeShardErrors& errors : result->probes) {
    result->blocks_emitted += static_cast<int64_t>(errors.blocks.size());
  }
  FoldBatchCounters(counters, result);
  return Status::OK();
}

}  // namespace

Result<ShardTaskResult> ExecuteShardTaskKernel(const ShardInput& input,
                                               const ShardPlan& plan,
                                               int64_t shard_index,
                                               const ShardTask& task) {
  if (shard_index < 0 || shard_index >= plan.num_shards()) {
    return Status::OutOfRange("ExecuteShardTaskKernel: shard " +
                              std::to_string(shard_index) + " of " +
                              std::to_string(plan.num_shards()));
  }
  if (input.shortlist == nullptr || input.columns == nullptr ||
      input.y_old == nullptr || input.y_new == nullptr) {
    return Status::InvalidArgument("ExecuteShardTaskKernel: incomplete shard input");
  }
  std::vector<const std::vector<double>*> columns;
  if (!input.columns->ResolveColumns(*input.shortlist, &columns)) {
    return Status::InvalidArgument(
        "ExecuteShardTaskKernel: column cache does not cover the shortlist");
  }
  for (int64_t leaf : task.leaves) {
    if (leaf < 0 || leaf >= static_cast<int64_t>(input.leaves.size())) {
      return Status::InvalidArgument("ExecuteShardTaskKernel: leaf " +
                                     std::to_string(leaf) + " out of range");
    }
  }
  auto start = std::chrono::steady_clock::now();
  const ShardRange& range = plan.shards[static_cast<size_t>(shard_index)];
  ShardTaskResult result;
  result.kind = task.kind;
  result.shard = shard_index;
  // Batched and per-leaf sweeps produce byte-identical payloads, so the
  // per-task choice — like the kernel choice — is invisible to the merge:
  // every backend (and every remote worker, which resolves its own mode)
  // may decide independently.
  const kernels::BatchFoldMode batch_mode = kernels::ActiveBatchFold();
  switch (task.kind) {
    case ShardTaskKind::kLeafMoments:
      if (kernels::ShouldBatchFold(
              batch_mode, static_cast<int64_t>(task.leaves.size()))) {
        RunLeafMomentsBatched(input, range, plan.block_rows, columns, task,
                              &result);
      } else {
        RunLeafMoments(input, range, plan.block_rows, columns, task, &result);
      }
      break;
    case ShardTaskKind::kSignalStats:
      // One accumulator: staging only pays under an explicit "on".
      if (kernels::ShouldBatchFold(batch_mode, 1)) {
        RunSignalStatsBatched(input, range, plan.block_rows, columns, &result);
      } else {
        RunSignalStats(input, range, plan.block_rows, columns, &result);
      }
      break;
    case ShardTaskKind::kErrorPartials:
      if (kernels::ShouldBatchFold(
              batch_mode, static_cast<int64_t>(task.probes.size()))) {
        CHARLES_RETURN_NOT_OK(RunErrorPartialsBatched(
            input, range, plan.block_rows, columns, task, &result));
      } else {
        CHARLES_RETURN_NOT_OK(RunErrorPartials(input, range, plan.block_rows,
                                               columns, task, &result));
      }
      break;
    case ShardTaskKind::kScorePartials:
      CHARLES_RETURN_NOT_OK(RunScorePartials(input, range, plan.block_rows,
                                             columns, task, &result));
      break;
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

// --- Legacy single-purpose seam ---------------------------------------------

void ShardResult::SerializeTo(std::string* out) const {
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendScalar(out, shard);
  AppendScalar(out, rows_scanned);
  AppendScalar(out, blocks_emitted);
  AppendScalar(out, elapsed_seconds);
  int64_t num_leaves = static_cast<int64_t>(leaves.size());
  AppendScalar(out, num_leaves);
  for (const LeafShardStats& leaf : leaves) SerializeLeafShardStats(out, leaf);
}

Result<ShardResult> ShardResult::Deserialize(const void* data, size_t size) {
  const unsigned char* at = static_cast<const unsigned char*>(data);
  const unsigned char* end = at + size;
  char magic[4];
  if (!ReadRaw(&at, end, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("ShardResult::Deserialize: bad magic");
  }
  ShardResult result;
  int64_t num_leaves = 0;
  bool ok = ReadScalar(&at, end, &result.shard) &&
            ReadScalar(&at, end, &result.rows_scanned) &&
            ReadScalar(&at, end, &result.blocks_emitted) &&
            ReadScalar(&at, end, &result.elapsed_seconds) &&
            ReadScalar(&at, end, &num_leaves);
  // Length fields are bounded by the bytes present before any reserve():
  // a corrupt count must fail with IOError, not a giant allocation.
  if (!ok || num_leaves < 0 || result.rows_scanned < 0 ||
      num_leaves > (end - at) / kMinLeafBytes) {
    return Status::IOError("ShardResult::Deserialize: truncated header");
  }
  result.leaves.reserve(static_cast<size_t>(num_leaves));
  for (int64_t l = 0; l < num_leaves; ++l) {
    LeafShardStats leaf;
    Status status = ReadLeafShardStats(&at, end, &leaf);
    if (!status.ok()) {
      return Status::IOError("ShardResult::Deserialize: truncated leaf entry");
    }
    result.leaves.push_back(std::move(leaf));
  }
  if (at != end) {
    return Status::IOError("ShardResult::Deserialize: trailing bytes");
  }
  return result;
}

ShardTask AllLeavesTask(const ShardInput& input) {
  ShardTask task;
  task.kind = ShardTaskKind::kLeafMoments;
  task.leaves.reserve(input.leaves.size());
  for (size_t l = 0; l < input.leaves.size(); ++l) {
    task.leaves.push_back(static_cast<int64_t>(l));
  }
  return task;
}

namespace {

ShardResult ToLegacyResult(ShardTaskResult&& result) {
  ShardResult legacy;
  legacy.shard = result.shard;
  legacy.leaves = std::move(result.leaves);
  legacy.rows_scanned = result.rows_scanned;
  legacy.blocks_emitted = result.blocks_emitted;
  legacy.elapsed_seconds = result.elapsed_seconds;
  return legacy;
}

}  // namespace

Result<ShardResult> ExecuteShardKernel(const ShardInput& input, const ShardPlan& plan,
                                       int64_t shard_index) {
  CHARLES_ASSIGN_OR_RETURN(
      ShardTaskResult result,
      ExecuteShardTaskKernel(input, plan, shard_index, AllLeavesTask(input)));
  return ToLegacyResult(std::move(result));
}

Result<ShardResult> ShardBackend::ExecuteShard(const ShardInput& input,
                                               const ShardPlan& plan,
                                               int64_t shard_index) {
  CHARLES_ASSIGN_OR_RETURN(
      ShardTaskResult result,
      ExecuteTask(input, plan, shard_index, AllLeavesTask(input)));
  return ToLegacyResult(std::move(result));
}

}  // namespace charles
