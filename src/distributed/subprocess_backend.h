#ifndef CHARLES_DISTRIBUTED_SUBPROCESS_BACKEND_H_
#define CHARLES_DISTRIBUTED_SUBPROCESS_BACKEND_H_

#include <functional>
#include <mutex>

#include "distributed/backend.h"

namespace charles {

/// \brief Process-isolated backend: each shard task executes in a forked
/// worker that ships its serialized ShardTaskResult back over a pipe.
///
/// The worker inherits the parent's address space copy-on-write, so
/// ShardInput needs no marshalling — only the *result* crosses a process
/// boundary, which is precisely the coordinator-facing half of a future
/// multi-box protocol. What this backend proves, beyond the wire format
/// itself: results that crossed a byte stream still merge bit-identically
/// (doubles are framed bit-for-bit), and worker failures surface as Status
/// errors rather than hangs (a dead worker closes its pipe, so the parent's
/// read sees EOF, and waitpid reports the exit or signal).
///
/// Worker discipline: between fork and _exit the child only computes the
/// shard kernel and writes to its pipe — no threads, no engine calls, no
/// stdio. Forks are serialized internally (pipe setup is brief; the kernel
/// work itself overlaps across workers), and the calling process's threads
/// keep running — callers on a thread pool get one live worker per pool
/// thread.
///
/// Allocator assumption: the worker allocates (moment buffers, the wire
/// string) after forking from a multithreaded parent, which is safe on
/// glibc — its malloc registers pthread_atfork handlers that quiesce every
/// arena around fork — and on any allocator with equivalent fork hooks.
/// Deploying against an allocator without them would require preallocating
/// the worker's buffers before fork; the backend targets Linux/glibc (as
/// CI runs it) until then.
class SubprocessBackend : public ShardBackend {
 public:
  /// Test-only fault hook, run *inside the worker* before the kernel, so
  /// crash-path tests can kill a worker mid-shard (e.g. raise(SIGKILL)
  /// on a chosen shard). Must be set before any ExecuteShard call.
  using WorkerHook = std::function<void(int64_t shard_index)>;

  SubprocessBackend() = default;
  explicit SubprocessBackend(WorkerHook test_worker_hook)
      : test_worker_hook_(std::move(test_worker_hook)) {}

  std::string name() const override { return "subprocess"; }

  Result<ShardTaskResult> ExecuteTask(const ShardInput& input, const ShardPlan& plan,
                                      int64_t shard_index,
                                      const ShardTask& task) override;

 private:
  WorkerHook test_worker_hook_;
  /// Serializes fork + pipe setup; see class comment.
  std::mutex fork_mu_;
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_SUBPROCESS_BACKEND_H_
