#ifndef CHARLES_DISTRIBUTED_WORKER_REGISTRY_H_
#define CHARLES_DISTRIBUTED_WORKER_REGISTRY_H_

/// \file
/// \brief The RemoteBackend's view of its worker fleet.
///
/// The registry is seeded with a static endpoint list (CharlesOptions::
/// remote_workers) and tracks, per worker: one cached connection (the
/// session), the negotiated wire version, which input epoch is installed on
/// it, and health. Health transitions:
///
///  - healthy → unhealthy: any transport failure (connect refusal, timeout,
///    torn stream) while talking to the worker. Its tasks are reassigned.
///  - unhealthy → healthy: a successful probe (connect + handshake + ping),
///    run by the optional periodic health-check thread or synchronously by
///    ReProbe() when the backend finds no healthy worker left.
///  - any → version-rejected: the handshake finds no common wire version.
///    Permanent for the registry's lifetime — a version-skewed worker must
///    never contribute bytes to a merge.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "distributed/remote_counters.h"
#include "net/socket.h"

namespace charles {

/// \brief One worker's connection state and health record.
///
/// Locking: `mu` serializes use of the connection (fd, wire_version,
/// installed_epoch) — one in-flight request per worker. The health flags and
/// counters are guarded by the registry's own mutex so Acquire() and the
/// health checker never block behind a long-running task.
struct WorkerSession {
  explicit WorkerSession(net::Endpoint ep) : endpoint(std::move(ep)) {}

  const net::Endpoint endpoint;

  /// \name Connection state, guarded by `mu`.
  /// @{
  std::mutex mu;
  int fd = -1;
  int32_t wire_version = 0;
  /// Input epoch installed over *this connection* (-1 = none). Reset on every
  /// reconnect, so a restarted worker always gets a fresh install.
  int64_t installed_epoch = -1;
  /// @}

  /// \name Health record, guarded by the registry mutex.
  /// @{
  bool healthy = true;
  bool version_rejected = false;
  std::string last_error;
  int64_t tasks_dispatched = 0;
  int64_t tasks_failed = 0;
  int64_t input_installs = 0;
  /// @}
};

/// \brief Registry of remote workers: round-robin selection, health
/// bookkeeping, optional periodic health checks.
class WorkerRegistry {
 public:
  /// Seeds the fleet. Endpoints are assumed unique; duplicates would merely
  /// count as independent workers on the same address.
  explicit WorkerRegistry(std::vector<net::Endpoint> endpoints);
  ~WorkerRegistry();

  WorkerRegistry(const WorkerRegistry&) = delete;
  WorkerRegistry& operator=(const WorkerRegistry&) = delete;

  size_t size() const { return sessions_.size(); }

  /// Next healthy worker, round-robin; nullptr when none is healthy (caller
  /// should ReProbe() once, then give up). `exclude` skips one session —
  /// the worker a task just failed on, so its retry lands elsewhere when the
  /// fleet has anywhere else to land.
  WorkerSession* Acquire(const WorkerSession* exclude = nullptr);

  /// Records a transport failure: the worker leaves the rotation until a
  /// probe readmits it. (The caller closes the session fd — it holds the
  /// session mutex; the registry never touches connection state.)
  void MarkUnhealthy(WorkerSession* session, const std::string& error);

  /// Records a handshake version rejection: permanent exclusion.
  void MarkVersionRejected(WorkerSession* session, const std::string& error);

  /// Re-marks a worker healthy after a successful probe.
  void MarkHealthy(WorkerSession* session);

  /// \name Dispatch accounting (feeds SummaryList diagnostics).
  /// @{
  void RecordDispatch(WorkerSession* session);
  void RecordFailure(WorkerSession* session);
  void RecordInstall(WorkerSession* session);
  /// @}

  /// Synchronously probes every unhealthy (non-version-rejected) worker:
  /// connect, handshake, ping, disconnect. Returns true if at least one
  /// worker was readmitted — the backend's last resort before reporting an
  /// all-workers-down failure.
  bool ReProbe(int connect_timeout_ms, int64_t max_frame_bytes);

  /// Starts a background thread probing the fleet every `interval_ms`:
  /// healthy workers get a ping over their cached connection (skipped while
  /// a task is in flight), unhealthy ones get a readmission probe. No-op if
  /// already running or `interval_ms <= 0`.
  void StartHealthChecks(int interval_ms, int connect_timeout_ms,
                         int64_t max_frame_bytes);
  void StopHealthChecks();

  /// Point-in-time per-worker counters for diagnostics.
  std::vector<RemoteWorkerCounters> Snapshot() const;

 private:
  /// One readmission probe: fresh connect + handshake + ping, then close.
  /// Updates health under the registry mutex.
  bool ProbeOne(WorkerSession* session, int connect_timeout_ms,
                int64_t max_frame_bytes);

  std::vector<std::unique_ptr<WorkerSession>> sessions_;

  mutable std::mutex mu_;          // guards health flags + counters + cursor
  size_t round_robin_cursor_ = 0;  // guarded by mu_

  std::thread health_thread_;
  std::atomic<bool> health_stop_{false};
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_WORKER_REGISTRY_H_
