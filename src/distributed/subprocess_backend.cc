#include "distributed/subprocess_backend.h"

#include <errno.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include "distributed/shard_planner.h"
#include "net/io.h"

namespace charles {

Result<ShardTaskResult> SubprocessBackend::ExecuteTask(const ShardInput& input,
                                                       const ShardPlan& plan,
                                                       int64_t shard_index,
                                                       const ShardTask& task) {
  int pipe_fds[2];
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(fork_mu_);
    if (::pipe(pipe_fds) != 0) {
      return Status::IOError(std::string("SubprocessBackend: pipe: ") +
                             ::strerror(errno));
    }
    pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return Status::IOError(std::string("SubprocessBackend: fork: ") +
                             ::strerror(errno));
    }
    if (pid > 0) {
      // Parent: give the write end back *inside* the fork lock — a sibling
      // worker forked after this point must not inherit it, or this
      // worker's death would no longer close the pipe's last writer and
      // the read-to-EOF loop below could outlive the worker.
      ::close(pipe_fds[1]);
    }
  }

  if (pid == 0) {
    // Worker. Compute, serialize, write, _exit — nothing else (no atexit
    // handlers, no stdio flush; the parent owns all shared state).
    ::close(pipe_fds[0]);
    if (test_worker_hook_) test_worker_hook_(shard_index);
    int exit_code = 0;
    {
      Result<ShardTaskResult> result =
          ExecuteShardTaskKernel(input, plan, shard_index, task);
      if (result.ok()) {
        std::string wire;
        result->SerializeTo(&wire);
        // A failed write (e.g. the parent died and closed the read end)
        // exits nonzero; the parent reports the status below.
        if (!net::WriteFull(pipe_fds[1], wire.data(), wire.size()).ok()) {
          exit_code = 3;
        }
      } else {
        // Kernel failure (bad input/shard index). The parent reports the
        // exit code; the kernel's own validation is deterministic, so the
        // same call against an in-process backend reproduces the detail.
        exit_code = 2;
      }
    }
    ::close(pipe_fds[1]);
    ::_exit(exit_code);
  }

  // Coordinator side: drain the pipe to EOF, then reap the worker. A worker
  // that crashes (or is killed) closes the pipe by dying, so the read loop
  // terminates and nothing here can hang on a dead worker (the parent's
  // write end was already closed under the fork lock above).
  std::string wire;
  // Errors are held until after the worker is reaped below, so a torn read
  // never leaks a zombie.
  Status read_status = net::ReadToEof(pipe_fds[0], &wire);
  ::close(pipe_fds[0]);

  int wait_status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &wait_status, 0);
  } while (reaped < 0 && errno == EINTR);

  std::string worker = "worker " + std::to_string(pid) + " (shard " +
                       std::to_string(shard_index) + ")";
  if (reaped != pid) {
    return Status::Internal("SubprocessBackend: waitpid lost " + worker);
  }
  if (WIFSIGNALED(wait_status)) {
    return Status::Internal("SubprocessBackend: " + worker + " killed by signal " +
                            std::to_string(WTERMSIG(wait_status)));
  }
  if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    return Status::Internal("SubprocessBackend: " + worker + " exited with status " +
                            std::to_string(WIFEXITED(wait_status)
                                               ? WEXITSTATUS(wait_status)
                                               : -1));
  }
  if (!read_status.ok()) {
    return read_status.WithContext("SubprocessBackend: read from " + worker);
  }
  Result<ShardTaskResult> result =
      ShardTaskResult::Deserialize(wire.data(), wire.size());
  if (!result.ok()) {
    return result.status().WithContext("SubprocessBackend: " + worker +
                                       " produced a malformed result");
  }
  return result;
}

}  // namespace charles
