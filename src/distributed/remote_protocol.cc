#include "distributed/remote_protocol.h"

#include <cstring>
#include <utility>

#include "common/wire.h"
#include "net/frame.h"

namespace charles {

namespace {

constexpr char kInstallMagic[4] = {'C', 'S', 'I', '1'};

// Conservative floor on the serialized size of a nonempty std::string
// (length prefix alone) and of a shard range — used to bound counts against
// the bytes actually present before reserving.
constexpr int64_t kMinStringBytes = static_cast<int64_t>(sizeof(int64_t));
constexpr int64_t kMinShardBytes = static_cast<int64_t>(5 * sizeof(int64_t));
constexpr int64_t kMinVectorBytes = static_cast<int64_t>(sizeof(int64_t));

void AppendString(std::string* out, const std::string& value) {
  wire::AppendScalar(out, static_cast<int64_t>(value.size()));
  wire::AppendRaw(out, value.data(), value.size());
}

bool ReadString(const unsigned char** cursor, const unsigned char* end,
                std::string* value) {
  int64_t length = 0;
  if (!wire::ReadScalar(cursor, end, &length) || length < 0 ||
      length > end - *cursor) {
    return false;
  }
  value->assign(reinterpret_cast<const char*>(*cursor),
                static_cast<size_t>(length));
  *cursor += length;
  return true;
}

Status Malformed(const std::string& what) {
  return Status::IOError("InstallInput: malformed bundle (" + what + ")");
}

}  // namespace

std::string SerializeVersionRange(int32_t version_min, int32_t version_max) {
  std::string out;
  wire::AppendScalar(&out, version_min);
  wire::AppendScalar(&out, version_max);
  return out;
}

Result<RemoteVersionRange> ParseVersionRange(const std::string& payload) {
  const unsigned char* cursor =
      reinterpret_cast<const unsigned char*>(payload.data());
  const unsigned char* end = cursor + payload.size();
  RemoteVersionRange range;
  if (!wire::ReadScalar(&cursor, end, &range.min) ||
      !wire::ReadScalar(&cursor, end, &range.max) || cursor != end) {
    return Status::IOError("remote handshake: malformed version range");
  }
  return range;
}

std::string SerializeChosenVersion(int32_t version) {
  std::string out;
  wire::AppendScalar(&out, version);
  return out;
}

Result<int32_t> ParseChosenVersion(const std::string& payload) {
  const unsigned char* cursor =
      reinterpret_cast<const unsigned char*>(payload.data());
  const unsigned char* end = cursor + payload.size();
  int32_t version = 0;
  if (!wire::ReadScalar(&cursor, end, &version) || cursor != end) {
    return Status::IOError("remote handshake: malformed chosen version");
  }
  return version;
}

Result<int32_t> RemoteClientHandshake(int fd, int timeout_ms,
                                      int64_t max_frame_bytes) {
  CHARLES_RETURN_NOT_OK(net::WriteFrame(
      fd, static_cast<int32_t>(RemoteMessageType::kHello),
      SerializeVersionRange(kRemoteWireVersionMin, kRemoteWireVersionMax)));
  CHARLES_ASSIGN_OR_RETURN(net::Frame reply,
                           net::ReadFrame(fd, timeout_ms, max_frame_bytes));
  if (reply.type == static_cast<int32_t>(RemoteMessageType::kHelloOk)) {
    CHARLES_ASSIGN_OR_RETURN(int32_t version, ParseChosenVersion(reply.payload));
    if (version < kRemoteWireVersionMin || version > kRemoteWireVersionMax) {
      return Status::IOError("remote handshake: worker chose version " +
                             std::to_string(version) +
                             " outside the offered range");
    }
    return version;
  }
  if (reply.type == static_cast<int32_t>(RemoteMessageType::kHelloReject)) {
    Result<RemoteVersionRange> peer = ParseVersionRange(reply.payload);
    std::string peer_range =
        peer.ok() ? "[" + std::to_string(peer->min) + ", " +
                        std::to_string(peer->max) + "]"
                  : "(unparseable range)";
    return Status::InvalidArgument(
        "remote handshake: worker speaks wire versions " + peer_range +
        ", this coordinator speaks [" + std::to_string(kRemoteWireVersionMin) +
        ", " + std::to_string(kRemoteWireVersionMax) +
        "] — worker excluded from the fleet");
  }
  return Status::IOError("remote handshake: unexpected reply frame type " +
                         std::to_string(reply.type));
}

ShardInput InstalledInput::View() const {
  ShardInput view;
  view.shortlist = &shortlist;
  view.columns = &columns;
  view.y_old = &y_old;
  view.y_new = &y_new;
  view.leaves.reserve(leaves.size());
  for (const RowSet& leaf : leaves) view.leaves.push_back(&leaf);
  return view;
}

Status SerializeInstallInput(int64_t epoch, const ShardInput& input,
                             const ShardPlan& plan, std::string* out) {
  if (input.shortlist == nullptr || input.columns == nullptr ||
      input.y_old == nullptr || input.y_new == nullptr) {
    return Status::InvalidArgument(
        "SerializeInstallInput: input view has null members");
  }
  out->clear();
  wire::AppendRaw(out, kInstallMagic, sizeof(kInstallMagic));
  wire::AppendScalar(out, epoch);

  wire::AppendScalar(out, plan.num_rows);
  wire::AppendScalar(out, plan.block_rows);
  wire::AppendScalar(out, static_cast<int64_t>(plan.shards.size()));
  for (const ShardRange& shard : plan.shards) {
    wire::AppendScalar(out, shard.index);
    wire::AppendScalar(out, shard.block_begin);
    wire::AppendScalar(out, shard.block_end);
    wire::AppendScalar(out, shard.row_begin);
    wire::AppendScalar(out, shard.row_end);
  }

  wire::AppendScalar(out, static_cast<int64_t>(input.shortlist->size()));
  for (const std::string& name : *input.shortlist) AppendString(out, name);
  for (const std::string& name : *input.shortlist) {
    const std::vector<double>* column = input.columns->Find(name);
    if (column == nullptr) {
      return Status::InvalidArgument(
          "SerializeInstallInput: column cache does not cover shortlist "
          "column '" +
          name + "'");
    }
    wire::AppendVector(out, *column);
  }
  wire::AppendVector(out, *input.y_old);
  wire::AppendVector(out, *input.y_new);

  wire::AppendScalar(out, static_cast<int64_t>(input.leaves.size()));
  for (const RowSet* leaf : input.leaves) {
    if (leaf == nullptr) {
      return Status::InvalidArgument("SerializeInstallInput: null leaf");
    }
    wire::AppendVector(out, leaf->indices());
  }
  return Status::OK();
}

Result<std::unique_ptr<InstalledInput>> DeserializeInstallInput(const void* data,
                                                                size_t size) {
  const unsigned char* cursor = static_cast<const unsigned char*>(data);
  const unsigned char* end = cursor + size;
  if (static_cast<size_t>(end - cursor) < sizeof(kInstallMagic) ||
      std::memcmp(cursor, kInstallMagic, sizeof(kInstallMagic)) != 0) {
    return Malformed("bad magic");
  }
  cursor += sizeof(kInstallMagic);

  auto input = std::make_unique<InstalledInput>();
  if (!wire::ReadScalar(&cursor, end, &input->epoch)) return Malformed("epoch");

  int64_t num_shards = 0;
  if (!wire::ReadScalar(&cursor, end, &input->plan.num_rows) ||
      !wire::ReadScalar(&cursor, end, &input->plan.block_rows) ||
      !wire::ReadScalar(&cursor, end, &num_shards) || num_shards < 0 ||
      num_shards > (end - cursor) / kMinShardBytes) {
    return Malformed("plan header");
  }
  input->plan.shards.reserve(static_cast<size_t>(num_shards));
  for (int64_t i = 0; i < num_shards; ++i) {
    ShardRange shard;
    if (!wire::ReadScalar(&cursor, end, &shard.index) ||
        !wire::ReadScalar(&cursor, end, &shard.block_begin) ||
        !wire::ReadScalar(&cursor, end, &shard.block_end) ||
        !wire::ReadScalar(&cursor, end, &shard.row_begin) ||
        !wire::ReadScalar(&cursor, end, &shard.row_end)) {
      return Malformed("shard range");
    }
    input->plan.shards.push_back(shard);
  }

  int64_t num_columns = 0;
  if (!wire::ReadScalar(&cursor, end, &num_columns) || num_columns < 0 ||
      num_columns > (end - cursor) / kMinStringBytes) {
    return Malformed("shortlist count");
  }
  input->shortlist.reserve(static_cast<size_t>(num_columns));
  for (int64_t i = 0; i < num_columns; ++i) {
    std::string name;
    if (!ReadString(&cursor, end, &name)) return Malformed("shortlist name");
    input->shortlist.push_back(std::move(name));
  }
  for (int64_t i = 0; i < num_columns; ++i) {
    std::vector<double> column;
    if (!wire::ReadVector(&cursor, end, &column)) {
      return Malformed("column values");
    }
    input->columns.Insert(input->shortlist[static_cast<size_t>(i)],
                          std::move(column));
  }
  if (!wire::ReadVector(&cursor, end, &input->y_old) ||
      !wire::ReadVector(&cursor, end, &input->y_new)) {
    return Malformed("targets");
  }

  int64_t num_leaves = 0;
  if (!wire::ReadScalar(&cursor, end, &num_leaves) || num_leaves < 0 ||
      num_leaves > (end - cursor) / kMinVectorBytes) {
    return Malformed("leaf count");
  }
  input->leaves.reserve(static_cast<size_t>(num_leaves));
  for (int64_t i = 0; i < num_leaves; ++i) {
    std::vector<int64_t> indices;
    if (!wire::ReadVector(&cursor, end, &indices)) return Malformed("leaf rows");
    input->leaves.emplace_back(std::move(indices));
  }
  if (cursor != end) return Malformed("trailing bytes");
  return input;
}

void SerializeExecuteRequest(int64_t epoch, int64_t shard, uint64_t run_id,
                             uint64_t parent_span, bool traced,
                             const ShardTask& task, std::string* out) {
  out->clear();
  wire::AppendScalar(out, epoch);
  wire::AppendScalar(out, shard);
  wire::AppendScalar(out, run_id);
  wire::AppendScalar(out, parent_span);
  wire::AppendScalar(out, static_cast<int32_t>(traced ? 1 : 0));
  std::string task_wire;
  task.SerializeTo(&task_wire);
  out->append(task_wire);
}

Result<RemoteTaskRequest> ParseExecuteRequest(const void* data, size_t size) {
  const unsigned char* cursor = static_cast<const unsigned char*>(data);
  const unsigned char* end = cursor + size;
  RemoteTaskRequest request;
  int32_t traced = 0;
  if (!wire::ReadScalar(&cursor, end, &request.epoch) ||
      !wire::ReadScalar(&cursor, end, &request.shard) ||
      !wire::ReadScalar(&cursor, end, &request.run_id) ||
      !wire::ReadScalar(&cursor, end, &request.parent_span) ||
      !wire::ReadScalar(&cursor, end, &traced) ||
      // Hostile flag values are rejected, not coerced: 0 and 1 are the only
      // spellings a well-formed v3 coordinator emits.
      (traced != 0 && traced != 1)) {
    return Status::IOError("ExecuteTask: malformed request header");
  }
  request.traced = traced == 1;
  CHARLES_ASSIGN_OR_RETURN(
      request.task,
      ShardTask::Deserialize(cursor, static_cast<size_t>(end - cursor)));
  return request;
}

void SerializeTracedTaskResult(const ShardTaskResult& result,
                               const std::vector<obs::SpanRecord>& spans,
                               std::string* out) {
  out->clear();
  std::string result_wire;
  result.SerializeTo(&result_wire);
  wire::AppendScalar(out, static_cast<int64_t>(result_wire.size()));
  out->append(result_wire);
  wire::AppendScalar(out, static_cast<int64_t>(spans.size()));
  for (const obs::SpanRecord& span : spans) {
    wire::AppendScalar(out, span.id);
    wire::AppendScalar(out, span.parent);
    AppendString(out, span.name);
    wire::AppendScalar(out, span.start_ns);
    wire::AppendScalar(out, span.dur_ns);
    wire::AppendScalar(out, static_cast<int64_t>(span.annotations.size()));
    for (const auto& kv : span.annotations) {
      AppendString(out, kv.first);
      AppendString(out, kv.second);
    }
  }
}

Result<TracedTaskReply> ParseTracedTaskReply(const void* data, size_t size) {
  const unsigned char* cursor = static_cast<const unsigned char*>(data);
  const unsigned char* end = cursor + size;
  auto malformed = [](const std::string& what) {
    return Status::IOError("TaskOk: malformed traced reply (" + what + ")");
  };

  int64_t result_bytes = 0;
  if (!wire::ReadScalar(&cursor, end, &result_bytes) || result_bytes < 0 ||
      result_bytes > end - cursor) {
    return malformed("result length");
  }
  TracedTaskReply reply;
  CHARLES_ASSIGN_OR_RETURN(
      reply.result,
      ShardTaskResult::Deserialize(cursor, static_cast<size_t>(result_bytes)));
  cursor += result_bytes;

  // Every span costs at least its five fixed scalars plus two length
  // prefixes; bounding the count against the remaining bytes rejects
  // hostile counts before any allocation (the install-bundle idiom).
  constexpr int64_t kMinSpanBytes = static_cast<int64_t>(7 * sizeof(int64_t));
  int64_t num_spans = 0;
  if (!wire::ReadScalar(&cursor, end, &num_spans) || num_spans < 0 ||
      num_spans > (end - cursor) / kMinSpanBytes) {
    return malformed("span count");
  }
  reply.spans.reserve(static_cast<size_t>(num_spans));
  for (int64_t i = 0; i < num_spans; ++i) {
    obs::SpanRecord span;
    if (!wire::ReadScalar(&cursor, end, &span.id) ||
        !wire::ReadScalar(&cursor, end, &span.parent) ||
        !ReadString(&cursor, end, &span.name) ||
        !wire::ReadScalar(&cursor, end, &span.start_ns) ||
        !wire::ReadScalar(&cursor, end, &span.dur_ns)) {
      return malformed("span record");
    }
    int64_t num_annotations = 0;
    if (!wire::ReadScalar(&cursor, end, &num_annotations) ||
        num_annotations < 0 ||
        num_annotations > (end - cursor) / (2 * kMinStringBytes)) {
      return malformed("annotation count");
    }
    span.annotations.reserve(static_cast<size_t>(num_annotations));
    for (int64_t a = 0; a < num_annotations; ++a) {
      std::string key;
      std::string value;
      if (!ReadString(&cursor, end, &key) || !ReadString(&cursor, end, &value)) {
        return malformed("annotation");
      }
      span.annotations.emplace_back(std::move(key), std::move(value));
    }
    reply.spans.push_back(std::move(span));
  }
  if (cursor != end) return malformed("trailing bytes");
  return reply;
}

std::string SerializeStatusPayload(const Status& status) {
  std::string out;
  wire::AppendScalar(&out, static_cast<int32_t>(status.code()));
  AppendString(&out, status.message());
  return out;
}

Status ParseStatusPayload(const std::string& payload) {
  const unsigned char* cursor =
      reinterpret_cast<const unsigned char*>(payload.data());
  const unsigned char* end = cursor + payload.size();
  int32_t code = 0;
  std::string message;
  if (!wire::ReadScalar(&cursor, end, &code) ||
      !ReadString(&cursor, end, &message) || cursor != end ||
      code <= static_cast<int32_t>(StatusCode::kOk) ||
      code > static_cast<int32_t>(StatusCode::kUnknown)) {
    return Status::IOError("TaskError: malformed status payload");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace charles
