#include "distributed/worker_registry.h"

#include <chrono>
#include <utility>

#include "distributed/remote_protocol.h"
#include "net/frame.h"
#include "obs/metrics.h"

namespace charles {

namespace {

/// \name Fleet health-transition counters.
///
/// Counted on *transitions* only (healthy → unhealthy and back), not on
/// every probe, so the rates read as churn: a flapping worker shows up as a
/// climbing pair, a steady fleet as flat lines. Static-local pointers keep
/// the registry lookup off the per-call path.
/// @{
void CountUnhealthyTransition() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().counter("remote.worker_unhealthy");
  counter->Increment();
}

void CountHealthyTransition() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().counter("remote.worker_healthy");
  counter->Increment();
}

void CountVersionRejected() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().counter("remote.worker_version_rejected");
  counter->Increment();
}
/// @}

}  // namespace

WorkerRegistry::WorkerRegistry(std::vector<net::Endpoint> endpoints) {
  sessions_.reserve(endpoints.size());
  for (net::Endpoint& endpoint : endpoints) {
    sessions_.push_back(std::make_unique<WorkerSession>(std::move(endpoint)));
  }
}

WorkerRegistry::~WorkerRegistry() {
  StopHealthChecks();
  for (std::unique_ptr<WorkerSession>& session : sessions_) {
    std::lock_guard<std::mutex> lock(session->mu);
    net::CloseFd(session->fd);
    session->fd = -1;
  }
}

WorkerSession* WorkerRegistry::Acquire(const WorkerSession* exclude) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = sessions_.size();
  for (size_t step = 0; step < n; ++step) {
    WorkerSession* session = sessions_[(round_robin_cursor_ + step) % n].get();
    if (!session->healthy || session == exclude) continue;
    round_robin_cursor_ = (round_robin_cursor_ + step + 1) % n;
    return session;
  }
  // Only the excluded worker (if any) is left healthy: better it than
  // nothing — its failure may have been a one-off.
  if (exclude != nullptr) {
    for (const std::unique_ptr<WorkerSession>& session : sessions_) {
      if (session.get() == exclude && session->healthy) {
        return const_cast<WorkerSession*>(exclude);
      }
    }
  }
  return nullptr;
}

void WorkerRegistry::MarkUnhealthy(WorkerSession* session,
                                   const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session->healthy) CountUnhealthyTransition();
  session->healthy = false;
  session->last_error = error;
}

void WorkerRegistry::MarkVersionRejected(WorkerSession* session,
                                         const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session->healthy) CountUnhealthyTransition();
  if (!session->version_rejected) CountVersionRejected();
  session->healthy = false;
  session->version_rejected = true;
  session->last_error = error;
}

void WorkerRegistry::MarkHealthy(WorkerSession* session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!session->healthy) CountHealthyTransition();
  session->healthy = true;
}

void WorkerRegistry::RecordDispatch(WorkerSession* session) {
  std::lock_guard<std::mutex> lock(mu_);
  ++session->tasks_dispatched;
}

void WorkerRegistry::RecordFailure(WorkerSession* session) {
  std::lock_guard<std::mutex> lock(mu_);
  ++session->tasks_failed;
}

void WorkerRegistry::RecordInstall(WorkerSession* session) {
  std::lock_guard<std::mutex> lock(mu_);
  ++session->input_installs;
}

bool WorkerRegistry::ProbeOne(WorkerSession* session, int connect_timeout_ms,
                              int64_t max_frame_bytes) {
  Result<int> fd = net::TcpConnect(session->endpoint, connect_timeout_ms);
  if (!fd.ok()) {
    MarkUnhealthy(session, fd.status().message());
    return false;
  }
  Result<int32_t> version =
      RemoteClientHandshake(*fd, connect_timeout_ms, max_frame_bytes);
  Status probe_status = version.status();
  if (version.ok()) {
    // A ping proves the worker actually serves requests, not just accepts.
    probe_status = net::WriteFrame(
        *fd, static_cast<int32_t>(RemoteMessageType::kPing), "");
    if (probe_status.ok()) {
      Result<net::Frame> pong =
          net::ReadFrame(*fd, connect_timeout_ms, max_frame_bytes);
      if (!pong.ok()) {
        probe_status = pong.status();
      } else if (pong->type != static_cast<int32_t>(RemoteMessageType::kPong)) {
        probe_status = Status::IOError("probe: unexpected reply to ping");
      }
    }
  }
  net::CloseFd(*fd);
  if (!probe_status.ok()) {
    if (probe_status.IsInvalidArgument()) {
      MarkVersionRejected(session, probe_status.message());
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      if (session->healthy) CountUnhealthyTransition();
      session->healthy = false;
      session->last_error = probe_status.message();
    }
    return false;
  }
  MarkHealthy(session);
  return true;
}

bool WorkerRegistry::ReProbe(int connect_timeout_ms, int64_t max_frame_bytes) {
  std::vector<WorkerSession*> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<WorkerSession>& session : sessions_) {
      if (!session->healthy && !session->version_rejected) {
        candidates.push_back(session.get());
      }
    }
  }
  bool readmitted = false;
  for (WorkerSession* session : candidates) {
    if (ProbeOne(session, connect_timeout_ms, max_frame_bytes)) {
      readmitted = true;
    }
  }
  return readmitted;
}

void WorkerRegistry::StartHealthChecks(int interval_ms, int connect_timeout_ms,
                                       int64_t max_frame_bytes) {
  if (interval_ms <= 0 || health_thread_.joinable()) return;
  health_stop_.store(false);
  health_thread_ = std::thread([this, interval_ms, connect_timeout_ms,
                                max_frame_bytes]() {
    // Sleep in small ticks so StopHealthChecks() never waits a full interval.
    const auto tick = std::chrono::milliseconds(20);
    auto next_sweep = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(interval_ms);
    while (!health_stop_.load()) {
      if (std::chrono::steady_clock::now() < next_sweep) {
        std::this_thread::sleep_for(tick);
        continue;
      }
      next_sweep += std::chrono::milliseconds(interval_ms);
      for (const std::unique_ptr<WorkerSession>& owned : sessions_) {
        if (health_stop_.load()) break;
        WorkerSession* session = owned.get();
        bool healthy;
        bool rejected;
        {
          std::lock_guard<std::mutex> lock(mu_);
          healthy = session->healthy;
          rejected = session->version_rejected;
        }
        if (rejected) continue;
        if (!healthy) {
          ProbeOne(session, connect_timeout_ms, max_frame_bytes);
          continue;
        }
        // Healthy: ping over the cached connection. try_lock — a worker
        // busy with a task is evidently alive, and a health check must
        // never queue behind a long shard sweep.
        std::unique_lock<std::mutex> conn(session->mu, std::try_to_lock);
        if (!conn.owns_lock() || session->fd < 0) continue;
        Status ping = net::WriteFrame(
            session->fd, static_cast<int32_t>(RemoteMessageType::kPing), "");
        if (ping.ok()) {
          Result<net::Frame> pong = net::ReadFrame(
              session->fd, connect_timeout_ms, max_frame_bytes);
          if (!pong.ok()) {
            ping = pong.status();
          } else if (pong->type !=
                     static_cast<int32_t>(RemoteMessageType::kPong)) {
            ping = Status::IOError("health check: unexpected reply to ping");
          }
        }
        if (!ping.ok()) {
          net::CloseFd(session->fd);
          session->fd = -1;
          session->installed_epoch = -1;
          std::lock_guard<std::mutex> lock(mu_);
          if (session->healthy) CountUnhealthyTransition();
          session->healthy = false;
          session->last_error = ping.message();
        }
      }
    }
  });
}

void WorkerRegistry::StopHealthChecks() {
  if (!health_thread_.joinable()) return;
  health_stop_.store(true);
  health_thread_.join();
}

std::vector<RemoteWorkerCounters> WorkerRegistry::Snapshot() const {
  std::vector<RemoteWorkerCounters> out;
  out.reserve(sessions_.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<WorkerSession>& session : sessions_) {
    RemoteWorkerCounters counters;
    counters.endpoint = session->endpoint.ToString();
    counters.healthy = session->healthy;
    counters.version_rejected = session->version_rejected;
    counters.tasks_dispatched = session->tasks_dispatched;
    counters.tasks_failed = session->tasks_failed;
    counters.input_installs = session->input_installs;
    counters.last_error = session->last_error;
    out.push_back(std::move(counters));
  }
  return out;
}

}  // namespace charles
