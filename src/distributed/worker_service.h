#ifndef CHARLES_DISTRIBUTED_WORKER_SERVICE_H_
#define CHARLES_DISTRIBUTED_WORKER_SERVICE_H_

/// \file
/// \brief The worker half of the remote shard protocol.
///
/// WorkerService speaks the remote_protocol.h conversation over one
/// connection at a time: handshake, install-input, execute-task, ping,
/// shutdown. It holds at most one InstalledInput (the latest epoch) and runs
/// ExecuteShardTaskKernel — the exact kernel InProcessBackend runs — over
/// its owned reconstruction, which is why remote results merge
/// bit-identically to local ones.
///
/// The standalone `charles_worker` binary (tools/) wraps Serve() around a
/// TcpListener; LoopbackWorker runs the same service on a background thread
/// inside one process for tests and CI loopback jobs.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/result.h"
#include "distributed/remote_protocol.h"
#include "net/socket.h"

namespace charles {

/// Default bound on a single frame payload (1 GiB). Install bundles carry
/// whole columns, so this is generous; anything larger is a torn stream or a
/// hostile peer.
inline constexpr int64_t kRemoteMaxFrameBytes = int64_t{1} << 30;

struct WorkerServiceOptions {
  /// The wire-version range this worker speaks. Tests narrow it to force
  /// handshake rejection; the daemon uses the built-in range.
  int32_t version_min = kRemoteWireVersionMin;
  int32_t version_max = kRemoteWireVersionMax;
  /// Upper bound on any received frame payload.
  int64_t max_frame_bytes = kRemoteMaxFrameBytes;
  /// Test-only hook run inside the worker right before each task's kernel —
  /// the remote analogue of SubprocessBackend's WorkerHook (fault injection:
  /// the fault test raises SIGKILL here to die mid-shard).
  std::function<void(int64_t shard_index)> task_hook;
};

/// \brief Serves the remote shard protocol; one instance per worker process.
class WorkerService {
 public:
  explicit WorkerService(WorkerServiceOptions options = {})
      : options_(std::move(options)) {}

  /// Serves one established connection until the peer disconnects or sends
  /// kShutdown. Returns OK on an orderly end (EOF or shutdown); a non-OK
  /// status means the stream died mid-message — the daemon logs it and keeps
  /// accepting.
  Status ServeConnection(int fd);

  /// Accept loop: serves connections sequentially until `stop` (optional)
  /// goes true or a connection requests kShutdown. Polls the listener in
  /// ~100 ms ticks so the stop flag is honored promptly.
  Status Serve(net::TcpListener& listener, const std::atomic<bool>* stop);

  /// True once a connection has requested kShutdown.
  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  WorkerServiceOptions options_;
  std::atomic<bool> shutdown_requested_{false};
  /// The latest installed input (one epoch at a time). Connections are
  /// served sequentially, so no lock is needed.
  std::unique_ptr<InstalledInput> installed_;
};

/// \brief A WorkerService on a background thread of this process, bound to
/// 127.0.0.1 — the loopback worker tests and the CI loopback job dial.
class LoopbackWorker {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving. The bound
  /// port is available via port()/endpoint().
  static Result<std::unique_ptr<LoopbackWorker>> Start(
      WorkerServiceOptions options = {}, int port = 0);

  ~LoopbackWorker() { Stop(); }

  LoopbackWorker(const LoopbackWorker&) = delete;
  LoopbackWorker& operator=(const LoopbackWorker&) = delete;

  int port() const { return listener_.port(); }
  /// The "127.0.0.1:port" form CharlesOptions::remote_workers takes.
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(listener_.port());
  }

  /// Stops the serve loop and joins the thread (idempotent).
  void Stop();

 private:
  explicit LoopbackWorker(WorkerServiceOptions options)
      : service_(std::move(options)) {}

  WorkerService service_;
  net::TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_WORKER_SERVICE_H_
