#ifndef CHARLES_DISTRIBUTED_COORDINATOR_H_
#define CHARLES_DISTRIBUTED_COORDINATOR_H_

/// \file
/// \brief Coordinator of distributed shard-task sweeps.
///
/// The coordinator owns the fan-out/merge half of the coordinator/worker
/// split (the half Roussakis-style change-detection frameworks centralize):
/// it dispatches one tagged ShardTask to every ShardRange of a plan via a
/// ShardBackend — concurrently over the run's thread pool when one is
/// available — and folds the ShardTaskResults with the task kind's exact,
/// order-canonical merge:
///
///  - kLeafMoments: every per-(leaf, block) SufficientStats, merged in
///    ascending global block order via SufficientStats::Merge. Shards
///    return blocks in order and are themselves visited in row order, so
///    the fold replays the canonical block fold of AccumulateRowBlocks
///    exactly — the merged moments are bit-identical to an unsharded
///    accumulation, at any shard count. Snap evidence (max |Δy|) folds
///    exactly because max is associative.
///  - kSignalStats: the per-block shortlist moments over the whole diff,
///    merged the same way — bit-identical to AccumulateRangeBlocks.
///  - kErrorPartials: per-(probe, block) ErrorPartials merged in ascending
///    block order — the exact Σ|y − ŷ| a central canonical fold computes,
///    so shard-derived MAE is bit-identical to centrally evaluated MAE.
///  - kScorePartials: per-(probe, block) ScorePartials merged the same way.
///    The Σ chain replays kErrorPartials' fold exactly, and the exact count
///    is an integer tally (order-free), so the merged accuracy is
///    bit-identical to a central canonical fold of the same probe.
///
/// The engine re-solves fits and decisions from the merged currencies
/// through its ordinary machinery, so ranked output is bit-identical to the
/// unsharded engine. See docs/distributed.md for the full contract.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/stop_token.h"
#include "distributed/backend.h"
#include "distributed/shard_planner.h"

namespace charles {

class ThreadPool;

/// \brief One leaf's exact cross-shard rollup (kLeafMoments).
struct LeafRollup {
  /// Merged moments over the leaf's full row set (shortlist feature order).
  SufficientStats stats;
  /// max |y_new − y_old| over the leaf — the central no-change decision
  /// consumes this instead of rescanning the leaf's rows.
  double max_abs_delta = 0.0;
  /// Block partials folded into `stats`.
  int64_t blocks_merged = 0;
};

/// \brief One probe's exact cross-shard rollup (kErrorPartials).
struct ProbeRollup {
  /// Merged Σ|y − ŷ| and row count over the probe's leaf.
  ErrorPartials partials;
  /// Block partials folded into `partials`.
  int64_t blocks_merged = 0;
};

/// \brief One probe's exact cross-shard rollup (kScorePartials).
struct ScoreRollup {
  /// Merged (Σ|y − ŷ|, exact count, n) over the probe's leaf.
  ScorePartials partials;
  /// Block partials folded into `partials`.
  int64_t blocks_merged = 0;
};

/// \brief The coordinator's merged view of one completed task sweep.
///
/// Only the fields of the task's kind carry data.
struct CoordinatorTaskResult {
  ShardTaskKind kind = ShardTaskKind::kLeafMoments;
  /// kLeafMoments: one rollup per *requested* leaf, in ShardTask::leaves
  /// order.
  std::vector<LeafRollup> leaves;
  /// kSignalStats: merged shortlist moments over the whole diff + the
  /// folded delta evidence.
  SufficientStats signal_stats;
  double signal_max_abs_delta = 0.0;
  int64_t signal_rows_changed = 0;
  /// kErrorPartials: one rollup per ShardTask::probes entry, same order.
  std::vector<ProbeRollup> probes;
  /// kScorePartials: one rollup per ShardTask::probes entry, same order.
  std::vector<ScoreRollup> score_probes;

  int64_t shards_executed = 0;
  int64_t rows_scanned = 0;   ///< summed over shards
  int64_t blocks_merged = 0;  ///< summed over rollups
  double elapsed_seconds = 0.0;
  /// \name Batched-fold diagnostics, folded over shards (batch_fold.h):
  /// staged/folded sums, max over any shard's widest block batch.
  /// @{
  int64_t batch_blocks_staged = 0;
  int64_t batch_accumulators_folded = 0;
  int64_t batch_max_accumulators_per_block = 0;
  /// @}
};

/// \brief Legacy merged view of a whole-input kLeafMoments sweep.
struct CoordinatorResult {
  /// One rollup per ShardInput leaf, same order.
  std::vector<LeafRollup> leaves;
  int64_t shards_executed = 0;
  int64_t rows_scanned = 0;    ///< summed over shards
  int64_t blocks_merged = 0;   ///< summed over leaves
  double elapsed_seconds = 0.0;
};

/// \brief Fans tasks out over a backend and merges the results.
class Coordinator {
 public:
  /// Executes `task` on every shard of `plan` via `backend` — concurrently
  /// over `pool` when non-null, serially otherwise — and merges with the
  /// kind's exact fold. Fails with the first shard error, or
  /// Status::Cancelled when `stop` is triggered (checked before each shard
  /// dispatch; in-flight shards complete).
  static Result<CoordinatorTaskResult> RunTask(const ShardInput& input,
                                               const ShardPlan& plan,
                                               ShardBackend* backend,
                                               ThreadPool* pool,
                                               const ShardTask& task,
                                               const StopToken* stop = nullptr);

  /// Legacy entry point: the kLeafMoments task over every input leaf.
  static Result<CoordinatorResult> Run(const ShardInput& input,
                                       const ShardPlan& plan, ShardBackend* backend,
                                       ThreadPool* pool,
                                       const StopToken* stop = nullptr);
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_COORDINATOR_H_
