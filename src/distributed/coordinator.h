#ifndef CHARLES_DISTRIBUTED_COORDINATOR_H_
#define CHARLES_DISTRIBUTED_COORDINATOR_H_

/// \file
/// \brief Coordinator of a distributed leaf-statistics sweep.
///
/// The coordinator owns the fan-out/merge half of the coordinator/worker
/// split (the half Roussakis-style change-detection frameworks centralize):
/// it dispatches every ShardRange of a plan to a ShardBackend — concurrently
/// over the run's thread pool when one is available — and folds the
/// ShardResults into one LeafRollup per partition leaf:
///
///  - moments: every per-block SufficientStats, merged in ascending global
///    block order via SufficientStats::Merge. Shards return blocks in order
///    and are themselves visited in row order, so the fold replays the
///    canonical block fold of AccumulateRowBlocks exactly — the merged
///    moments are bit-identical to an unsharded accumulation, at any shard
///    count;
///  - snap evidence: max |y_new − y_old| folded across shards (max is
///    exactly associative);
///  - diagnostics: rows scanned and blocks merged, summed.
///
/// The engine then re-solves every leaf fit from the merged moments through
/// its ordinary phase-3 machinery, so ranked output is bit-identical to the
/// unsharded engine. See docs/distributed.md for the full contract.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/stop_token.h"
#include "distributed/backend.h"
#include "distributed/shard_planner.h"

namespace charles {

class ThreadPool;

/// \brief One leaf's exact cross-shard rollup.
struct LeafRollup {
  /// Merged moments over the leaf's full row set (shortlist feature order).
  SufficientStats stats;
  /// max |y_new − y_old| over the leaf — the central no-change decision
  /// consumes this instead of rescanning the leaf's rows.
  double max_abs_delta = 0.0;
  /// Block partials folded into `stats`.
  int64_t blocks_merged = 0;
};

/// \brief The coordinator's merged view of a completed plan.
struct CoordinatorResult {
  /// One rollup per ShardInput leaf, same order.
  std::vector<LeafRollup> leaves;
  int64_t shards_executed = 0;
  int64_t rows_scanned = 0;    ///< summed over shards
  int64_t blocks_merged = 0;   ///< summed over leaves
  double elapsed_seconds = 0.0;
};

/// \brief Fans a plan out over a backend and merges the results.
class Coordinator {
 public:
  /// Executes every shard of `plan` via `backend` — concurrently over
  /// `pool` when non-null, serially otherwise — and merges. Fails with the
  /// first shard error, or Status::Cancelled when `stop` is triggered
  /// (checked before each shard dispatch; in-flight shards complete).
  static Result<CoordinatorResult> Run(const ShardInput& input,
                                       const ShardPlan& plan, ShardBackend* backend,
                                       ThreadPool* pool,
                                       const StopToken* stop = nullptr);
};

}  // namespace charles

#endif  // CHARLES_DISTRIBUTED_COORDINATOR_H_
