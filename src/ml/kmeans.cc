#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace charles {

namespace {

double SquaredDistance(const double* a, const double* b, int64_t d) {
  double sum = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

/// k-means++ initialization: first centroid uniform, subsequent ones sampled
/// proportional to squared distance from the nearest chosen centroid.
Matrix PlusPlusInit(const Matrix& points, int k, Rng* rng) {
  int64_t n = points.rows();
  int64_t d = points.cols();
  Matrix centroids(k, d);
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  int64_t first = rng->UniformInt(0, n - 1);
  for (int64_t c = 0; c < d; ++c) centroids.At(0, c) = points.At(first, c);
  for (int next = 1; next < k; ++next) {
    for (int64_t i = 0; i < n; ++i) {
      double dist = SquaredDistance(points.RowPtr(i), centroids.RowPtr(next - 1), d);
      min_dist[static_cast<size_t>(i)] =
          std::min(min_dist[static_cast<size_t>(i)], dist);
    }
    double total = std::accumulate(min_dist.begin(), min_dist.end(), 0.0);
    int64_t chosen;
    if (total <= 1e-300) {
      chosen = rng->UniformInt(0, n - 1);  // all points identical
    } else {
      chosen = static_cast<int64_t>(rng->WeightedIndex(min_dist));
    }
    for (int64_t c = 0; c < d; ++c) centroids.At(next, c) = points.At(chosen, c);
  }
  return centroids;
}

struct LloydOutcome {
  std::vector<int> labels;
  Matrix centroids;
  double inertia = 0.0;
  int iterations = 0;
};

LloydOutcome RunLloyd(const Matrix& points, int k, Matrix centroids,
                      const KMeansOptions& options, Rng* rng) {
  int64_t n = points.rows();
  int64_t d = points.cols();
  std::vector<int> labels(static_cast<size_t>(n), 0);
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    // Assignment step.
    for (int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_label = 0;
      for (int c = 0; c < k; ++c) {
        double dist = SquaredDistance(points.RowPtr(i), centroids.RowPtr(c), d);
        if (dist < best) {
          best = dist;
          best_label = c;
        }
      }
      labels[static_cast<size_t>(i)] = best_label;
    }
    // Update step.
    Matrix new_centroids(k, d);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < n; ++i) {
      int label = labels[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(label)];
      for (int64_t c = 0; c < d; ++c) new_centroids.At(label, c) += points.At(i, c);
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Empty cluster: re-seed at a random point (deterministic under seed).
        int64_t replacement = rng->UniformInt(0, n - 1);
        for (int64_t col = 0; col < d; ++col) {
          new_centroids.At(c, col) = points.At(replacement, col);
        }
      } else {
        for (int64_t col = 0; col < d; ++col) {
          new_centroids.At(c, col) /= static_cast<double>(counts[static_cast<size_t>(c)]);
        }
      }
    }
    // Convergence: total squared centroid movement.
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      movement += SquaredDistance(centroids.RowPtr(c), new_centroids.RowPtr(c), d);
    }
    centroids = std::move(new_centroids);
    if (movement <= options.tolerance) {
      ++iteration;
      break;
    }
  }
  double inertia = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    inertia += SquaredDistance(points.RowPtr(i),
                               centroids.RowPtr(labels[static_cast<size_t>(i)]), d);
  }
  return LloydOutcome{std::move(labels), std::move(centroids), inertia, iteration};
}

}  // namespace

Result<KMeansResult> KMeans::Fit(const Matrix& points, int k, const KMeansOptions& options) {
  int64_t n = points.rows();
  if (n == 0) return Status::InvalidArgument("KMeans: no points");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("KMeans: k=" + std::to_string(k) +
                                   " outside [1, " + std::to_string(n) + "]");
  }
  Rng rng(options.seed);
  LloydOutcome best;
  best.inertia = std::numeric_limits<double>::max();
  int restarts = std::max(1, options.num_restarts);
  for (int r = 0; r < restarts; ++r) {
    Matrix init = PlusPlusInit(points, k, &rng);
    LloydOutcome outcome = RunLloyd(points, k, std::move(init), options, &rng);
    if (outcome.inertia < best.inertia) best = std::move(outcome);
  }
  KMeansResult result;
  result.k = k;
  result.labels = std::move(best.labels);
  result.centroids = std::move(best.centroids);
  result.inertia = best.inertia;
  result.iterations = best.iterations;
  return result;
}

double SilhouetteScore(const Matrix& points, const std::vector<int>& labels,
                       int64_t max_samples, uint64_t seed) {
  int64_t n = points.rows();
  CHARLES_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  if (n < 3) return 0.0;
  int k = 0;
  for (int label : labels) k = std::max(k, label + 1);
  // Count non-empty clusters.
  std::vector<int64_t> cluster_sizes(static_cast<size_t>(k), 0);
  for (int label : labels) ++cluster_sizes[static_cast<size_t>(label)];
  int effective = 0;
  for (int64_t size : cluster_sizes) {
    if (size > 0) ++effective;
  }
  if (effective < 2) return 0.0;

  // Deterministic subsample for O(n^2) distance sums.
  std::vector<int64_t> sample(static_cast<size_t>(n));
  std::iota(sample.begin(), sample.end(), int64_t{0});
  if (n > max_samples) {
    Rng rng(seed);
    rng.Shuffle(&sample);
    sample.resize(static_cast<size_t>(max_samples));
  }

  int64_t d = points.cols();
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t idx : sample) {
    int own = labels[static_cast<size_t>(idx)];
    if (cluster_sizes[static_cast<size_t>(own)] < 2) continue;  // silhouette 0
    std::vector<double> dist_sum(static_cast<size_t>(k), 0.0);
    std::vector<int64_t> dist_count(static_cast<size_t>(k), 0);
    for (int64_t j = 0; j < n; ++j) {
      if (j == idx) continue;
      double dist = std::sqrt(SquaredDistance(points.RowPtr(idx), points.RowPtr(j), d));
      int lj = labels[static_cast<size_t>(j)];
      dist_sum[static_cast<size_t>(lj)] += dist;
      ++dist_count[static_cast<size_t>(lj)];
    }
    double a = dist_sum[static_cast<size_t>(own)] /
               static_cast<double>(dist_count[static_cast<size_t>(own)]);
    double b = std::numeric_limits<double>::max();
    for (int c = 0; c < k; ++c) {
      if (c == own || dist_count[static_cast<size_t>(c)] == 0) continue;
      b = std::min(b, dist_sum[static_cast<size_t>(c)] /
                          static_cast<double>(dist_count[static_cast<size_t>(c)]));
    }
    double denom = std::max(a, b);
    total += denom > 1e-300 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

Result<KMeansResult> FitBestK(const Matrix& points, int k_min, int k_max,
                              const KMeansOptions& options, double min_silhouette) {
  if (k_min < 1 || k_max < k_min) {
    return Status::InvalidArgument("FitBestK: bad k range");
  }
  k_max = static_cast<int>(std::min<int64_t>(k_max, points.rows()));
  k_min = std::min(k_min, k_max);

  Result<KMeansResult> single = KMeans::Fit(points, std::max(1, k_min), options);
  CHARLES_RETURN_NOT_OK(single.status());
  KMeansResult best = std::move(*single);
  double best_silhouette = best.k >= 2 ? SilhouetteScore(points, best.labels) : 0.0;

  for (int k = std::max(2, k_min + (best.k == k_min ? 1 : 0)); k <= k_max; ++k) {
    if (k == best.k) continue;
    Result<KMeansResult> fit = KMeans::Fit(points, k, options);
    if (!fit.ok()) continue;
    double silhouette = SilhouetteScore(points, fit->labels);
    if (silhouette > best_silhouette) {
      best = std::move(*fit);
      best_silhouette = silhouette;
    }
  }
  // Collapse to one cluster when no split is convincingly structured.
  if (best.k > 1 && best_silhouette < min_silhouette && k_min == 1) {
    return KMeans::Fit(points, 1, options);
  }
  return best;
}

}  // namespace charles
