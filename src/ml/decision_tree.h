#ifndef CHARLES_ML_DECISION_TREE_H_
#define CHARLES_ML_DECISION_TREE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "table/row_set.h"
#include "table/table.h"

namespace charles {

/// \brief Options for DecisionTree::Fit.
struct DecisionTreeOptions {
  /// Maximum tree depth. Depth bounds the number of descriptors per
  /// condition, so this is effectively the paper's condition-complexity cap
  /// (set from CharlesOptions.max_condition_attrs).
  int max_depth = 3;
  /// Minimum rows per leaf.
  int64_t min_leaf_size = 1;
  /// A split must reduce weighted Gini impurity by at least this much.
  double min_impurity_decrease = 1e-9;
  /// Cap on equality-split candidates per categorical attribute (most
  /// frequent values first). Also bounds the size of IN-set splits.
  int max_categorical_values = 32;
  /// Cap on evaluated thresholds per numeric attribute per node; boundaries
  /// are thinned evenly when a node has more distinct values than this.
  int max_numeric_thresholds = 64;
  /// Consider grouped categorical splits (`dept IN ('POL', 'FRS', 'COR')`)
  /// built from values sharing a majority label, alongside single-value
  /// equality splits.
  bool enable_in_splits = true;
  /// Replace raw midpoint thresholds with the "nicest" partition-equivalent
  /// value in the gap (e.g. `exp < 3` instead of `exp < 2.5`) — the
  /// normality desideratum applied where it is free.
  bool snap_numeric_thresholds = true;
};

/// \brief A node of a fitted classification tree.
///
/// Internal nodes carry the YES-branch predicate and its exact negation, so
/// root-to-leaf paths conjoin into clean conditions
/// (`edu = 'MS' AND exp >= 3`).
struct DecisionTreeNode {
  bool is_leaf = true;
  int majority_label = 0;
  /// Fraction of in-node rows carrying the majority label.
  double purity = 1.0;
  int64_t count = 0;
  /// Rows of the training table reaching this node (populated on leaves).
  RowSet rows;

  ExprPtr condition;  ///< YES-branch predicate (internal nodes only).
  ExprPtr negation;   ///< NO-branch predicate, exact complement.
  std::unique_ptr<DecisionTreeNode> yes;
  std::unique_ptr<DecisionTreeNode> no;

  /// \name Split metadata (internal nodes), used to simplify leaf conditions
  /// (e.g. collapsing `exp < 4 AND exp < 2` into `exp < 2`).
  /// @{
  enum class SplitKind { kNumericLess, kCategoricalEq, kCategoricalIn };
  SplitKind split_kind = SplitKind::kNumericLess;
  std::string split_column;
  Value split_value;                ///< Equality value or numeric threshold.
  std::vector<Value> split_values;  ///< IN-set members (kCategoricalIn).
  /// @}
};

/// \brief Decoded column data shared across many tree fits.
///
/// Extracting a column out of Value boxing (raw doubles for numeric
/// attributes, dictionary codes for categoricals) costs O(n) per attribute;
/// the ChARLES engine fits thousands of trees over the same handful of
/// attributes, so it decodes each attribute once and passes the cache to
/// every DecisionTree::Fit.
class TreeAttributeCache {
 public:
  struct NumericAttr {
    std::string name;
    bool is_integer = false;
    std::vector<double> values;  ///< Per table row; undefined where invalid.
    std::vector<char> valid;     ///< 1 = non-NULL.
    /// Valid rows ordered by value; lets every node sweep thresholds in
    /// sorted order without re-sorting (the dominant cost of tree fitting).
    std::vector<int64_t> sorted_rows;
  };
  struct CategoricalAttr {
    std::string name;
    std::vector<int> codes;      ///< Dictionary code per row; -1 = NULL.
    std::vector<Value> dict;     ///< Code -> value.
  };

  /// Decodes the given columns of `table`. Indices must be valid.
  static Result<TreeAttributeCache> Build(const Table& table,
                                          const std::vector<int>& attr_indices);

  /// The decoded attribute for a column index, or nullptr if not cached /
  /// wrong family.
  const NumericAttr* Numeric(int column_index) const;
  const CategoricalAttr* Categorical(int column_index) const;

 private:
  std::unordered_map<int, NumericAttr> numeric_;
  std::unordered_map<int, CategoricalAttr> categorical_;
};

/// \brief CART-style classifier used to *describe* clusters.
///
/// ChARLES clusters rows in residual space and then needs attribute-space
/// conditions that identify each cluster — this tree provides them: fit with
/// cluster ids as labels over the candidate condition attributes, then read
/// each leaf's root path as a partition condition.
class DecisionTree {
 public:
  /// A leaf with its path condition.
  struct Leaf {
    ExprPtr condition;   ///< Conjunction of edge predicates from the root.
    RowSet rows;         ///< Training rows reaching the leaf.
    int majority_label = 0;
    double purity = 1.0;
  };

  /// Fits on `rows` of `table`, using the attributes at `attr_indices` as
  /// split candidates and `labels` (one per *table* row; only entries for
  /// `rows` are read) as classes. When `cache` is non-null it must have been
  /// built over this table and cover every attribute in `attr_indices`; the
  /// fit then skips column decoding entirely.
  static Result<DecisionTree> Fit(const Table& table, const RowSet& rows,
                                  const std::vector<int>& attr_indices,
                                  const std::vector<int>& labels,
                                  const DecisionTreeOptions& options = {},
                                  const TreeAttributeCache* cache = nullptr);

  const DecisionTreeNode& root() const { return *root_; }

  /// \brief Leaves in left-to-right (YES-first) order, with their simplified
  /// path conditions.
  ///
  /// Collected once at Fit() time (the same traversal also scores training
  /// accuracy), so this accessor is free — callers that previously cached
  /// the result of Leaves() can read it per use instead.
  const std::vector<Leaf>& leaves() const { return leaves_; }

  /// Copying alias of leaves(), kept for callers that need ownership.
  std::vector<Leaf> Leaves() const { return leaves_; }

  /// Label of the leaf a row falls into.
  Result<int> PredictRow(const Table& table, int64_t row) const;

  int num_leaves() const;
  int depth() const;

  /// Fraction of training rows whose leaf majority matches their label.
  double training_accuracy() const { return training_accuracy_; }

 private:
  std::unique_ptr<DecisionTreeNode> root_;
  std::vector<Leaf> leaves_;  ///< Collected once at Fit() time.
  double training_accuracy_ = 0.0;
};

}  // namespace charles

#endif  // CHARLES_ML_DECISION_TREE_H_
