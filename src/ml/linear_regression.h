#ifndef CHARLES_ML_LINEAR_REGRESSION_H_
#define CHARLES_ML_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/suffstats.h"

namespace charles {

/// \brief A fitted linear model: y ≈ intercept + Σ coefficients[i] · x_i.
///
/// This is the "transformation" half of a conditional transformation; its
/// coefficients are what normality snapping rounds and what the Figure-2
/// leaves display (`bonus_new = 1.05 × bonus_old + 1000`).
struct LinearModel {
  double intercept = 0.0;
  std::vector<double> coefficients;
  std::vector<std::string> feature_names;

  /// \name Fit diagnostics over the training rows.
  /// @{
  double r2 = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  /// @}

  double Predict(const std::vector<double>& x) const;
  std::vector<double> PredictBatch(const Matrix& x) const;

  /// intercept + Σ coefficients[i] · row[i] over coefficients.size() values.
  /// The one dot-product every prediction path funnels through, so all of
  /// them accumulate in the same order (bit-identical results regardless of
  /// which path computed a prediction).
  double PredictRow(const double* row) const {
    double y = intercept;
    for (size_t i = 0; i < coefficients.size(); ++i) y += coefficients[i] * row[i];
    return y;
  }

  /// Number of features with a non-zero coefficient — the paper's
  /// transformation complexity measure.
  int NumActiveTerms(double tolerance = 1e-12) const;

  /// `target = 1.05 × bonus_old + 1000` style rendering.
  std::string ToString(const std::string& target_name) const;
};

/// \brief Options for LinearRegression::Fit.
struct LinearRegressionOptions {
  /// Regularization used only by the fallback path when plain QR fails
  /// (collinear or underdetermined designs).
  double ridge_lambda = 1e-6;
};

/// \brief Ordinary least squares with a ridge fallback.
///
/// Primary path is Householder QR on the raw design matrix (exact
/// coefficients for well-posed systems — crucial for recovering "nice"
/// planted policies like 1.05·x + 1000). Rank-deficient or underdetermined
/// designs fall back to standardized ridge regression, which always
/// produces a finite model.
class LinearRegression {
 public:
  /// Fits y on the columns of x. feature_names must match x's column count;
  /// x and y must have matching row counts and at least one row.
  static Result<LinearModel> Fit(const Matrix& x, const std::vector<double>& y,
                                 std::vector<std::string> feature_names,
                                 const LinearRegressionOptions& options = {});

  /// \brief Fast path: the same fit from pre-accumulated sufficient
  /// statistics, at O(p³) — independent of row count.
  ///
  /// `subset` selects the features (indices into the stats' feature order);
  /// `feature_names` must match the subset's size and order. Diagnostics
  /// come from the moments alone: r2/rmse exact, mae the Gaussian-residual
  /// estimate (see SufficientStats::Solution). Fails — instead of answering
  /// noisily — on underdetermined or ill-conditioned systems; callers fall
  /// back to Fit(), whose QR/ridge ladder handles those cases from rows.
  static Result<LinearModel> FitFromStats(const SufficientStats& stats,
                                          const std::vector<int>& subset,
                                          std::vector<std::string> feature_names);
};

}  // namespace charles

#endif  // CHARLES_ML_LINEAR_REGRESSION_H_
