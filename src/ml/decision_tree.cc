#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace charles {

namespace {

/// Gini impurity from a per-label count vector.
double Gini(const std::vector<int64_t>& counts, int64_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (int64_t c : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double WeightedChildGini(const std::vector<int64_t>& yes_counts, int64_t yes_total,
                         const std::vector<int64_t>& no_counts, int64_t no_total) {
  double total = static_cast<double>(yes_total + no_total);
  return (static_cast<double>(yes_total) * Gini(yes_counts, yes_total) +
          static_cast<double>(no_total) * Gini(no_counts, no_total)) /
         total;
}

/// The "nicest" value t with lo < t <= hi, used as a partition-equivalent
/// numeric threshold (`x < t` splits identically for any t in that range
/// because no data value falls strictly between lo and hi).
double NiceThreshold(double lo, double hi) {
  static const double kLattices[] = {1000, 500, 100, 50, 10, 5, 1, 0.5, 0.1, 0.05, 0.01};
  for (double step : kLattices) {
    // Smallest multiple of `step` strictly greater than lo.
    double candidate = std::floor(lo / step + 1.0) * step;
    if (candidate <= lo) candidate += step;  // floating-point guard
    if (candidate > lo && candidate <= hi) return candidate;
  }
  return (lo + hi) / 2.0;
}

/// One fully-described split choice; rows are materialized only for the
/// winner, after scoring every candidate from histograms/sweeps.
struct SplitChoice {
  double impurity_decrease = -1.0;
  int attr_position = -1;  ///< Index into the builder's cached attributes.
  DecisionTreeNode::SplitKind kind = DecisionTreeNode::SplitKind::kNumericLess;
  double threshold = 0.0;   ///< kNumericLess.
  int code = -1;            ///< kCategoricalEq.
  std::vector<int> codes;   ///< kCategoricalIn.
};

class TreeBuilder {
 public:
  TreeBuilder(const std::vector<int>& labels, int num_labels,
              const DecisionTreeOptions& options, const TreeAttributeCache& cache,
              const std::vector<int>& attr_indices)
      : labels_(labels), num_labels_(num_labels), options_(options) {
    for (int col : attr_indices) {
      if (const auto* numeric = cache.Numeric(col)) {
        attrs_.push_back(AttrRef{true, numeric, nullptr});
      } else if (const auto* categorical = cache.Categorical(col)) {
        attrs_.push_back(AttrRef{false, nullptr, categorical});
      }
    }
    node_stamp_.assign(labels.size(), 0);
  }

  std::unique_ptr<DecisionTreeNode> Build(const std::vector<int64_t>& rows, int depth) {
    auto node = std::make_unique<DecisionTreeNode>();
    std::vector<int64_t> counts(static_cast<size_t>(num_labels_), 0);
    for (int64_t row : rows) ++counts[static_cast<size_t>(labels_[static_cast<size_t>(row)])];
    int64_t best_count = -1;
    int distinct = 0;
    for (int label = 0; label < num_labels_; ++label) {
      int64_t c = counts[static_cast<size_t>(label)];
      if (c > 0) ++distinct;
      if (c > best_count) {
        best_count = c;
        node->majority_label = label;
      }
    }
    node->count = static_cast<int64_t>(rows.size());
    node->purity = rows.empty() ? 1.0
                                : static_cast<double>(best_count) /
                                      static_cast<double>(rows.size());

    bool can_split = depth < options_.max_depth && distinct > 1 &&
                     static_cast<int64_t>(rows.size()) >= 2 * options_.min_leaf_size;
    if (can_split) {
      SplitChoice best = FindBestSplit(rows, counts);
      if (best.impurity_decrease >= options_.min_impurity_decrease) {
        ApplySplit(best, rows, node.get());
        std::vector<int64_t> yes_rows;
        std::vector<int64_t> no_rows;
        PartitionRows(best, rows, &yes_rows, &no_rows);
        node->is_leaf = false;
        node->yes = Build(yes_rows, depth + 1);
        node->no = Build(no_rows, depth + 1);
        return node;
      }
    }
    node->is_leaf = true;
    node->rows = RowSet(rows);
    return node;
  }

 private:
  using NumericAttr = TreeAttributeCache::NumericAttr;
  using CategoricalAttr = TreeAttributeCache::CategoricalAttr;
  struct AttrRef {
    bool numeric;
    const NumericAttr* num;
    const CategoricalAttr* cat;
  };

  SplitChoice FindBestSplit(const std::vector<int64_t>& rows,
                            const std::vector<int64_t>& node_counts) {
    SplitChoice best;
    // Stamp the node's rows so numeric sweeps can filter the cache's
    // presorted global order in O(total rows) without clearing a bitmap.
    ++current_stamp_;
    for (int64_t row : rows) node_stamp_[static_cast<size_t>(row)] = current_stamp_;
    double parent_gini = Gini(node_counts, static_cast<int64_t>(rows.size()));
    for (size_t position = 0; position < attrs_.size(); ++position) {
      const AttrRef& ref = attrs_[position];
      if (ref.numeric) {
        ScoreNumericSplits(rows, node_counts, parent_gini, static_cast<int>(position),
                           *ref.num, &best);
      } else {
        ScoreCategoricalSplits(rows, node_counts, parent_gini, static_cast<int>(position),
                               *ref.cat, &best);
      }
    }
    return best;
  }

  void ScoreCategoricalSplits(const std::vector<int64_t>& rows,
                              const std::vector<int64_t>& node_counts,
                              double parent_gini, int attr_position,
                              const CategoricalAttr& attr, SplitChoice* best) {
    // Joint (code, label) histogram over the node's rows, dense over the
    // dictionary; NULLs implicitly fall into the NO side of every candidate.
    size_t dict_size = attr.dict.size();
    std::vector<int64_t> histogram(dict_size * static_cast<size_t>(num_labels_), 0);
    std::vector<int64_t> code_totals(dict_size, 0);
    for (int64_t row : rows) {
      int code = attr.codes[static_cast<size_t>(row)];
      if (code < 0) continue;
      ++histogram[static_cast<size_t>(code) * static_cast<size_t>(num_labels_) +
                  static_cast<size_t>(labels_[static_cast<size_t>(row)])];
      ++code_totals[static_cast<size_t>(code)];
    }
    size_t present_codes = 0;
    for (int64_t total : code_totals) {
      if (total > 0) ++present_codes;
    }
    if (present_codes < 2) return;
    auto code_counts = [&](int code) {
      std::vector<int64_t> counts(static_cast<size_t>(num_labels_));
      for (int l = 0; l < num_labels_; ++l) {
        counts[static_cast<size_t>(l)] =
            histogram[static_cast<size_t>(code) * static_cast<size_t>(num_labels_) +
                      static_cast<size_t>(l)];
      }
      return counts;
    };
    int64_t node_total = static_cast<int64_t>(rows.size());

    auto consider = [&](const std::vector<int64_t>& yes_counts, int64_t yes_total,
                        auto&& record) {
      int64_t no_total = node_total - yes_total;
      if (yes_total < options_.min_leaf_size || no_total < options_.min_leaf_size) return;
      std::vector<int64_t> no_counts(static_cast<size_t>(num_labels_));
      for (int label = 0; label < num_labels_; ++label) {
        no_counts[static_cast<size_t>(label)] =
            node_counts[static_cast<size_t>(label)] - yes_counts[static_cast<size_t>(label)];
      }
      double decrease =
          parent_gini - WeightedChildGini(yes_counts, yes_total, no_counts, no_total);
      if (decrease > best->impurity_decrease) {
        best->impurity_decrease = decrease;
        best->attr_position = attr_position;
        record();
      }
    };

    // Equality splits, capped at the most frequent codes.
    std::vector<std::pair<int64_t, int>> by_frequency;  // (count, code)
    for (size_t code = 0; code < dict_size; ++code) {
      if (code_totals[code] > 0) {
        by_frequency.emplace_back(code_totals[code], static_cast<int>(code));
      }
    }
    std::sort(by_frequency.begin(), by_frequency.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    size_t eq_limit = std::min(by_frequency.size(),
                               static_cast<size_t>(options_.max_categorical_values));
    for (size_t i = 0; i < eq_limit; ++i) {
      int code = by_frequency[i].second;
      consider(code_counts(code), by_frequency[i].first, [&] {
        best->kind = DecisionTreeNode::SplitKind::kCategoricalEq;
        best->code = code;
        best->codes.clear();
      });
    }

    // IN-set splits: group codes by their in-node majority label. Groups are
    // tried smallest-first so that of two complementary splits with equal
    // impurity decrease, the one listing fewer values wins (deterministically):
    // `dept IN ('POL','FRS','COR')` reads better than the 5-value complement.
    if (options_.enable_in_splits) {
      std::unordered_map<int, std::vector<int>> by_majority;  // label -> codes
      for (size_t code = 0; code < dict_size; ++code) {
        if (code_totals[code] == 0) continue;
        int majority = 0;
        int64_t top = -1;
        for (int label = 0; label < num_labels_; ++label) {
          int64_t c = histogram[code * static_cast<size_t>(num_labels_) +
                                static_cast<size_t>(label)];
          if (c > top) {
            top = c;
            majority = label;
          }
        }
        by_majority[majority].push_back(static_cast<int>(code));
      }
      std::vector<std::pair<int, std::vector<int>>> groups(by_majority.begin(),
                                                           by_majority.end());
      for (auto& [label, codes] : groups) std::sort(codes.begin(), codes.end());
      std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
        if (a.second.size() != b.second.size()) return a.second.size() < b.second.size();
        return a.second < b.second;
      });
      for (auto& [label, codes] : groups) {
        if (codes.size() < 2 || codes.size() >= present_codes ||
            codes.size() > static_cast<size_t>(options_.max_categorical_values)) {
          continue;
        }
        std::vector<int64_t> yes_counts(static_cast<size_t>(num_labels_), 0);
        int64_t yes_total = 0;
        for (int code : codes) {
          for (int l = 0; l < num_labels_; ++l) {
            yes_counts[static_cast<size_t>(l)] +=
                histogram[static_cast<size_t>(code) * static_cast<size_t>(num_labels_) +
                          static_cast<size_t>(l)];
          }
          yes_total += code_totals[static_cast<size_t>(code)];
        }
        std::vector<int> codes_copy = codes;
        consider(yes_counts, yes_total, [&] {
          best->kind = DecisionTreeNode::SplitKind::kCategoricalIn;
          best->codes = codes_copy;
          best->code = -1;
        });
      }
    }
  }

  void ScoreNumericSplits(const std::vector<int64_t>& rows,
                          const std::vector<int64_t>& node_counts, double parent_gini,
                          int attr_position, const NumericAttr& attr, SplitChoice* best) {
    // Stream the node's (value, label) pairs in presorted order (the cache
    // keeps a per-attribute global sort; node membership is a stamp check).
    std::vector<std::pair<double, int>> pairs;
    pairs.reserve(rows.size());
    for (int64_t row : attr.sorted_rows) {
      if (node_stamp_[static_cast<size_t>(row)] != current_stamp_) continue;
      pairs.emplace_back(attr.values[static_cast<size_t>(row)],
                         labels_[static_cast<size_t>(row)]);
    }
    if (pairs.size() < 2) return;

    // Boundaries between adjacent distinct values.
    std::vector<size_t> boundaries;  // index i: split between pairs[i-1], pairs[i]
    for (size_t i = 1; i < pairs.size(); ++i) {
      if (pairs[i - 1].first < pairs[i].first) boundaries.push_back(i);
    }
    if (boundaries.empty()) return;
    size_t stride = 1;
    if (static_cast<int>(boundaries.size()) > options_.max_numeric_thresholds) {
      stride = (boundaries.size() + static_cast<size_t>(options_.max_numeric_thresholds) - 1) /
               static_cast<size_t>(options_.max_numeric_thresholds);
    }

    int64_t node_total = static_cast<int64_t>(rows.size());
    std::vector<int64_t> left_counts(static_cast<size_t>(num_labels_), 0);
    size_t consumed = 0;
    for (size_t b = 0; b < boundaries.size(); b += stride) {
      size_t boundary = boundaries[b];
      while (consumed < boundary) {
        ++left_counts[static_cast<size_t>(pairs[consumed].second)];
        ++consumed;
      }
      int64_t yes_total = static_cast<int64_t>(boundary);
      int64_t no_total = node_total - yes_total;  // includes NULL rows
      if (yes_total < options_.min_leaf_size || no_total < options_.min_leaf_size) {
        continue;
      }
      std::vector<int64_t> no_counts(static_cast<size_t>(num_labels_));
      for (int label = 0; label < num_labels_; ++label) {
        no_counts[static_cast<size_t>(label)] =
            node_counts[static_cast<size_t>(label)] - left_counts[static_cast<size_t>(label)];
      }
      double decrease =
          parent_gini - WeightedChildGini(left_counts, yes_total, no_counts, no_total);
      if (decrease > best->impurity_decrease) {
        double lo = pairs[boundary - 1].first;
        double hi = pairs[boundary].first;
        best->impurity_decrease = decrease;
        best->attr_position = attr_position;
        best->kind = DecisionTreeNode::SplitKind::kNumericLess;
        best->threshold = options_.snap_numeric_thresholds ? NiceThreshold(lo, hi)
                                                           : (lo + hi) / 2.0;
        best->codes.clear();
        best->code = -1;
      }
    }
  }

  /// Fills the node's condition/negation expressions and split metadata.
  void ApplySplit(const SplitChoice& choice, const std::vector<int64_t>& rows,
                  DecisionTreeNode* node) {
    (void)rows;
    const AttrRef& ref = attrs_[static_cast<size_t>(choice.attr_position)];
    node->split_kind = choice.kind;
    if (choice.kind == DecisionTreeNode::SplitKind::kNumericLess) {
      const NumericAttr& attr = *ref.num;
      node->split_column = attr.name;
      Value threshold = attr.is_integer && choice.threshold == std::floor(choice.threshold)
                            ? Value(static_cast<int64_t>(choice.threshold))
                            : Value(choice.threshold);
      node->split_value = threshold;
      node->condition = MakeColumnCompare(attr.name, CompareOp::kLt, threshold);
      node->negation = MakeColumnCompare(attr.name, CompareOp::kGe, threshold);
    } else if (choice.kind == DecisionTreeNode::SplitKind::kCategoricalEq) {
      const CategoricalAttr& attr = *ref.cat;
      node->split_column = attr.name;
      node->split_value = attr.dict[static_cast<size_t>(choice.code)];
      node->condition = MakeColumnCompare(attr.name, CompareOp::kEq, node->split_value);
      node->negation = MakeColumnCompare(attr.name, CompareOp::kNe, node->split_value);
    } else {
      const CategoricalAttr& attr = *ref.cat;
      node->split_column = attr.name;
      node->split_values.clear();
      for (int code : choice.codes) {
        node->split_values.push_back(attr.dict[static_cast<size_t>(code)]);
      }
      node->condition = MakeIn(attr.name, node->split_values);
      node->negation = MakeNot(MakeIn(attr.name, node->split_values));
    }
  }

  void PartitionRows(const SplitChoice& choice, const std::vector<int64_t>& rows,
                     std::vector<int64_t>* yes_rows, std::vector<int64_t>* no_rows) {
    const AttrRef& ref = attrs_[static_cast<size_t>(choice.attr_position)];
    if (choice.kind == DecisionTreeNode::SplitKind::kNumericLess) {
      const NumericAttr& attr = *ref.num;
      for (int64_t row : rows) {
        bool yes = attr.valid[static_cast<size_t>(row)] &&
                   attr.values[static_cast<size_t>(row)] < choice.threshold;
        (yes ? yes_rows : no_rows)->push_back(row);
      }
    } else if (choice.kind == DecisionTreeNode::SplitKind::kCategoricalEq) {
      const CategoricalAttr& attr = *ref.cat;
      for (int64_t row : rows) {
        bool yes = attr.codes[static_cast<size_t>(row)] == choice.code;
        (yes ? yes_rows : no_rows)->push_back(row);
      }
    } else {
      const CategoricalAttr& attr = *ref.cat;
      for (int64_t row : rows) {
        int code = attr.codes[static_cast<size_t>(row)];
        bool yes = code >= 0 && std::binary_search(choice.codes.begin(),
                                                   choice.codes.end(), code);
        (yes ? yes_rows : no_rows)->push_back(row);
      }
    }
  }

  const std::vector<int>& labels_;
  int num_labels_;
  const DecisionTreeOptions& options_;
  std::vector<AttrRef> attrs_;
  std::vector<int> node_stamp_;  ///< Stamp per table row; see FindBestSplit.
  int current_stamp_ = 0;
};

/// Accumulated constraints on one column along a root-to-leaf path. Merging
/// constraints keeps leaf conditions minimal: `exp < 4 AND exp < 2` becomes
/// `exp < 2`, and an equality supersedes prior inequalities on the column.
struct ColumnConstraint {
  std::string column;
  bool numeric = false;
  std::optional<Value> lower;  // from NO branches: col >= v (keep max)
  std::optional<Value> upper;  // from YES branches: col < v (keep min)
  std::optional<Value> equals;
  std::vector<Value> not_equals;
};

class PathState {
 public:
  void ApplySplit(const DecisionTreeNode& node, bool yes_branch) {
    if (node.split_kind == DecisionTreeNode::SplitKind::kCategoricalIn) {
      // IN-set constraints stay as opaque conjuncts (they rarely repeat on a
      // path, so bound-merging buys nothing).
      extra_conjuncts_.push_back(yes_branch ? node.condition : node.negation);
      return;
    }
    ColumnConstraint& c = FindOrAdd(
        node.split_column, node.split_kind == DecisionTreeNode::SplitKind::kNumericLess);
    if (node.split_kind == DecisionTreeNode::SplitKind::kNumericLess) {
      if (yes_branch) {
        if (!c.upper.has_value() || node.split_value < *c.upper) {
          c.upper = node.split_value;
        }
      } else {
        if (!c.lower.has_value() || node.split_value > *c.lower) {
          c.lower = node.split_value;
        }
      }
    } else {
      if (yes_branch) {
        c.equals = node.split_value;
        c.not_equals.clear();
      } else if (!c.equals.has_value()) {
        c.not_equals.push_back(node.split_value);
      }
      // A NO branch below an established equality is implied; nothing to add.
    }
  }

  ExprPtr BuildCondition() const {
    std::vector<ExprPtr> conjuncts;
    for (const ColumnConstraint& c : constraints_) {
      if (c.equals.has_value()) {
        conjuncts.push_back(MakeColumnCompare(c.column, CompareOp::kEq, *c.equals));
        continue;
      }
      for (const Value& v : c.not_equals) {
        conjuncts.push_back(MakeColumnCompare(c.column, CompareOp::kNe, v));
      }
      if (c.lower.has_value()) {
        conjuncts.push_back(MakeColumnCompare(c.column, CompareOp::kGe, *c.lower));
      }
      if (c.upper.has_value()) {
        conjuncts.push_back(MakeColumnCompare(c.column, CompareOp::kLt, *c.upper));
      }
    }
    for (const ExprPtr& extra : extra_conjuncts_) conjuncts.push_back(extra);
    return MakeAnd(std::move(conjuncts));
  }

 private:
  ColumnConstraint& FindOrAdd(const std::string& column, bool numeric) {
    for (ColumnConstraint& c : constraints_) {
      if (c.column == column) return c;
    }
    constraints_.push_back(ColumnConstraint{column, numeric, {}, {}, {}, {}});
    return constraints_.back();
  }

  std::deque<ColumnConstraint> constraints_;  // path order
  std::vector<ExprPtr> extra_conjuncts_;
};

void CollectLeaves(const DecisionTreeNode& node,
                   std::vector<std::pair<const DecisionTreeNode*, bool>>* path,
                   std::vector<DecisionTree::Leaf>* out) {
  if (node.is_leaf) {
    // Rebuild the simplified condition from the branch decisions on the path.
    PathState state;
    for (const auto& [split_node, yes_branch] : *path) {
      state.ApplySplit(*split_node, yes_branch);
    }
    DecisionTree::Leaf leaf;
    leaf.condition = state.BuildCondition();
    leaf.rows = node.rows;
    leaf.majority_label = node.majority_label;
    leaf.purity = node.purity;
    out->push_back(std::move(leaf));
    return;
  }
  path->emplace_back(&node, true);
  CollectLeaves(*node.yes, path, out);
  path->back().second = false;
  CollectLeaves(*node.no, path, out);
  path->pop_back();
}

int NodeDepth(const DecisionTreeNode& node) {
  if (node.is_leaf) return 0;
  return 1 + std::max(NodeDepth(*node.yes), NodeDepth(*node.no));
}

int NodeLeaves(const DecisionTreeNode& node) {
  if (node.is_leaf) return 1;
  return NodeLeaves(*node.yes) + NodeLeaves(*node.no);
}

}  // namespace

Result<TreeAttributeCache> TreeAttributeCache::Build(
    const Table& table, const std::vector<int>& attr_indices) {
  TreeAttributeCache cache;
  for (int col : attr_indices) {
    if (col < 0 || col >= table.num_columns()) {
      return Status::OutOfRange("TreeAttributeCache: column " + std::to_string(col));
    }
    if (cache.numeric_.count(col) || cache.categorical_.count(col)) continue;
    const Column& column = table.column(col);
    const std::string& name = table.schema().field(col).name;
    if (IsNumeric(column.type())) {
      NumericAttr attr;
      attr.name = name;
      attr.is_integer = column.type() == TypeKind::kInt64;
      attr.values.resize(static_cast<size_t>(column.length()));
      attr.valid.resize(static_cast<size_t>(column.length()));
      for (int64_t r = 0; r < column.length(); ++r) {
        if (column.IsNull(r)) {
          attr.valid[static_cast<size_t>(r)] = 0;
        } else {
          attr.valid[static_cast<size_t>(r)] = 1;
          CHARLES_ASSIGN_OR_RETURN(double v, column.GetValue(r).AsDouble());
          attr.values[static_cast<size_t>(r)] = v;
        }
      }
      attr.sorted_rows.reserve(static_cast<size_t>(column.length()));
      for (int64_t r = 0; r < column.length(); ++r) {
        if (attr.valid[static_cast<size_t>(r)]) attr.sorted_rows.push_back(r);
      }
      std::sort(attr.sorted_rows.begin(), attr.sorted_rows.end(),
                [&attr](int64_t a, int64_t b) {
                  return attr.values[static_cast<size_t>(a)] <
                         attr.values[static_cast<size_t>(b)];
                });
      cache.numeric_.emplace(col, std::move(attr));
    } else {
      CategoricalAttr attr;
      attr.name = name;
      attr.codes.resize(static_cast<size_t>(column.length()), -1);
      std::unordered_map<Value, int, ValueHash> dictionary;
      for (int64_t r = 0; r < column.length(); ++r) {
        if (column.IsNull(r)) continue;
        Value v = column.GetValue(r);
        auto [it, inserted] = dictionary.emplace(v, static_cast<int>(attr.dict.size()));
        if (inserted) attr.dict.push_back(std::move(v));
        attr.codes[static_cast<size_t>(r)] = it->second;
      }
      cache.categorical_.emplace(col, std::move(attr));
    }
  }
  return cache;
}

const TreeAttributeCache::NumericAttr* TreeAttributeCache::Numeric(
    int column_index) const {
  auto it = numeric_.find(column_index);
  return it == numeric_.end() ? nullptr : &it->second;
}

const TreeAttributeCache::CategoricalAttr* TreeAttributeCache::Categorical(
    int column_index) const {
  auto it = categorical_.find(column_index);
  return it == categorical_.end() ? nullptr : &it->second;
}

Result<DecisionTree> DecisionTree::Fit(const Table& table, const RowSet& rows,
                                       const std::vector<int>& attr_indices,
                                       const std::vector<int>& labels,
                                       const DecisionTreeOptions& options,
                                       const TreeAttributeCache* cache) {
  if (rows.empty()) return Status::InvalidArgument("DecisionTree: no training rows");
  if (static_cast<int64_t>(labels.size()) != table.num_rows()) {
    return Status::InvalidArgument("DecisionTree: labels must cover every table row");
  }
  for (int attr : attr_indices) {
    if (attr < 0 || attr >= table.num_columns()) {
      return Status::OutOfRange("DecisionTree: attribute index " + std::to_string(attr));
    }
  }
  int num_labels = 0;
  for (int64_t row : rows) {
    int label = labels[static_cast<size_t>(row)];
    if (label < 0) return Status::InvalidArgument("DecisionTree: negative label");
    num_labels = std::max(num_labels, label + 1);
  }
  if (num_labels > 4096) {
    return Status::InvalidArgument("DecisionTree: implausibly many labels (" +
                                   std::to_string(num_labels) + ")");
  }

  TreeAttributeCache local_cache;
  if (cache == nullptr) {
    CHARLES_ASSIGN_OR_RETURN(local_cache, TreeAttributeCache::Build(table, attr_indices));
    cache = &local_cache;
  }
  for (int attr : attr_indices) {
    if (cache->Numeric(attr) == nullptr && cache->Categorical(attr) == nullptr) {
      return Status::InvalidArgument("DecisionTree: attribute " + std::to_string(attr) +
                                     " missing from the attribute cache");
    }
  }

  DecisionTree tree;
  TreeBuilder builder(labels, num_labels, options, *cache, attr_indices);
  tree.root_ = builder.Build(rows.indices(), 0);

  // Single post-build traversal: collect the leaves (with simplified path
  // conditions) and score training accuracy off them. leaves() then serves
  // every later consumer — the engine's partition candidates used to walk
  // the tree a second time for the same list.
  {
    std::vector<std::pair<const DecisionTreeNode*, bool>> path;
    CollectLeaves(*tree.root_, &path, &tree.leaves_);
  }
  int64_t correct = 0;
  for (const Leaf& leaf : tree.leaves_) {
    for (int64_t row : leaf.rows) {
      if (labels[static_cast<size_t>(row)] == leaf.majority_label) ++correct;
    }
  }
  tree.training_accuracy_ =
      rows.size() > 0 ? static_cast<double>(correct) / static_cast<double>(rows.size())
                      : 0.0;
  return tree;
}

Result<int> DecisionTree::PredictRow(const Table& table, int64_t row) const {
  const DecisionTreeNode* node = root_.get();
  while (!node->is_leaf) {
    CHARLES_ASSIGN_OR_RETURN(Value v, node->condition->Evaluate(table, row));
    if (v.kind() != TypeKind::kBool) {
      return Status::TypeError("split condition not boolean");
    }
    node = v.boolean() ? node->yes.get() : node->no.get();
  }
  return node->majority_label;
}

int DecisionTree::num_leaves() const { return NodeLeaves(*root_); }
int DecisionTree::depth() const { return NodeDepth(*root_); }

}  // namespace charles
