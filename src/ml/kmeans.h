#ifndef CHARLES_ML_KMEANS_H_
#define CHARLES_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace charles {

/// \brief Options for KMeans::Fit.
struct KMeansOptions {
  /// Lloyd iterations per restart.
  int max_iterations = 100;
  /// Independent k-means++ restarts; the lowest-inertia run wins.
  int num_restarts = 4;
  /// Convergence threshold on centroid movement (squared L2).
  double tolerance = 1e-8;
  /// Seed for k-means++ sampling; same seed, same clustering.
  uint64_t seed = 42;
};

/// \brief A clustering of n points into k groups.
struct KMeansResult {
  int k = 0;
  /// Cluster id per input row, in [0, k).
  std::vector<int> labels;
  /// k x d centroid matrix.
  Matrix centroids;
  /// Sum of squared distances to assigned centroids (lower is tighter).
  double inertia = 0.0;
  int iterations = 0;
};

/// \brief Lloyd's k-means with k-means++ seeding and empty-cluster repair.
///
/// ChARLES clusters rows by their distance from the global regression line
/// (a 1-D or low-D residual space), so the implementation favours exactness
/// and determinism over large-d tricks.
class KMeans {
 public:
  /// Clusters the rows of `points` into k groups. k must be in [1, n].
  static Result<KMeansResult> Fit(const Matrix& points, int k,
                                  const KMeansOptions& options = {});
};

/// \brief Mean silhouette coefficient of a clustering, in [-1, 1].
///
/// Degenerate inputs (k < 2 effective clusters, n < 3) score 0. For large n
/// the score is estimated on a deterministic subsample of max_samples rows.
double SilhouetteScore(const Matrix& points, const std::vector<int>& labels,
                       int64_t max_samples = 2048, uint64_t seed = 42);

/// \brief Fits k = k_min..k_max and returns the silhouette-best result.
///
/// k = 1 (a single partition) is compared via a variance-explained heuristic:
/// it wins only when no multi-cluster split achieves a silhouette above
/// `min_silhouette`.
Result<KMeansResult> FitBestK(const Matrix& points, int k_min, int k_max,
                              const KMeansOptions& options = {},
                              double min_silhouette = 0.6);

}  // namespace charles

#endif  // CHARLES_ML_KMEANS_H_
