#include "ml/linear_regression.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "linalg/solve.h"
#include "linalg/stats.h"

namespace charles {

double LinearModel::Predict(const std::vector<double>& x) const {
  CHARLES_CHECK_EQ(x.size(), coefficients.size());
  return PredictRow(x.data());
}

std::vector<double> LinearModel::PredictBatch(const Matrix& x) const {
  CHARLES_CHECK_EQ(static_cast<size_t>(x.cols()), coefficients.size());
  std::vector<double> out;
  out.reserve(static_cast<size_t>(x.rows()));
  for (int64_t r = 0; r < x.rows(); ++r) {
    out.push_back(PredictRow(x.RowPtr(r)));
  }
  return out;
}

int LinearModel::NumActiveTerms(double tolerance) const {
  int count = 0;
  for (double c : coefficients) {
    if (std::abs(c) > tolerance) ++count;
  }
  return count;
}

std::string LinearModel::ToString(const std::string& target_name) const {
  std::string out = target_name + " = ";
  bool first = true;
  for (size_t i = 0; i < coefficients.size(); ++i) {
    double c = coefficients[i];
    if (std::abs(c) <= 1e-12) continue;
    if (first) {
      if (c < 0) out += "-";
    } else {
      out += c < 0 ? " - " : " + ";
    }
    double mag = std::abs(c);
    if (std::abs(mag - 1.0) > 1e-12) {
      out += FormatDouble(mag, 6) + " × ";
    }
    out += feature_names[i];
    first = false;
  }
  if (std::abs(intercept) > 1e-9 || first) {
    if (first) {
      out += FormatDouble(intercept, 6);
    } else {
      out += intercept < 0 ? " - " : " + ";
      out += FormatDouble(std::abs(intercept), 6);
    }
  }
  return out;
}

namespace {

void FillDiagnostics(const Matrix& x, const std::vector<double>& y, LinearModel* model) {
  std::vector<double> predicted = model->PredictBatch(x);
  model->mae = MeanAbsoluteError(predicted, y);
  model->rmse = RootMeanSquaredError(predicted, y);
  double total_var = Variance(y);
  if (total_var <= 1e-300) {
    // Constant target: R² is 1 when we reproduce it, 0 otherwise.
    model->r2 = model->rmse <= 1e-9 ? 1.0 : 0.0;
  } else {
    double resid_var = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      double e = y[i] - predicted[i];
      resid_var += e * e;
    }
    resid_var /= static_cast<double>(y.size());
    model->r2 = 1.0 - resid_var / total_var;
  }
}

/// Ridge fit on standardized features; coefficients mapped back to raw scale.
Result<LinearModel> FitRidgeStandardized(const Matrix& x, const std::vector<double>& y,
                                         std::vector<std::string> feature_names,
                                         double lambda) {
  int64_t n = x.rows();
  int64_t p = x.cols();
  // Means and stddevs in one pass over the row-major storage — no per-column
  // materialization (this runs on every fallback fit).
  std::vector<double> means(static_cast<size_t>(p), 0.0);
  std::vector<double> stds(static_cast<size_t>(p), 0.0);
  for (int64_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (int64_t c = 0; c < p; ++c) means[static_cast<size_t>(c)] += row[c];
  }
  if (n > 0) {
    for (double& m : means) m /= static_cast<double>(n);
  }
  if (n >= 2) {
    for (int64_t r = 0; r < n; ++r) {
      const double* row = x.RowPtr(r);
      for (int64_t c = 0; c < p; ++c) {
        double d = row[c] - means[static_cast<size_t>(c)];
        stds[static_cast<size_t>(c)] += d * d;
      }
    }
    for (double& s : stds) s = std::sqrt(s / static_cast<double>(n));
  }
  double y_mean = Mean(y);
  Matrix xs(n, p);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < p; ++c) {
      double s = stds[static_cast<size_t>(c)];
      xs.At(r, c) = s > 1e-300 ? (x.At(r, c) - means[static_cast<size_t>(c)]) / s : 0.0;
    }
  }
  std::vector<double> yc(y.size());
  for (size_t i = 0; i < y.size(); ++i) yc[i] = y[i] - y_mean;

  CHARLES_ASSIGN_OR_RETURN(std::vector<double> beta_std,
                           RidgeLeastSquares(xs, yc, lambda));

  LinearModel model;
  model.feature_names = std::move(feature_names);
  model.coefficients.resize(static_cast<size_t>(p), 0.0);
  double intercept = y_mean;
  for (int64_t c = 0; c < p; ++c) {
    double s = stds[static_cast<size_t>(c)];
    double raw = s > 1e-300 ? beta_std[static_cast<size_t>(c)] / s : 0.0;
    model.coefficients[static_cast<size_t>(c)] = raw;
    intercept -= raw * means[static_cast<size_t>(c)];
  }
  model.intercept = intercept;
  FillDiagnostics(x, y, &model);
  return model;
}

}  // namespace

Result<LinearModel> LinearRegression::Fit(const Matrix& x, const std::vector<double>& y,
                                          std::vector<std::string> feature_names,
                                          const LinearRegressionOptions& options) {
  int64_t n = x.rows();
  int64_t p = x.cols();
  if (n == 0) return Status::InvalidArgument("LinearRegression: no rows");
  if (static_cast<int64_t>(y.size()) != n) {
    return Status::InvalidArgument("LinearRegression: y size mismatch");
  }
  if (static_cast<int64_t>(feature_names.size()) != p) {
    return Status::InvalidArgument("LinearRegression: feature_names size mismatch");
  }

  // Zero-feature fit: the model is the target mean.
  if (p == 0) {
    LinearModel model;
    model.intercept = Mean(y);
    FillDiagnostics(x, y, &model);
    return model;
  }

  // Constant target short-circuit: exact, and keeps "no change" partitions
  // from picking up numerical-noise coefficients.
  if (Variance(y) <= 1e-300) {
    LinearModel model;
    model.feature_names = std::move(feature_names);
    model.coefficients.assign(static_cast<size_t>(p), 0.0);
    model.intercept = y.empty() ? 0.0 : y[0];
    FillDiagnostics(x, y, &model);
    return model;
  }

  // Primary path: QR on the design matrix [1 | X].
  if (n >= p + 1) {
    Matrix design(n, p + 1);
    for (int64_t r = 0; r < n; ++r) {
      design.At(r, 0) = 1.0;
      for (int64_t c = 0; c < p; ++c) design.At(r, c + 1) = x.At(r, c);
    }
    Result<std::vector<double>> beta = QrLeastSquares(design, y);
    if (beta.ok()) {
      LinearModel model;
      model.intercept = (*beta)[0];
      model.coefficients.assign(beta->begin() + 1, beta->end());
      model.feature_names = std::move(feature_names);
      FillDiagnostics(x, y, &model);
      return model;
    }
  }
  // Fallback: standardized ridge (always well-posed for lambda > 0).
  return FitRidgeStandardized(x, y, std::move(feature_names), options.ridge_lambda);
}

Result<LinearModel> LinearRegression::FitFromStats(
    const SufficientStats& stats, const std::vector<int>& subset,
    std::vector<std::string> feature_names) {
  if (feature_names.size() != subset.size()) {
    return Status::InvalidArgument("FitFromStats: feature_names size mismatch");
  }
  CHARLES_ASSIGN_OR_RETURN(SufficientStats::Solution solution,
                           stats.SolveOls(subset));
  LinearModel model;
  model.intercept = solution.intercept;
  model.coefficients = std::move(solution.coefficients);
  model.feature_names = std::move(feature_names);
  model.r2 = solution.r2;
  model.rmse = solution.rmse;
  model.mae = solution.mae_estimate;
  return model;
}

}  // namespace charles
