#ifndef CHARLES_LINALG_KERNELS_KERNEL_H_
#define CHARLES_LINALG_KERNELS_KERNEL_H_

/// \file
/// \brief Pluggable intra-block compute kernels for the canonical folds.
///
/// Every hot loop in the engine funnels through a handful of canonical block
/// folds: suffstats XᵀX/Xᵀy/yᵀy accumulation (linalg/suffstats.h), Σ|y − ŷ|
/// error partials (linalg/error_partials.h), probe evaluation on shard
/// workers, and strided column gathers. The determinism contract
/// (docs/distributed.md) fixes each fold *per block* — a block's rows are
/// accumulated in row order into a fresh partial, and partials merge in
/// ascending block order — but says nothing about how the arithmetic inside
/// one block is evaluated, as long as the block's resulting bits are fixed.
///
/// This header is the seam that exploits that freedom. A Kernel is a table
/// of block-level primitives; every accumulation entry point dispatches
/// through the process-wide active kernel, so serial, threaded, subprocess,
/// and remote execution all run the same code path. Two implementations
/// ship:
///
///  - **scalar** (scalar_kernel.cc): the reference fold — the original
///    per-row gather/accumulate loops, extracted verbatim. The definition of
///    correct bits.
///  - **simd** (simd_kernel.cc): a vectorized kernel over contiguous block
///    buffers. It is *bit-identical to scalar by construction*: it only
///    vectorizes across independent accumulators (the columns of one Gram
///    row, the lanes of an elementwise |a−b| precompute), never across the
///    additions of one accumulator's chain, so every accumulator still
///    receives exactly the scalar kernel's addend sequence. See
///    docs/architecture.md#kernel-layer for the full argument.
///
/// Because the kernels are bit-identical, the choice is invisible to
/// results: it is not part of the run fingerprint, cached fits are valid
/// across kernels, and a remote worker may resolve a different kernel than
/// its coordinator without breaking the merge. tests/kernel_parity_test.cc
/// is the differential harness that keeps the claim true.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace charles {

class SufficientStats;

namespace kernels {

/// CharlesOptions::kernel_backend, parsed. kAuto resolves to the vectorized
/// kernel when the build's ISA is usable on the running CPU, else scalar.
enum class KernelBackend { kAuto, kScalar, kSimd };

/// Parses "auto" | "scalar" | "simd"; anything else is InvalidArgument.
Result<KernelBackend> ParseKernelBackend(const std::string& name);

/// \brief One kernel implementation: the block-level primitives behind the
/// canonical folds. All functions are pure (no shared state) and safe to
/// call concurrently.
///
/// Row addressing is shared across ops: when `rows` is non-null it points at
/// `count` ascending global row indices (one canonical block's run); when it
/// is null the block is the contiguous range [base, base + count).
struct Kernel {
  /// Human-readable name, reported in SummaryList::kernel_used.
  const char* name;

  /// One block partial: accumulates `count` rows (gathering one value per
  /// column, in column order) into *fresh* SufficientStats — the shared
  /// primitive of engine-side and shard-side moment accumulation.
  SufficientStats (*suffstats_block)(
      const std::vector<const std::vector<double>*>& columns,
      const std::vector<double>& y, const int64_t* rows, int64_t base,
      int64_t count);

  /// One block partial of Σ|a[i] − b[i]| over positional arrays, summed in
  /// index order from zero.
  double (*abs_diff_sum)(const double* a, const double* b, int64_t count);

  /// One block partial of Σ|values[i]|, summed in index order from zero.
  double (*abs_sum)(const double* values, int64_t count);

  /// One block partial of Σ|y[row] − ŷ(row)| for a probe model, where
  /// ŷ = intercept + Σ_f coefficients[f]·columns[f][row] accumulated
  /// left-to-right — exactly LinearModel::PredictRow's evaluation order,
  /// which the kErrorPartials merge argument depends on.
  double (*probe_abs_error_sum)(
      double intercept, const double* coefficients,
      const std::vector<const std::vector<double>*>& columns,
      const std::vector<double>& y, const int64_t* rows, int64_t count);

  /// Strided gather: dst[i·dst_stride] = src[rows[i]] for i in [0, count).
  /// dst_stride >= 1 (1 = contiguous, cols() = one matrix column).
  void (*gather)(const double* src, const int64_t* rows, int64_t count,
                 double* dst, int64_t dst_stride);
};

/// The reference kernel (always available).
const Kernel& ScalarKernel();

/// The vectorized kernel. When the translation unit was compiled for an ISA
/// the running CPU lacks (CHARLES_KERNEL_AVX2 builds on pre-AVX2 hardware),
/// this returns the scalar kernel instead — a safe, bit-identical fallback,
/// never SIGILL.
const Kernel& SimdKernel();

/// Maps a parsed backend to its kernel (kAuto/kSimd → SimdKernel()).
const Kernel& ResolveKernel(KernelBackend backend);

/// \name Process-wide active kernel
///
/// RunPipeline::Setup installs the run's kernel here; the accumulation entry
/// points in suffstats.h / error_partials.h and the shard task kernel
/// dispatch through it. A plain atomic pointer — concurrent runs with
/// different settings are harmless precisely because the kernels are
/// bit-identical; diagnostics report whichever kernel each run resolved.
/// Defaults to ResolveKernel(kAuto) before any run.
/// @{
const Kernel& ActiveKernel();
const Kernel& SetActiveKernel(KernelBackend backend);
/// @}

/// Neumaier-compensated Σvalues[i]. **Diagnostics only**: compensation
/// changes the computed bits, so it must never back a canonical fold — the
/// parity harness and benches use it as a high-accuracy oracle for how much
/// headroom the plain folds leave on adversarial magnitudes.
double NeumaierSum(const double* values, int64_t count);

}  // namespace kernels
}  // namespace charles

#endif  // CHARLES_LINALG_KERNELS_KERNEL_H_
