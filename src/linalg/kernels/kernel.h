#ifndef CHARLES_LINALG_KERNELS_KERNEL_H_
#define CHARLES_LINALG_KERNELS_KERNEL_H_

/// \file
/// \brief Pluggable intra-block compute kernels for the canonical folds.
///
/// Every hot loop in the engine funnels through a handful of canonical block
/// folds: suffstats XᵀX/Xᵀy/yᵀy accumulation (linalg/suffstats.h), Σ|y − ŷ|
/// error partials (linalg/error_partials.h), probe evaluation on shard
/// workers, and strided column gathers. The determinism contract
/// (docs/distributed.md) fixes each fold *per block* — a block's rows are
/// accumulated in row order into a fresh partial, and partials merge in
/// ascending block order — but says nothing about how the arithmetic inside
/// one block is evaluated, as long as the block's resulting bits are fixed.
///
/// This header is the seam that exploits that freedom. A Kernel is a table
/// of block-level primitives; every accumulation entry point dispatches
/// through the process-wide active kernel, so serial, threaded, subprocess,
/// and remote execution all run the same code path. Two implementations
/// ship:
///
///  - **scalar** (scalar_kernel.cc): the reference fold — the original
///    per-row gather/accumulate loops, extracted verbatim. The definition of
///    correct bits.
///  - **simd** (simd_kernel.cc): a vectorized kernel over contiguous block
///    buffers. It is *bit-identical to scalar by construction*: it only
///    vectorizes across independent accumulators (the columns of one Gram
///    row, the lanes of an elementwise |a−b| precompute), never across the
///    additions of one accumulator's chain, so every accumulator still
///    receives exactly the scalar kernel's addend sequence. See
///    docs/architecture.md#kernel-layer for the full argument.
///
/// Because the kernels are bit-identical, the choice is invisible to
/// results: it is not part of the run fingerprint, cached fits are valid
/// across kernels, and a remote worker may resolve a different kernel than
/// its coordinator without breaking the merge. tests/kernel_parity_test.cc
/// is the differential harness that keeps the claim true.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace charles {

class SufficientStats;

namespace kernels {

/// CharlesOptions::kernel_backend, parsed. kAuto resolves to the vectorized
/// kernel when the build's ISA is usable on the running CPU, else scalar.
enum class KernelBackend { kAuto, kScalar, kSimd };

/// Parses "auto" | "scalar" | "simd"; anything else is InvalidArgument.
Result<KernelBackend> ParseKernelBackend(const std::string& name);

/// CharlesOptions::batch_fold, parsed. Controls whether the sweeps stage
/// canonical blocks once and fold many leaves/probes per staged block
/// (batch_fold.h) instead of walking the columns once per leaf. Like the
/// kernel choice, the batched path is bit-identical to the per-leaf fold, so
/// the mode is not part of the run fingerprint. kAuto batches whenever a
/// task folds two or more accumulators over the same rows (staging pays for
/// itself); kOn batches every fold that has a batched form; kOff keeps the
/// per-leaf PR 7 path everywhere.
enum class BatchFoldMode { kAuto, kOn, kOff };

/// Parses "auto" | "on" | "off"; anything else is InvalidArgument.
Result<BatchFoldMode> ParseBatchFoldMode(const std::string& name);

/// \brief One staged canonical block: column-major, contiguous copies of the
/// shortlist columns (and y) restricted to rows [row_begin, row_begin+count).
///
/// `columns[c]` points at `count` doubles — a bit-for-bit copy of the source
/// column's slice, so arithmetic over a staged buffer reads exactly the
/// values the unstaged fold would have gathered. Produced by BlockStager
/// (block_stage.h); consumed by the *_batch kernel entries below. The view
/// is only valid until the stager stages the next block.
struct StagedBlock {
  int64_t row_begin = 0;          ///< First global row staged.
  int64_t count = 0;              ///< Rows staged (one canonical block or tail).
  const double* const* columns = nullptr;  ///< num_columns staged buffers.
  int64_t num_columns = 0;
  const double* y = nullptr;      ///< Staged y slice (same rows), may be null.
};

/// \brief One accumulator's slice of a staged block.
///
/// When `rows` is non-null it points at `count` ascending **global** row
/// indices, all inside [block.row_begin, block.row_begin + block.count) — the
/// intersection of one leaf's row set with the block. When null, the slice is
/// the contiguous range [block.row_begin, block.row_begin + count). Kernels
/// rebase to staged-buffer offsets internally (`row - block.row_begin`).
struct BlockSlice {
  const int64_t* rows = nullptr;
  int64_t count = 0;
};

/// \brief One probe model to evaluate against a staged block: a fitted
/// linear model plus the slice of block rows it owns. `feature_columns[f]`
/// indexes into StagedBlock::columns (the staged shortlist), mirroring
/// ErrorProbe::features.
struct StagedProbe {
  double intercept = 0.0;
  const double* coefficients = nullptr;
  const int64_t* feature_columns = nullptr;
  int64_t num_features = 0;
  BlockSlice slice;
};

/// \brief One kernel implementation: the block-level primitives behind the
/// canonical folds. All functions are pure (no shared state) and safe to
/// call concurrently.
///
/// Row addressing is shared across ops: when `rows` is non-null it points at
/// `count` ascending global row indices (one canonical block's run); when it
/// is null the block is the contiguous range [base, base + count).
struct Kernel {
  /// Human-readable name, reported in SummaryList::kernel_used.
  const char* name;

  /// One block partial: accumulates `count` rows (gathering one value per
  /// column, in column order) into *fresh* SufficientStats — the shared
  /// primitive of engine-side and shard-side moment accumulation.
  SufficientStats (*suffstats_block)(
      const std::vector<const std::vector<double>*>& columns,
      const std::vector<double>& y, const int64_t* rows, int64_t base,
      int64_t count);

  /// One block partial of Σ|a[i] − b[i]| over positional arrays, summed in
  /// index order from zero.
  double (*abs_diff_sum)(const double* a, const double* b, int64_t count);

  /// One block partial of Σ|values[i]|, summed in index order from zero.
  double (*abs_sum)(const double* values, int64_t count);

  /// One block partial of Σ|y[row] − ŷ(row)| for a probe model, where
  /// ŷ = intercept + Σ_f coefficients[f]·columns[f][row] accumulated
  /// left-to-right — exactly LinearModel::PredictRow's evaluation order,
  /// which the kErrorPartials merge argument depends on.
  double (*probe_abs_error_sum)(
      double intercept, const double* coefficients,
      const std::vector<const std::vector<double>*>& columns,
      const std::vector<double>& y, const int64_t* rows, int64_t count);

  /// Strided gather: dst[i·dst_stride] = src[rows[i]] for i in [0, count).
  /// dst_stride >= 1 (1 = contiguous, cols() = one matrix column).
  void (*gather)(const double* src, const int64_t* rows, int64_t count,
                 double* dst, int64_t dst_stride);

  /// \name Batched entries (one pass over a staged block, N accumulators)
  ///
  /// Each batched entry is bit-identical, per accumulator, to its per-leaf
  /// counterpart above run over the original columns: staged buffers are
  /// bit-for-bit copies, every accumulator's addend sequence is unchanged,
  /// and accumulators are folded in slice/probe index order 0..N-1 — the
  /// serial leaf order the determinism contract fixes within a block.
  /// @{

  /// Folds `num_slices` leaves' slices of one staged block, each into the
  /// caller's *fresh-per-block* stats: out[i] must end bit-identical to
  /// `suffstats_block(columns, y, slices[i]...)` merged into out[i]'s prior
  /// value (callers pass fresh stats per block, matching the canonical
  /// fold). Requires block.y non-null.
  void (*suffstats_block_batch)(const StagedBlock& block,
                                const BlockSlice* slices, int64_t num_slices,
                                SufficientStats* out);

  /// Folds `num_folds` positional-array partials in one call:
  /// out[e] = Σ_i |a[e][i] − b[e][i]| (or Σ_i |a[e][i]| when b[e] is null),
  /// each summed in index order from zero — bit-identical per entry to
  /// abs_diff_sum / abs_sum.
  void (*error_fold_batch)(const double* const* a, const double* const* b,
                           const int64_t* counts, int64_t num_folds,
                           double* out);

  /// Evaluates `num_probes` probe models against one staged block:
  /// out[p] = Σ|y[row] − ŷ_p(row)| over probes[p].slice, with ŷ accumulated
  /// left-to-right exactly as probe_abs_error_sum. Requires block.y non-null.
  void (*probe_abs_error_sum_batch)(const StagedBlock& block,
                                    const StagedProbe* probes,
                                    int64_t num_probes, double* out);
  /// @}

  /// \name Score-fold entries (the kScorePartials / accuracy currency)
  ///
  /// Each returns two results per block: the Σ|error| chain — **bit-identical
  /// to its error-fold counterpart** (same addends, same order) — and the
  /// count of |error| ≤ tolerance over the same errors. The count is an
  /// integer tally, exact under any evaluation order, so kernels are free to
  /// tally it however they like; only the sum chain is order-constrained.
  /// @{

  /// One block partial of (Σ|a[i] − b[i]|, #{i : |a[i] − b[i]| ≤ tolerance})
  /// over positional arrays; the sum matches abs_diff_sum exactly.
  void (*score_diff_sum)(const double* a, const double* b, int64_t count,
                         double tolerance, double* abs_sum, int64_t* exact);

  /// One block partial of (Σ|y[row] − ŷ(row)|, within-tolerance count) for a
  /// probe model, with ŷ accumulated left-to-right exactly as
  /// probe_abs_error_sum — which is what lets a kScorePartials shard round
  /// double as the kErrorPartials baseline (ScorePartials::error()).
  void (*probe_score_sum)(double intercept, const double* coefficients,
                          const std::vector<const std::vector<double>*>& columns,
                          const std::vector<double>& y, const int64_t* rows,
                          int64_t count, double tolerance, double* abs_sum,
                          int64_t* exact);
  /// @}
};

/// The reference kernel (always available).
const Kernel& ScalarKernel();

/// The vectorized kernel. When the translation unit was compiled for an ISA
/// the running CPU lacks (CHARLES_KERNEL_AVX2 builds on pre-AVX2 hardware),
/// this returns the scalar kernel instead — a safe, bit-identical fallback,
/// never SIGILL.
const Kernel& SimdKernel();

/// Maps a parsed backend to its kernel (kAuto/kSimd → SimdKernel()).
const Kernel& ResolveKernel(KernelBackend backend);

/// \name Process-wide active kernel
///
/// RunPipeline::Setup installs the run's kernel here; the accumulation entry
/// points in suffstats.h / error_partials.h and the shard task kernel
/// dispatch through it. A plain atomic pointer — concurrent runs with
/// different settings are harmless precisely because the kernels are
/// bit-identical; diagnostics report whichever kernel each run resolved.
/// Defaults to ResolveKernel(kAuto) before any run.
/// @{
const Kernel& ActiveKernel();
const Kernel& SetActiveKernel(KernelBackend backend);
/// @}

/// \name Process-wide active batch-fold mode
///
/// The batching analogue of the active kernel: RunPipeline::Setup installs
/// the run's parsed CharlesOptions::batch_fold here, and the sweep drivers
/// (batch_fold.h) plus ExecuteShardTaskKernel consult it per task. Sound for
/// the same reason as the kernel atomic — every mode computes identical
/// bits, so concurrent runs with different settings cannot corrupt each
/// other, and a remote worker resolves its own mode without breaking the
/// merge. Defaults to kAuto before any run.
/// @{
BatchFoldMode ActiveBatchFold();
BatchFoldMode SetActiveBatchFold(BatchFoldMode mode);
/// @}

/// Neumaier-compensated Σvalues[i]. **Diagnostics only**: compensation
/// changes the computed bits, so it must never back a canonical fold — the
/// parity harness and benches use it as a high-accuracy oracle for how much
/// headroom the plain folds leave on adversarial magnitudes.
double NeumaierSum(const double* values, int64_t count);

}  // namespace kernels
}  // namespace charles

#endif  // CHARLES_LINALG_KERNELS_KERNEL_H_
