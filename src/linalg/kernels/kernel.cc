#include "linalg/kernels/kernel.h"

#include <atomic>
#include <cmath>

namespace charles {
namespace kernels {

// Defined in simd_kernel.cc (possibly compiled with a wider ISA than the
// rest of the library — see CHARLES_KERNEL_AVX2 in CMakeLists.txt).
extern const bool kSimdKernelNeedsAvx2;
const Kernel& SimdKernelTable();

namespace {

/// Whether dispatching into the simd translation unit is safe on this CPU.
/// The baseline build (no ISA flags) is always safe; an AVX2 build is safe
/// only where the CPU agrees — otherwise the registry silently serves the
/// scalar kernel, which is bit-identical anyway.
bool SimdKernelUsable() {
  if (!kSimdKernelNeedsAvx2) return true;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<const Kernel*> g_active_kernel{nullptr};
std::atomic<BatchFoldMode> g_active_batch_fold{BatchFoldMode::kAuto};

}  // namespace

Result<KernelBackend> ParseKernelBackend(const std::string& name) {
  if (name == "auto") return KernelBackend::kAuto;
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "simd") return KernelBackend::kSimd;
  return Status::InvalidArgument(
      "kernel_backend must be \"auto\", \"scalar\", or \"simd\"; got \"" +
      name + "\"");
}

Result<BatchFoldMode> ParseBatchFoldMode(const std::string& name) {
  if (name == "auto") return BatchFoldMode::kAuto;
  if (name == "on") return BatchFoldMode::kOn;
  if (name == "off") return BatchFoldMode::kOff;
  return Status::InvalidArgument(
      "batch_fold must be \"auto\", \"on\", or \"off\"; got \"" + name +
      "\"");
}

BatchFoldMode ActiveBatchFold() {
  return g_active_batch_fold.load(std::memory_order_relaxed);
}

BatchFoldMode SetActiveBatchFold(BatchFoldMode mode) {
  g_active_batch_fold.store(mode, std::memory_order_relaxed);
  return mode;
}

const Kernel& SimdKernel() {
  return SimdKernelUsable() ? SimdKernelTable() : ScalarKernel();
}

const Kernel& ResolveKernel(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return ScalarKernel();
    case KernelBackend::kSimd:
    case KernelBackend::kAuto:
      return SimdKernel();
  }
  return ScalarKernel();  // unreachable
}

const Kernel& ActiveKernel() {
  const Kernel* kernel = g_active_kernel.load(std::memory_order_relaxed);
  return kernel != nullptr ? *kernel : ResolveKernel(KernelBackend::kAuto);
}

const Kernel& SetActiveKernel(KernelBackend backend) {
  const Kernel& kernel = ResolveKernel(backend);
  g_active_kernel.store(&kernel, std::memory_order_relaxed);
  return kernel;
}

double NeumaierSum(const double* values, int64_t count) {
  double sum = 0.0;
  double compensation = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    double v = values[i];
    double t = sum + v;
    if (std::abs(sum) >= std::abs(v)) {
      compensation += (sum - t) + v;
    } else {
      compensation += (v - t) + sum;
    }
    sum = t;
  }
  return sum + compensation;
}

}  // namespace kernels
}  // namespace charles
