#ifndef CHARLES_LINALG_KERNELS_SUFFSTATS_ACCESS_H_
#define CHARLES_LINALG_KERNELS_SUFFSTATS_ACCESS_H_

/// \file
/// \brief Kernel-internal raw view of SufficientStats' moment buffers.
///
/// The vectorized kernel writes a block's accumulated moments straight into
/// a fresh SufficientStats instead of replaying per-row Accumulate calls.
/// That needs the private buffers; this access struct is the single friend
/// doorway, kept out of kernel.h so only kernel implementations see it.

#include <cstdint>

#include "linalg/suffstats.h"

namespace charles {
namespace kernels {

struct SuffStatsAccess {
  /// Raw pointers into one stats instance. `gram` is row-major (p+1)², kept
  /// fully mirrored; `xty` has p+1 entries; `x_shift` has p entries. The
  /// holder must outlive the view.
  struct View {
    int64_t p = 0;
    int64_t* n = nullptr;
    double* x_shift = nullptr;
    double* y_shift = nullptr;
    double* gram = nullptr;
    double* xty = nullptr;
    double* yty = nullptr;
  };

  static View Of(SufficientStats& stats) {
    View view;
    view.p = stats.p_;
    view.n = &stats.n_;
    view.x_shift = stats.x_shift_.data();
    view.y_shift = &stats.y_shift_;
    view.gram = stats.gram_.data();
    view.xty = stats.xty_.data();
    view.yty = &stats.yty_;
    return view;
  }
};

}  // namespace kernels
}  // namespace charles

#endif  // CHARLES_LINALG_KERNELS_SUFFSTATS_ACCESS_H_
