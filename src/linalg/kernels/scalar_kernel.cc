#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"

namespace charles {
namespace kernels {
namespace {

/// The reference block fold: the per-row gather/accumulate loop that every
/// accumulation entry point ran before the kernel seam existed, extracted
/// verbatim. Indexed and contiguous blocks share the one loop so their
/// arithmetic can never diverge — the distributed bit-identity contract
/// depends on the range variant replaying the indexed variant's operations
/// exactly. This kernel *defines* the correct bits; the vectorized kernel
/// must reproduce them (tests/kernel_parity_test.cc).
SufficientStats SuffStatsBlockScalar(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t base,
    int64_t count) {
  SufficientStats stats(static_cast<int64_t>(columns.size()));
  std::vector<double> features(columns.size());
  for (int64_t r = 0; r < count; ++r) {
    size_t row = static_cast<size_t>(rows != nullptr ? rows[r] : base + r);
    for (size_t f = 0; f < columns.size(); ++f) features[f] = (*columns[f])[row];
    stats.Accumulate(features.data(), y[row]);
  }
  return stats;
}

double AbsDiffSumScalar(const double* a, const double* b, int64_t count) {
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double AbsSumScalar(const double* values, int64_t count) {
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) sum += std::abs(values[i]);
  return sum;
}

double ProbeAbsErrorSumScalar(
    double intercept, const double* coefficients,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count) {
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    size_t row = static_cast<size_t>(rows[i]);
    double y_hat = intercept;
    for (size_t f = 0; f < columns.size(); ++f) {
      y_hat += coefficients[f] * (*columns[f])[row];
    }
    sum += std::abs(y[row] - y_hat);
  }
  return sum;
}

/// Score fold: AbsDiffSumScalar's exact sum chain, with the within-tolerance
/// tally taken from the same per-row |error| before it joins the sum.
void ScoreDiffSumScalar(const double* a, const double* b, int64_t count,
                        double tolerance, double* abs_sum, int64_t* exact) {
  double sum = 0.0;
  int64_t within = 0;
  for (int64_t i = 0; i < count; ++i) {
    const double err = std::abs(a[i] - b[i]);
    sum += err;
    if (err <= tolerance) ++within;
  }
  *abs_sum = sum;
  *exact = within;
}

/// Probe score: ProbeAbsErrorSumScalar's exact ŷ and sum chains, tallying
/// the within-tolerance count from the same per-row error.
void ProbeScoreSumScalar(double intercept, const double* coefficients,
                         const std::vector<const std::vector<double>*>& columns,
                         const std::vector<double>& y, const int64_t* rows,
                         int64_t count, double tolerance, double* abs_sum,
                         int64_t* exact) {
  double sum = 0.0;
  int64_t within = 0;
  for (int64_t i = 0; i < count; ++i) {
    size_t row = static_cast<size_t>(rows[i]);
    double y_hat = intercept;
    for (size_t f = 0; f < columns.size(); ++f) {
      y_hat += coefficients[f] * (*columns[f])[row];
    }
    const double err = std::abs(y[row] - y_hat);
    sum += err;
    if (err <= tolerance) ++within;
  }
  *abs_sum = sum;
  *exact = within;
}

void GatherScalar(const double* src, const int64_t* rows, int64_t count,
                  double* dst, int64_t dst_stride) {
  for (int64_t i = 0; i < count; ++i) {
    dst[i * dst_stride] = src[rows[i]];
  }
}

/// Batched reference fold: replays SuffStatsBlockScalar's loop per slice,
/// reading the staged buffers at rebased offsets. Staged values are
/// bit-for-bit copies of the source columns, and slices fold in index order
/// 0..N-1, so each out[i] receives exactly the addend sequence the per-leaf
/// fold would have produced.
void SuffStatsBlockBatchScalar(const StagedBlock& block,
                               const BlockSlice* slices, int64_t num_slices,
                               SufficientStats* out) {
  std::vector<double> features(static_cast<size_t>(block.num_columns));
  for (int64_t s = 0; s < num_slices; ++s) {
    const BlockSlice& slice = slices[s];
    for (int64_t r = 0; r < slice.count; ++r) {
      int64_t local =
          slice.rows != nullptr ? slice.rows[r] - block.row_begin : r;
      for (int64_t f = 0; f < block.num_columns; ++f) {
        features[static_cast<size_t>(f)] = block.columns[f][local];
      }
      out[s].Accumulate(features.data(), block.y[local]);
    }
  }
}

void ErrorFoldBatchScalar(const double* const* a, const double* const* b,
                          const int64_t* counts, int64_t num_folds,
                          double* out) {
  for (int64_t e = 0; e < num_folds; ++e) {
    out[e] = b[e] != nullptr ? AbsDiffSumScalar(a[e], b[e], counts[e])
                             : AbsSumScalar(a[e], counts[e]);
  }
}

/// Batched probe evaluation: ProbeAbsErrorSumScalar's loop per probe over
/// the staged shortlist — ŷ accumulated left-to-right across the probe's
/// features, probes folded in index order.
void ProbeAbsErrorSumBatchScalar(const StagedBlock& block,
                                 const StagedProbe* probes, int64_t num_probes,
                                 double* out) {
  for (int64_t p = 0; p < num_probes; ++p) {
    const StagedProbe& probe = probes[p];
    double sum = 0.0;
    for (int64_t i = 0; i < probe.slice.count; ++i) {
      int64_t local = probe.slice.rows != nullptr
                          ? probe.slice.rows[i] - block.row_begin
                          : i;
      double y_hat = probe.intercept;
      for (int64_t f = 0; f < probe.num_features; ++f) {
        y_hat +=
            probe.coefficients[f] * block.columns[probe.feature_columns[f]][local];
      }
      sum += std::abs(block.y[local] - y_hat);
    }
    out[p] = sum;
  }
}

constexpr Kernel kScalarKernel = {
    "scalar",          SuffStatsBlockScalar, AbsDiffSumScalar,
    AbsSumScalar,      ProbeAbsErrorSumScalar, GatherScalar,
    SuffStatsBlockBatchScalar, ErrorFoldBatchScalar,
    ProbeAbsErrorSumBatchScalar,
    ScoreDiffSumScalar, ProbeScoreSumScalar,
};

}  // namespace

const Kernel& ScalarKernel() { return kScalarKernel; }

}  // namespace kernels
}  // namespace charles
