#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"

namespace charles {
namespace kernels {
namespace {

/// The reference block fold: the per-row gather/accumulate loop that every
/// accumulation entry point ran before the kernel seam existed, extracted
/// verbatim. Indexed and contiguous blocks share the one loop so their
/// arithmetic can never diverge — the distributed bit-identity contract
/// depends on the range variant replaying the indexed variant's operations
/// exactly. This kernel *defines* the correct bits; the vectorized kernel
/// must reproduce them (tests/kernel_parity_test.cc).
SufficientStats SuffStatsBlockScalar(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t base,
    int64_t count) {
  SufficientStats stats(static_cast<int64_t>(columns.size()));
  std::vector<double> features(columns.size());
  for (int64_t r = 0; r < count; ++r) {
    size_t row = static_cast<size_t>(rows != nullptr ? rows[r] : base + r);
    for (size_t f = 0; f < columns.size(); ++f) features[f] = (*columns[f])[row];
    stats.Accumulate(features.data(), y[row]);
  }
  return stats;
}

double AbsDiffSumScalar(const double* a, const double* b, int64_t count) {
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double AbsSumScalar(const double* values, int64_t count) {
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) sum += std::abs(values[i]);
  return sum;
}

double ProbeAbsErrorSumScalar(
    double intercept, const double* coefficients,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count) {
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    size_t row = static_cast<size_t>(rows[i]);
    double y_hat = intercept;
    for (size_t f = 0; f < columns.size(); ++f) {
      y_hat += coefficients[f] * (*columns[f])[row];
    }
    sum += std::abs(y[row] - y_hat);
  }
  return sum;
}

void GatherScalar(const double* src, const int64_t* rows, int64_t count,
                  double* dst, int64_t dst_stride) {
  for (int64_t i = 0; i < count; ++i) {
    dst[i * dst_stride] = src[rows[i]];
  }
}

constexpr Kernel kScalarKernel = {
    "scalar",          SuffStatsBlockScalar, AbsDiffSumScalar,
    AbsSumScalar,      ProbeAbsErrorSumScalar, GatherScalar,
};

}  // namespace

const Kernel& ScalarKernel() { return kScalarKernel; }

}  // namespace kernels
}  // namespace charles
