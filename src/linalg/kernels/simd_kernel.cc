#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/kernels/kernel.h"
#include "linalg/kernels/suffstats_access.h"
#include "linalg/suffstats.h"

/// \file
/// \brief The vectorized intra-block kernel.
///
/// Bit-identity with the scalar reference is by construction, not by luck.
/// The rules this file obeys (docs/architecture.md#kernel-layer):
///
///  1. An accumulator's value depends only on its own sequence of addends.
///     We vectorize *across independent accumulators* (the entries of one
///     Gram row, the lanes of an elementwise precompute) — never across the
///     additions of one accumulator's chain — so every accumulator still
///     receives exactly the scalar kernel's addends, in the scalar kernel's
///     order.
///  2. IEEE products are deterministic (and `1.0 * w == w` exactly), so the
///     addends themselves match as long as no FMA contraction sneaks in —
///     the build compiles the whole library with -ffp-contract=off.
///  3. Fresh accumulators start at +0.0 in both kernels, and results are
///     written back by assignment, so local accumulation buffers are
///     transparent.
///  4. Serial reductions (the per-block Σ chains) stay serial; SIMD does the
///     elementwise work (|a−b|, ŷ per lane) that feeds them.
///
/// `#pragma omp simd` is the portability seam: it is advisory
/// (-fopenmp-simd, no runtime), the compiler picks the widest ISA the build
/// allows, and an optional CHARLES_KERNEL_AVX2 build compiles this one
/// translation unit with -mavx2 (guarded at runtime in kernel.cc — the
/// kernel registry falls back to scalar on CPUs without the ISA).

namespace charles {
namespace kernels {

/// True when this translation unit needs AVX2 at runtime (kernel.cc reads
/// this to decide whether the simd kernel is safe to dispatch).
#if defined(__AVX2__)
extern const bool kSimdKernelNeedsAvx2 = true;
#else
extern const bool kSimdKernelNeedsAvx2 = false;
#endif

namespace {

/// Lane count of the chunked elementwise loops: big enough to fill any
/// current vector unit several times over, small enough to live on the
/// stack.
constexpr int64_t kChunk = 64;

/// Per-thread scratch for the block buffers, so steady-state accumulation
/// never allocates (blocks arrive at up to stats_block_rows rows apiece).
struct Scratch {
  std::vector<double> design;  ///< row-major count × (p+1) shifted design
  std::vector<double> dy;      ///< shifted responses, length count
  std::vector<double> tri;     ///< transposed local triangle, (p+1)²
  std::vector<double> xty;     ///< local Zᵀdy, length p+1
};

Scratch& LocalScratch() {
  thread_local Scratch scratch;
  return scratch;
}

/// One block partial, vectorized. The accumulator layout is transposed
/// relative to SufficientStats::gram_ — tri[j·d + i] (i ≤ j) holds the
/// (i, j) upper-triangle entry — so the innermost loop runs over the
/// *contiguous* i range and vectorizes cleanly; the write-back mirrors it
/// into gram_'s both triangles, which is bit-identical to the scalar
/// kernel's per-row mirrored `+=` (both mirror entries receive the same
/// addend sequence, hence hold the same value).
SufficientStats SuffStatsBlockSimd(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t base,
    int64_t count) {
  const int64_t p = static_cast<int64_t>(columns.size());
  SufficientStats stats(p);
  if (count == 0) return stats;
  SuffStatsAccess::View view = SuffStatsAccess::Of(stats);
  const int64_t d = p + 1;

  // The shift point is the first observation, exactly as the scalar
  // kernel's first Accumulate() records it.
  const size_t first = static_cast<size_t>(rows != nullptr ? rows[0] : base);
  for (int64_t f = 0; f < p; ++f) {
    view.x_shift[f] = (*columns[static_cast<size_t>(f)])[first];
  }
  *view.y_shift = y[first];

  Scratch& scratch = LocalScratch();
  scratch.design.resize(static_cast<size_t>(count * d));
  scratch.dy.resize(static_cast<size_t>(count));
  scratch.tri.assign(static_cast<size_t>(d * d), 0.0);
  scratch.xty.assign(static_cast<size_t>(d), 0.0);
  double* design = scratch.design.data();
  double* dy = scratch.dy.data();
  double* tri = scratch.tri.data();
  double* xty = scratch.xty.data();

  // Gather the block into a row-major shifted augmented design
  // z = (1, x − x_shift): one strided pass per column keeps the source
  // reads contiguous for range blocks. The subtraction is the identical
  // expression the scalar kernel evaluates per row, so every z entry (and
  // every dy) carries the identical bits.
  for (int64_t r = 0; r < count; ++r) design[r * d] = 1.0;
  for (int64_t f = 0; f < p; ++f) {
    const double* col = columns[static_cast<size_t>(f)]->data();
    const double shift = view.x_shift[f];
    double* out = design + (f + 1);
    if (rows != nullptr) {
      for (int64_t r = 0; r < count; ++r) {
        out[r * d] = col[rows[r]] - shift;
      }
    } else {
      const double* src = col + base;
#pragma omp simd
      for (int64_t r = 0; r < count; ++r) {
        out[r * d] = src[r] - shift;
      }
    }
  }
  {
    const double* yp = y.data();
    const double y_shift = *view.y_shift;
    if (rows != nullptr) {
      for (int64_t r = 0; r < count; ++r) dy[r] = yp[rows[r]] - y_shift;
    } else {
      const double* src = yp + base;
#pragma omp simd
      for (int64_t r = 0; r < count; ++r) dy[r] = src[r] - y_shift;
    }
  }

  // Rank-1 updates, one row at a time (each accumulator's addend order is
  // the row order — the canonical fold), vectorized across the independent
  // accumulators of each triangle row.
  double yty = 0.0;
  for (int64_t r = 0; r < count; ++r) {
    const double* zr = design + r * d;
    const double dyr = dy[r];
    for (int64_t j = 0; j < d; ++j) {
      const double w = zr[j];
      double* tri_j = tri + j * d;
#pragma omp simd
      for (int64_t i = 0; i <= j; ++i) {
        tri_j[i] += zr[i] * w;
      }
    }
#pragma omp simd
    for (int64_t j = 0; j < d; ++j) {
      xty[j] += zr[j] * dyr;
    }
    yty += dyr * dyr;
  }

  // Write-back by assignment into the fresh (all +0.0) stats.
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t i = 0; i <= j; ++i) {
      const double value = tri[j * d + i];
      view.gram[i * d + j] = value;
      view.gram[j * d + i] = value;
    }
    view.xty[j] = xty[j];
  }
  *view.yty = yty;
  *view.n = count;
  return stats;
}

double AbsDiffSumSimd(const double* a, const double* b, int64_t count) {
  double sum = 0.0;
  double err[kChunk];
  for (int64_t at = 0; at < count; at += kChunk) {
    const int64_t n = std::min(kChunk, count - at);
    const double* pa = a + at;
    const double* pb = b + at;
    // SIMD computes the elementwise errors; the Σ chain stays serial in
    // index order — identical addends, identical order, identical bits.
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) {
      err[l] = std::abs(pa[l] - pb[l]);
    }
    for (int64_t l = 0; l < n; ++l) sum += err[l];
  }
  return sum;
}

double AbsSumSimd(const double* values, int64_t count) {
  double sum = 0.0;
  double mag[kChunk];
  for (int64_t at = 0; at < count; at += kChunk) {
    const int64_t n = std::min(kChunk, count - at);
    const double* pv = values + at;
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) {
      mag[l] = std::abs(pv[l]);
    }
    for (int64_t l = 0; l < n; ++l) sum += mag[l];
  }
  return sum;
}

double ProbeAbsErrorSumSimd(
    double intercept, const double* coefficients,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count) {
  double sum = 0.0;
  double y_hat[kChunk];
  double err[kChunk];
  const size_t num_features = columns.size();
  const double* yp = y.data();
  for (int64_t at = 0; at < count; at += kChunk) {
    const int64_t n = std::min(kChunk, count - at);
    const int64_t* idx = rows + at;
    // Each lane's ŷ chain is intercept, then += c_f·x_f in feature order —
    // exactly the scalar probe's (and LinearModel::PredictRow's) left-to-
    // right evaluation, run on many rows at once.
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) y_hat[l] = intercept;
    for (size_t f = 0; f < num_features; ++f) {
      const double c = coefficients[f];
      const double* col = columns[f]->data();
#pragma omp simd
      for (int64_t l = 0; l < n; ++l) {
        y_hat[l] += c * col[idx[l]];
      }
    }
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) {
      err[l] = std::abs(yp[idx[l]] - y_hat[l]);
    }
    for (int64_t l = 0; l < n; ++l) sum += err[l];
  }
  return sum;
}

/// Batched block fold: one staged block, N leaves' slices. Each slice
/// replays SuffStatsBlockSimd's exact arithmetic — same shift point (the
/// slice's first row), same row-major shifted design staging, same rank-1
/// update order — but reads the staged block buffers at rebased offsets
/// instead of the source columns. Staged values are bit-for-bit copies, so
/// every addend matches the per-leaf fold; slices run in index order, which
/// is the serial leaf order within a block.
void SuffStatsBlockBatchSimd(const StagedBlock& block, const BlockSlice* slices,
                             int64_t num_slices, SufficientStats* out) {
  const int64_t p = block.num_columns;
  const int64_t d = p + 1;
  Scratch& scratch = LocalScratch();
  for (int64_t s = 0; s < num_slices; ++s) {
    const BlockSlice& slice = slices[s];
    const int64_t count = slice.count;
    if (count == 0) continue;
    SuffStatsAccess::View view = SuffStatsAccess::Of(out[s]);

    const int64_t first_local = slice.rows != nullptr
                                    ? slice.rows[0] - block.row_begin
                                    : 0;
    for (int64_t f = 0; f < p; ++f) {
      view.x_shift[f] = block.columns[f][first_local];
    }
    *view.y_shift = block.y[first_local];

    scratch.design.resize(static_cast<size_t>(count * d));
    scratch.dy.resize(static_cast<size_t>(count));
    scratch.tri.assign(static_cast<size_t>(d * d), 0.0);
    scratch.xty.assign(static_cast<size_t>(d), 0.0);
    double* design = scratch.design.data();
    double* dy = scratch.dy.data();
    double* tri = scratch.tri.data();
    double* xty = scratch.xty.data();

    for (int64_t r = 0; r < count; ++r) design[r * d] = 1.0;
    for (int64_t f = 0; f < p; ++f) {
      const double* col = block.columns[f];
      const double shift = view.x_shift[f];
      double* dst = design + (f + 1);
      if (slice.rows != nullptr) {
        const int64_t base = block.row_begin;
        for (int64_t r = 0; r < count; ++r) {
          dst[r * d] = col[slice.rows[r] - base] - shift;
        }
      } else {
#pragma omp simd
        for (int64_t r = 0; r < count; ++r) {
          dst[r * d] = col[r] - shift;
        }
      }
    }
    {
      const double* yp = block.y;
      const double y_shift = *view.y_shift;
      if (slice.rows != nullptr) {
        const int64_t base = block.row_begin;
        for (int64_t r = 0; r < count; ++r) {
          dy[r] = yp[slice.rows[r] - base] - y_shift;
        }
      } else {
#pragma omp simd
        for (int64_t r = 0; r < count; ++r) dy[r] = yp[r] - y_shift;
      }
    }

    double yty = 0.0;
    for (int64_t r = 0; r < count; ++r) {
      const double* zr = design + r * d;
      const double dyr = dy[r];
      for (int64_t j = 0; j < d; ++j) {
        const double w = zr[j];
        double* tri_j = tri + j * d;
#pragma omp simd
        for (int64_t i = 0; i <= j; ++i) {
          tri_j[i] += zr[i] * w;
        }
      }
#pragma omp simd
      for (int64_t j = 0; j < d; ++j) {
        xty[j] += zr[j] * dyr;
      }
      yty += dyr * dyr;
    }

    for (int64_t j = 0; j < d; ++j) {
      for (int64_t i = 0; i <= j; ++i) {
        const double value = tri[j * d + i];
        view.gram[i * d + j] = value;
        view.gram[j * d + i] = value;
      }
      view.xty[j] = xty[j];
    }
    *view.yty = yty;
    *view.n = count;
  }
}

void ErrorFoldBatchSimd(const double* const* a, const double* const* b,
                        const int64_t* counts, int64_t num_folds,
                        double* out) {
  for (int64_t e = 0; e < num_folds; ++e) {
    out[e] = b[e] != nullptr ? AbsDiffSumSimd(a[e], b[e], counts[e])
                             : AbsSumSimd(a[e], counts[e]);
  }
}

/// Batched probe evaluation over one staged block: ProbeAbsErrorSumSimd's
/// chunked lanes, addressing the staged shortlist buffers. Contiguous slices
/// read the staged buffers with unit stride; indexed slices rebase once per
/// chunk. The per-lane ŷ chain and the serial Σ chain are unchanged.
void ProbeAbsErrorSumBatchSimd(const StagedBlock& block,
                               const StagedProbe* probes, int64_t num_probes,
                               double* out) {
  double y_hat[kChunk];
  double err[kChunk];
  int64_t idx[kChunk];
  for (int64_t p = 0; p < num_probes; ++p) {
    const StagedProbe& probe = probes[p];
    const int64_t count = probe.slice.count;
    const int64_t* rows = probe.slice.rows;
    double sum = 0.0;
    for (int64_t at = 0; at < count; at += kChunk) {
      const int64_t n = std::min(kChunk, count - at);
      if (rows != nullptr) {
        const int64_t base = block.row_begin;
        const int64_t* gr = rows + at;
        for (int64_t l = 0; l < n; ++l) idx[l] = gr[l] - base;
#pragma omp simd
        for (int64_t l = 0; l < n; ++l) y_hat[l] = probe.intercept;
        for (int64_t f = 0; f < probe.num_features; ++f) {
          const double c = probe.coefficients[f];
          const double* col = block.columns[probe.feature_columns[f]];
#pragma omp simd
          for (int64_t l = 0; l < n; ++l) {
            y_hat[l] += c * col[idx[l]];
          }
        }
        const double* yp = block.y;
#pragma omp simd
        for (int64_t l = 0; l < n; ++l) {
          err[l] = std::abs(yp[idx[l]] - y_hat[l]);
        }
      } else {
#pragma omp simd
        for (int64_t l = 0; l < n; ++l) y_hat[l] = probe.intercept;
        for (int64_t f = 0; f < probe.num_features; ++f) {
          const double c = probe.coefficients[f];
          const double* col = block.columns[probe.feature_columns[f]] + at;
#pragma omp simd
          for (int64_t l = 0; l < n; ++l) {
            y_hat[l] += c * col[l];
          }
        }
        const double* yp = block.y + at;
#pragma omp simd
        for (int64_t l = 0; l < n; ++l) {
          err[l] = std::abs(yp[l] - y_hat[l]);
        }
      }
      for (int64_t l = 0; l < n; ++l) sum += err[l];
    }
    out[p] = sum;
  }
}

/// Score fold: AbsDiffSumSimd's chunked |a−b| lanes and serial Σ chain,
/// with the within-tolerance tally taken in the same serial pass (it is an
/// integer count, so the pass structure is free — serial keeps it obvious).
void ScoreDiffSumSimd(const double* a, const double* b, int64_t count,
                      double tolerance, double* abs_sum, int64_t* exact) {
  double sum = 0.0;
  int64_t within = 0;
  double err[kChunk];
  for (int64_t at = 0; at < count; at += kChunk) {
    const int64_t n = std::min(kChunk, count - at);
    const double* pa = a + at;
    const double* pb = b + at;
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) {
      err[l] = std::abs(pa[l] - pb[l]);
    }
    for (int64_t l = 0; l < n; ++l) {
      sum += err[l];
      if (err[l] <= tolerance) ++within;
    }
  }
  *abs_sum = sum;
  *exact = within;
}

/// Probe score: ProbeAbsErrorSumSimd's chunked lanes (identical per-lane ŷ
/// chain) with the serial Σ + tally pass at the chunk tail.
void ProbeScoreSumSimd(double intercept, const double* coefficients,
                       const std::vector<const std::vector<double>*>& columns,
                       const std::vector<double>& y, const int64_t* rows,
                       int64_t count, double tolerance, double* abs_sum,
                       int64_t* exact) {
  double sum = 0.0;
  int64_t within = 0;
  double y_hat[kChunk];
  double err[kChunk];
  const size_t num_features = columns.size();
  const double* yp = y.data();
  for (int64_t at = 0; at < count; at += kChunk) {
    const int64_t n = std::min(kChunk, count - at);
    const int64_t* idx = rows + at;
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) y_hat[l] = intercept;
    for (size_t f = 0; f < num_features; ++f) {
      const double c = coefficients[f];
      const double* col = columns[f]->data();
#pragma omp simd
      for (int64_t l = 0; l < n; ++l) {
        y_hat[l] += c * col[idx[l]];
      }
    }
#pragma omp simd
    for (int64_t l = 0; l < n; ++l) {
      err[l] = std::abs(yp[idx[l]] - y_hat[l]);
    }
    for (int64_t l = 0; l < n; ++l) {
      sum += err[l];
      if (err[l] <= tolerance) ++within;
    }
  }
  *abs_sum = sum;
  *exact = within;
}

void GatherSimd(const double* src, const int64_t* rows, int64_t count,
                double* dst, int64_t dst_stride) {
  if (dst_stride == 1) {
#pragma omp simd
    for (int64_t i = 0; i < count; ++i) {
      dst[i] = src[rows[i]];
    }
  } else {
    for (int64_t i = 0; i < count; ++i) {
      dst[i * dst_stride] = src[rows[i]];
    }
  }
}

constexpr Kernel kSimdKernel = {
#if defined(__AVX2__)
    "simd-avx2",
#else
    "simd",
#endif
    SuffStatsBlockSimd, AbsDiffSumSimd,   AbsSumSimd,
    ProbeAbsErrorSumSimd, GatherSimd,
    SuffStatsBlockBatchSimd, ErrorFoldBatchSimd,
    ProbeAbsErrorSumBatchSimd,
    ScoreDiffSumSimd, ProbeScoreSumSimd,
};

}  // namespace

/// Raw table, before the runtime ISA guard — kernel.cc owns the guard.
const Kernel& SimdKernelTable() { return kSimdKernel; }

}  // namespace kernels
}  // namespace charles
