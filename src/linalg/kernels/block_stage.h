#ifndef CHARLES_LINALG_KERNELS_BLOCK_STAGE_H_
#define CHARLES_LINALG_KERNELS_BLOCK_STAGE_H_

/// \file
/// \brief Pooled column-major staging buffers for the batched block folds.
///
/// The batched fold path (batch_fold.h) materializes each canonical block
/// once — one contiguous copy per shortlist column plus y — and shares the
/// staged buffers across every leaf and probe whose row range intersects the
/// block. BlockStager owns those buffers. One flat allocation is reused
/// block after block (and, via ThreadLocal(), task after task on worker and
/// pool threads), so steady-state staging never allocates; a soft cap keeps
/// a one-off wide column-set from pinning a large resident buffer forever.
///
/// Staged values are plain element copies of the source column slices, so a
/// kernel reading `staged[row - row_begin]` sees bit-for-bit the value the
/// unstaged fold would have gathered — the first link in the batched path's
/// bit-identity argument (docs/architecture.md#kernel-layer).

#include <cstdint>
#include <vector>

#include "linalg/kernels/kernel.h"

namespace charles {
namespace kernels {

class BlockStager {
 public:
  /// Default soft cap on retained capacity: 512 KiB of doubles (4 MiB).
  /// Roughly 8 shortlist columns + y at the default 4096-row block with an
  /// order of magnitude to spare; a staging request may exceed the cap (the
  /// fold still runs), but oversize capacity is released before the next
  /// block rather than retained.
  static constexpr int64_t kDefaultCapDoubles = int64_t{1} << 19;

  explicit BlockStager(int64_t cap_doubles = kDefaultCapDoubles)
      : cap_doubles_(cap_doubles) {}

  /// Stages rows [row_begin, row_begin + count) of every column (and y) into
  /// the pool's contiguous buffers. The returned view (and its pointers) is
  /// valid until the next Stage() call on this stager. `y` may be null when
  /// only the columns are needed.
  StagedBlock Stage(const std::vector<const std::vector<double>*>& columns,
                    const std::vector<double>* y, int64_t row_begin,
                    int64_t count);

  /// Largest number of doubles any single Stage() call has needed — the
  /// regression tests' high-water mark.
  int64_t high_water_doubles() const { return high_water_doubles_; }

  /// Doubles currently held resident by the pool (capacity, not size).
  int64_t resident_doubles() const {
    return static_cast<int64_t>(storage_.capacity());
  }

  /// Blocks staged over this stager's lifetime.
  int64_t blocks_staged() const { return blocks_staged_; }

  int64_t cap_doubles() const { return cap_doubles_; }

  /// The calling thread's stager. Worker threads (pool, subprocess, remote
  /// daemon) are long-lived, so this is the pool that persists across
  /// RunTask calls — staging in steady state touches no allocator.
  static BlockStager& ThreadLocal();

 private:
  int64_t cap_doubles_;
  int64_t high_water_doubles_ = 0;
  int64_t blocks_staged_ = 0;
  std::vector<double> storage_;
  std::vector<const double*> pointers_;
};

}  // namespace kernels
}  // namespace charles

#endif  // CHARLES_LINALG_KERNELS_BLOCK_STAGE_H_
