#include "linalg/kernels/block_stage.h"

#include <cstring>

#include "obs/metrics.h"

namespace charles {
namespace kernels {

StagedBlock BlockStager::Stage(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>* y, int64_t row_begin, int64_t count) {
  const int64_t num_columns = static_cast<int64_t>(columns.size());
  const int64_t lanes = num_columns + (y != nullptr ? 1 : 0);
  const int64_t needed = lanes * count;

  // Enforce the soft cap *between* blocks: an oversize column-set still
  // stages (one block's fold needs the full width), but the balloon is
  // released before the next block instead of staying resident.
  if (resident_doubles() > cap_doubles_ && needed <= cap_doubles_) {
    storage_.clear();
    storage_.shrink_to_fit();
  }
  if (needed > high_water_doubles_) high_water_doubles_ = needed;
  if (static_cast<int64_t>(storage_.capacity()) < needed) {
    storage_.reserve(static_cast<size_t>(needed));
  }
  storage_.resize(static_cast<size_t>(needed));
  pointers_.resize(static_cast<size_t>(num_columns));

  double* at = storage_.data();
  for (int64_t c = 0; c < num_columns; ++c) {
    std::memcpy(at, columns[static_cast<size_t>(c)]->data() + row_begin,
                static_cast<size_t>(count) * sizeof(double));
    pointers_[static_cast<size_t>(c)] = at;
    at += count;
  }

  StagedBlock block;
  block.row_begin = row_begin;
  block.count = count;
  block.columns = pointers_.data();
  block.num_columns = num_columns;
  if (y != nullptr) {
    std::memcpy(at, y->data() + row_begin,
                static_cast<size_t>(count) * sizeof(double));
    block.y = at;
  }
  ++blocks_staged_;
  // Process-wide staging metrics: one relaxed add per staged block (cheap
  // against the memcpy above) plus the cross-thread high-water mark.
  {
    static obs::Counter* const staged =
        obs::MetricsRegistry::Global().counter("kernel.blocks_staged");
    static obs::Gauge* const high_water =
        obs::MetricsRegistry::Global().gauge("kernel.stage_high_water_doubles");
    staged->Increment();
    high_water->Max(needed);
  }
  return block;
}

BlockStager& BlockStager::ThreadLocal() {
  thread_local BlockStager stager;
  return stager;
}

}  // namespace kernels
}  // namespace charles
