#include "linalg/score_partials.h"

#include <cmath>
#include <cstring>

#include "common/wire.h"
#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"

namespace charles {

void ScorePartials::Accumulate(double y, double y_hat, double tolerance) {
  const double err = std::abs(y - y_hat);
  abs_error_sum += err;
  if (err <= tolerance) ++exact_count;
  ++n;
}

void ScorePartials::Merge(const ScorePartials& other) {
  abs_error_sum += other.abs_error_sum;
  exact_count += other.exact_count;
  n += other.n;
}

void ScorePartials::SerializeTo(std::string* out) const {
  wire::AppendScalar(out, abs_error_sum);
  wire::AppendScalar(out, exact_count);
  wire::AppendScalar(out, n);
}

Result<ScorePartials> ScorePartials::Deserialize(const unsigned char** cursor,
                                                 const unsigned char* end) {
  ScorePartials partials;
  if (!wire::ReadScalar(cursor, end, &partials.abs_error_sum) ||
      !wire::ReadScalar(cursor, end, &partials.exact_count) ||
      !wire::ReadScalar(cursor, end, &partials.n) || partials.n < 0 ||
      partials.exact_count < 0 || partials.exact_count > partials.n) {
    return Status::IOError("ScorePartials::Deserialize: truncated input");
  }
  return partials;
}

bool ScorePartials::BitIdenticalTo(const ScorePartials& other) const {
  return n == other.n && exact_count == other.exact_count &&
         std::memcmp(&abs_error_sum, &other.abs_error_sum, sizeof(double)) == 0;
}

namespace {

/// The shared fold: per-block partials (each produced in row order by a
/// kernel block primitive) merged left-to-right — the same decomposition-
/// invariant shape as error_partials.cc's FoldBlocks, carrying the exact
/// count alongside the sum. `block_fold(base, count, &sum, &exact)` must
/// fill the row-order sum and tally of the block's positional slice
/// [base, base + count).
template <typename BlockFold>
ScorePartials FoldScoreBlocks(const std::vector<int64_t>& rows,
                              int64_t block_rows, BlockFold&& block_fold) {
  ScorePartials total;
  const int64_t* data = rows.data();
  ForEachRowBlock(data, static_cast<int64_t>(rows.size()), block_rows,
                  [&](int64_t /*block*/, const int64_t* block_rows_ptr,
                      int64_t count) {
                    ScorePartials block_partial;
                    int64_t base = block_rows_ptr - data;
                    block_fold(base, count, &block_partial.abs_error_sum,
                               &block_partial.exact_count);
                    block_partial.n = count;
                    total.Merge(block_partial);
                  });
  return total;
}

}  // namespace

ScorePartials AccumulateScoreDiffBlocks(const kernels::Kernel& kernel,
                                        const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const std::vector<int64_t>& rows,
                                        int64_t block_rows, double tolerance) {
  return FoldScoreBlocks(
      rows, block_rows,
      [&](int64_t base, int64_t count, double* sum, int64_t* exact) {
        kernel.score_diff_sum(a.data() + base, b.data() + base, count,
                              tolerance, sum, exact);
      });
}

ScorePartials AccumulateScoreDiffBlocks(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const std::vector<int64_t>& rows,
                                        int64_t block_rows, double tolerance) {
  return AccumulateScoreDiffBlocks(kernels::ActiveKernel(), a, b, rows,
                                   block_rows, tolerance);
}

}  // namespace charles
