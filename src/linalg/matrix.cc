#include "linalg/matrix.h"

#include <cmath>

#include "common/string_util.h"

namespace charles {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int64_t>(rows.size()), static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    CHARLES_CHECK_EQ(rows[r].size(), rows[0].size()) << "ragged rows";
    for (size_t c = 0; c < rows[r].size(); ++c) {
      m.At(static_cast<int64_t>(r), static_cast<int64_t>(c)) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  CHARLES_CHECK_EQ(cols_, other.rows_) << "dimension mismatch in MatMul";
  Matrix out(rows_, other.cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      if (a == 0.0) continue;
      const double* other_row = other.RowPtr(k);
      double* out_row = out.RowPtr(r);
      for (int64_t c = 0; c < other.cols_; ++c) out_row[c] += a * other_row[c];
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  CHARLES_CHECK_EQ(static_cast<int64_t>(v.size()), cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (int64_t c = 0; c < cols_; ++c) sum += row[c] * v[static_cast<size_t>(c)];
    out[static_cast<size_t>(r)] = sum;
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (int64_t i = 0; i < cols_; ++i) {
      double a = row[i];
      if (a == 0.0) continue;
      double* out_row = out.RowPtr(i);
      for (int64_t j = i; j < cols_; ++j) out_row[j] += a * row[j];
    }
  }
  // Mirror the upper triangle.
  for (int64_t i = 0; i < cols_; ++i) {
    for (int64_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  return out;
}

std::vector<double> Matrix::TransposeVec(const std::vector<double>& y) const {
  CHARLES_CHECK_EQ(static_cast<int64_t>(y.size()), rows_);
  std::vector<double> out(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double w = y[static_cast<size_t>(r)];
    if (w == 0.0) continue;
    for (int64_t c = 0; c < cols_; ++c) out[static_cast<size_t>(c)] += row[c] * w;
  }
  return out;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Matrix::EqualsApprox(const Matrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows) const {
  std::string out = "Matrix(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")\n";
  int64_t shown = std::min<int64_t>(rows_, max_rows);
  for (int64_t r = 0; r < shown; ++r) {
    out += "  [";
    for (int64_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += FormatDouble(At(r, c), 4);
    }
    out += "]\n";
  }
  if (shown < rows_) out += "  ... (" + std::to_string(rows_ - shown) + " more rows)\n";
  return out;
}

}  // namespace charles
