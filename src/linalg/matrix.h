#ifndef CHARLES_LINALG_MATRIX_H_
#define CHARLES_LINALG_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace charles {

/// \brief Dense row-major matrix of doubles.
///
/// Sized for the regression problems ChARLES solves (design matrices with a
/// handful of columns and up to ~10^5 rows); favours clarity and cache-
/// friendly row iteration over BLAS-grade tuning.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), fill) {
    CHARLES_CHECK_GE(rows, 0);
    CHARLES_CHECK_GE(cols, 0);
  }

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& At(int64_t r, int64_t c) {
    CHARLES_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double At(int64_t r, int64_t c) const {
    CHARLES_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Raw pointer to row r (cols() contiguous doubles).
  double* RowPtr(int64_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(int64_t r) const { return data_.data() + r * cols_; }

  Matrix Transpose() const;

  /// this * other; dimensions must agree.
  Matrix MatMul(const Matrix& other) const;

  /// this * v for a cols()-length vector.
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// A^T A (the Gram matrix), computed without materializing A^T.
  Matrix Gram() const;

  /// A^T y for a rows()-length vector.
  std::vector<double> TransposeVec(const std::vector<double>& y) const;

  /// Max |a_ij| over all entries; 0 for empty matrices.
  double MaxAbs() const;

  bool EqualsApprox(const Matrix& other, double tolerance = 1e-9) const;

  std::string ToString(int max_rows = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace charles

#endif  // CHARLES_LINALG_MATRIX_H_
