#ifndef CHARLES_LINALG_BATCH_FOLD_H_
#define CHARLES_LINALG_BATCH_FOLD_H_

/// \file
/// \brief Batched multi-leaf sweep drivers over staged canonical blocks.
///
/// The per-leaf folds (AccumulateRowBlocks, the shard sweeps in
/// distributed/backend.cc) walk the snapshot columns once *per leaf*: a
/// sweep over L leaves reads every column L times and pays a strided gather
/// per block. These drivers invert the loop nest — **block-major over the
/// leaf-major folds** — so each canonical block is staged once
/// (one contiguous copy per column, BlockStager) and every leaf or probe
/// whose rows intersect the block folds against the cache-resident staged
/// buffers in a single batched kernel call.
///
/// Bit-identity with the per-leaf path is structural, not numeric luck:
///
///  1. staged buffers are bit-for-bit copies of the source column slices,
///     so every addend a batched kernel computes equals the per-leaf
///     kernel's addend;
///  2. within one staged block, accumulators fold in request index order —
///     the serial leaf order — and each (leaf, block) partial is built
///     fresh, exactly as the canonical fold prescribes;
///  3. block-major iteration visits blocks in ascending global order, so
///     each leaf's partials are *emitted* in ascending block order — the
///     same sequence the per-leaf fold produces — and the caller's
///     left-to-right Merge chain is unchanged.
///
/// The drivers are deliberately emit-based (one callback per (request,
/// block) partial): the shard sweeps keep per-leaf block lists for the wire
/// format, while the engine-side conveniences below merge in place.

#include <cstdint>
#include <vector>

#include "linalg/error_partials.h"
#include "linalg/kernels/block_stage.h"
#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"

namespace charles {
namespace kernels {

/// Diagnostics of one batched sweep, folded up to
/// SummaryList::batched_blocks_staged / batched_fold_accumulators /
/// batch_leaves_per_block_max (the histogram summary: count, mean via the
/// quotient, max).
struct BatchFoldCounters {
  int64_t blocks_staged = 0;        ///< Blocks materialized by the stager.
  int64_t accumulators_folded = 0;  ///< Σ per-block accumulators folded.
  int64_t max_accumulators_per_block = 0;
  void Merge(const BatchFoldCounters& other) {
    blocks_staged += other.blocks_staged;
    accumulators_folded += other.accumulators_folded;
    if (other.max_accumulators_per_block > max_accumulators_per_block) {
      max_accumulators_per_block = other.max_accumulators_per_block;
    }
  }
};

/// One leaf's rows for a batched moments sweep. `rows` non-null: `count`
/// ascending global row indices. `rows` null: the contiguous range
/// [begin, begin + count), with `begin` block-aligned (the all-rows /
/// signal-stats case).
struct BatchLeafRequest {
  const int64_t* rows = nullptr;
  int64_t count = 0;
  int64_t begin = 0;
};

/// One probe model for a batched error sweep: the fitted model, its feature
/// positions within the staged column set, and the (ascending, global) rows
/// it owns.
struct BatchProbeRequest {
  double intercept = 0.0;
  const double* coefficients = nullptr;
  const int64_t* feature_columns = nullptr;
  int64_t num_features = 0;
  const int64_t* rows = nullptr;
  int64_t count = 0;
};

namespace batch_internal {

/// Block-major slicer shared by the sweep drivers: visits the canonical
/// blocks of [range_begin, range_end) in ascending order, computes each
/// request's slice of the block with monotone per-request cursors, and
/// invokes `fold(block_id, block_begin, block_count, slices, ordinals)` for
/// blocks intersected by at least one request. `sources[i]` mirrors
/// BatchLeafRequest's addressing. `range_begin` must be block-aligned.
template <typename Fold>
void ForEachSlicedBlock(const std::vector<BatchLeafRequest>& sources,
                        int64_t range_begin, int64_t range_end,
                        int64_t block_rows, Fold&& fold) {
  const int64_t num_sources = static_cast<int64_t>(sources.size());
  if (num_sources == 0 || range_end <= range_begin) return;
  std::vector<int64_t> cursors(sources.size(), 0);
  std::vector<BlockSlice> slices;
  std::vector<int64_t> ordinals;
  slices.reserve(sources.size());
  ordinals.reserve(sources.size());
  int64_t remaining = 0;
  for (const BatchLeafRequest& source : sources) remaining += source.count;

  const int64_t first_block = range_begin / block_rows;
  const int64_t last_block = (range_end + block_rows - 1) / block_rows;
  for (int64_t block = first_block; block < last_block && remaining > 0;
       ++block) {
    const int64_t block_begin = block * block_rows;
    const int64_t block_end =
        block_begin + block_rows < range_end ? block_begin + block_rows
                                             : range_end;
    slices.clear();
    ordinals.clear();
    for (int64_t s = 0; s < num_sources; ++s) {
      const BatchLeafRequest& source = sources[static_cast<size_t>(s)];
      int64_t& cursor = cursors[static_cast<size_t>(s)];
      BlockSlice slice;
      if (source.rows != nullptr) {
        int64_t hi = cursor;
        while (hi < source.count && source.rows[hi] < block_end) ++hi;
        if (hi == cursor) continue;
        slice.rows = source.rows + cursor;
        slice.count = hi - cursor;
        cursor = hi;
      } else {
        const int64_t lo = source.begin > block_begin ? source.begin
                                                      : block_begin;
        const int64_t hi = source.begin + source.count < block_end
                               ? source.begin + source.count
                               : block_end;
        if (hi <= lo) continue;
        slice.rows = nullptr;
        slice.count = hi - lo;
      }
      remaining -= slice.count;
      slices.push_back(slice);
      ordinals.push_back(s);
    }
    if (slices.empty()) continue;
    fold(block, block_begin, block_end - block_begin, slices, ordinals);
  }
}

}  // namespace batch_internal

/// Batched leaf-moments sweep: stages each intersected canonical block of
/// [range_begin, range_end) once and folds every request's slice with one
/// suffstats_block_batch call, emitting
/// `emit(request_ordinal, block_id, SufficientStats&&)` fresh partials — for
/// each request, in ascending block order, bit-identical to that request's
/// per-leaf ForEachRowBlock + AccumulateRows sweep. `range_begin` must be
/// block-aligned (shard ranges and 0 are); every request's rows must lie in
/// the range.
template <typename Emit>
void BatchFoldLeafMoments(const Kernel& kernel,
                          const std::vector<const std::vector<double>*>& columns,
                          const std::vector<double>& y,
                          const std::vector<BatchLeafRequest>& requests,
                          int64_t range_begin, int64_t range_end,
                          int64_t block_rows, BlockStager* stager,
                          BatchFoldCounters* counters, Emit&& emit) {
  const int64_t p = static_cast<int64_t>(columns.size());
  std::vector<SufficientStats> fresh;
  batch_internal::ForEachSlicedBlock(
      requests, range_begin, range_end, block_rows,
      [&](int64_t block, int64_t block_begin, int64_t block_count,
          const std::vector<BlockSlice>& slices,
          const std::vector<int64_t>& ordinals) {
        StagedBlock staged = stager->Stage(columns, &y, block_begin,
                                           block_count);
        const int64_t folds = static_cast<int64_t>(slices.size());
        fresh.assign(slices.size(), SufficientStats(p));
        kernel.suffstats_block_batch(staged, slices.data(), folds,
                                     fresh.data());
        counters->blocks_staged += 1;
        counters->accumulators_folded += folds;
        if (folds > counters->max_accumulators_per_block) {
          counters->max_accumulators_per_block = folds;
        }
        for (int64_t i = 0; i < folds; ++i) {
          emit(ordinals[static_cast<size_t>(i)], block,
               std::move(fresh[static_cast<size_t>(i)]));
        }
      });
}

/// Batched probe-error sweep: the kErrorPartials analogue. Stages each
/// intersected block once and evaluates every probe's slice with one
/// probe_abs_error_sum_batch call, emitting
/// `emit(probe_ordinal, block_id, ErrorPartials&&)` — per probe, ascending
/// block order, bit-identical to the per-probe ForEachRowBlock +
/// probe_abs_error_sum sweep.
template <typename Emit>
void BatchFoldProbeErrors(const Kernel& kernel,
                          const std::vector<const std::vector<double>*>& columns,
                          const std::vector<double>& y,
                          const std::vector<BatchProbeRequest>& probes,
                          int64_t range_begin, int64_t range_end,
                          int64_t block_rows, BlockStager* stager,
                          BatchFoldCounters* counters, Emit&& emit) {
  std::vector<BatchLeafRequest> sources(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    sources[i].rows = probes[i].rows;
    sources[i].count = probes[i].count;
  }
  std::vector<StagedProbe> staged_probes;
  std::vector<double> sums;
  batch_internal::ForEachSlicedBlock(
      sources, range_begin, range_end, block_rows,
      [&](int64_t block, int64_t block_begin, int64_t block_count,
          const std::vector<BlockSlice>& slices,
          const std::vector<int64_t>& ordinals) {
        StagedBlock staged = stager->Stage(columns, &y, block_begin,
                                           block_count);
        const int64_t folds = static_cast<int64_t>(slices.size());
        staged_probes.resize(slices.size());
        sums.resize(slices.size());
        for (int64_t i = 0; i < folds; ++i) {
          const BatchProbeRequest& probe =
              probes[static_cast<size_t>(ordinals[static_cast<size_t>(i)])];
          StagedProbe& sp = staged_probes[static_cast<size_t>(i)];
          sp.intercept = probe.intercept;
          sp.coefficients = probe.coefficients;
          sp.feature_columns = probe.feature_columns;
          sp.num_features = probe.num_features;
          sp.slice = slices[static_cast<size_t>(i)];
        }
        kernel.probe_abs_error_sum_batch(staged, staged_probes.data(), folds,
                                         sums.data());
        counters->blocks_staged += 1;
        counters->accumulators_folded += folds;
        if (folds > counters->max_accumulators_per_block) {
          counters->max_accumulators_per_block = folds;
        }
        for (int64_t i = 0; i < folds; ++i) {
          ErrorPartials partials;
          partials.abs_error_sum = sums[static_cast<size_t>(i)];
          partials.n = slices[static_cast<size_t>(i)].count;
          emit(ordinals[static_cast<size_t>(i)], block, std::move(partials));
        }
      });
}

/// Convenience for tests, benches, and the engine's all-rows folds: the
/// batched sweep with the per-request Merge chain applied in place — returns
/// one merged SufficientStats per request, each bit-identical to
/// AccumulateRowBlocks (or AccumulateRangeBlocks for a contiguous request)
/// over that request's rows.
std::vector<SufficientStats> BatchAccumulateRowBlocks(
    const Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y,
    const std::vector<BatchLeafRequest>& requests, int64_t range_begin,
    int64_t range_end, int64_t block_rows, BlockStager* stager,
    BatchFoldCounters* counters);

/// Active-kernel, thread-local-stager variant.
std::vector<SufficientStats> BatchAccumulateRowBlocks(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y,
    const std::vector<BatchLeafRequest>& requests, int64_t range_begin,
    int64_t range_end, int64_t block_rows, BatchFoldCounters* counters);

/// Whether a sweep folding `num_accumulators` accumulators over shared rows
/// should take the batched path under `mode`: kOn always, kOff never, kAuto
/// when at least two accumulators share the staging cost.
bool ShouldBatchFold(BatchFoldMode mode, int64_t num_accumulators);

}  // namespace kernels
}  // namespace charles

#endif  // CHARLES_LINALG_BATCH_FOLD_H_
