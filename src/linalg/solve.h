#ifndef CHARLES_LINALG_SOLVE_H_
#define CHARLES_LINALG_SOLVE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace charles {

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization. Fails with InvalidArgument if A is not SPD (within a
/// pivot tolerance) or dimensions mismatch.
Result<std::vector<double>> CholeskySolve(const Matrix& a, const std::vector<double>& b);

/// Least-squares solution of min ||A x - b||_2 via Householder QR with
/// column checks. Rank-deficient systems fail with InvalidArgument; callers
/// that want a best-effort answer should use RidgeLeastSquares.
Result<std::vector<double>> QrLeastSquares(const Matrix& a, const std::vector<double>& b);

/// Regularized least squares: solves (A^T A + lambda I) x = A^T b via
/// Cholesky. Always solvable for lambda > 0; the workhorse behind
/// LinearRegression when the design matrix is (near-)collinear.
Result<std::vector<double>> RidgeLeastSquares(const Matrix& a, const std::vector<double>& b,
                                              double lambda);

}  // namespace charles

#endif  // CHARLES_LINALG_SOLVE_H_
