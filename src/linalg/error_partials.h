#ifndef CHARLES_LINALG_ERROR_PARTIALS_H_
#define CHARLES_LINALG_ERROR_PARTIALS_H_

/// \file
/// \brief Exact L1-error partials, beside SufficientStats.
///
/// OLS moments pin a fit's r²/rmse down exactly but can only *estimate* its
/// L1 error (SufficientStats::Solution::mae_estimate is the Gaussian
/// rmse·sqrt(2/π) approximation). The exact mean absolute error of a
/// candidate transformation needs Σ|y − ŷ| over its rows — a row scan that,
/// before this accumulator, only the central process could perform.
///
/// ErrorPartials is the distributable form of that scan: (Σ|y − ŷ|, n)
/// accumulated per canonical row block and folded in ascending block order —
/// the same decomposition-invariant recipe AccumulateRowBlocks uses for
/// moments (see linalg/suffstats.h). Any executor that owns whole blocks
/// produces the identical per-block partials, and the identical fold, so a
/// coordinator merging shard partials computes the *bit-identical* MAE a
/// single central scan would have — float addition's non-associativity never
/// shows, because every decomposition replays the same additions in the same
/// order.
///
/// This is the `kErrorPartials` currency of the distributed ShardTask
/// protocol (distributed/backend.h) and the evaluator behind FitLeaf's exact
/// leaf MAE and SnapModel's accuracy baseline under
/// CharlesOptions::use_sufficient_stats.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace charles {

namespace kernels {
struct Kernel;
}  // namespace kernels

/// \brief Accumulated L1-error partials: Σ|y − ŷ| and the row count.
///
/// Accumulation order is the caller's contract (float addition is not
/// associative); the canonical block fold below is what makes shard-merged
/// partials bit-identical to a central scan.
struct ErrorPartials {
  double abs_error_sum = 0.0;
  int64_t n = 0;

  /// Folds one observation in.
  void Accumulate(double y, double y_hat);

  /// Adds `other`'s partials into this (the partials of the union of two
  /// disjoint row sets). Exact under a fixed merge order.
  void Merge(const ErrorPartials& other);

  /// Mean absolute error of the accumulated rows (0 before any row).
  double mae() const {
    return n > 0 ? abs_error_sum / static_cast<double>(n) : 0.0;
  }

  /// \name Wire format (distributed shard execution).
  /// Native-endian, bit-for-bit doubles — the same same-architecture
  /// pipe/socket discipline as SufficientStats' wire format.
  /// @{
  void SerializeTo(std::string* out) const;
  static Result<ErrorPartials> Deserialize(const unsigned char** cursor,
                                           const unsigned char* end);
  /// Exact representation equality (every byte): the comparator of wire
  /// round-trip and shard-parity tests.
  bool BitIdenticalTo(const ErrorPartials& other) const;
  /// @}
};

/// \name Canonical block-structured L1 accumulation
///
/// The positional-array entry points of the canonical computation: rows are
/// grouped into the run's fixed blocks by *global* row index, each block's
/// |errors| are summed in row order into a fresh partial, and the partials
/// are folded left-to-right with Merge. `rows` must be ascending;
/// `block_rows` >= 1. `values` arrays are positional — values[i] belongs to
/// global row rows[i] — matching how the engine holds leaf-aligned
/// predictions.
/// @{

/// Canonical fold of Σ| a[i] − b[i] | (e.g. a = observed y, b = predictions).
/// Per-block sums dispatch through the process-wide active kernel
/// (linalg/kernels/kernel.h); every kernel produces the same bits.
ErrorPartials AccumulateAbsDiffBlocks(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      const std::vector<int64_t>& rows,
                                      int64_t block_rows);

/// Canonical fold of Σ| values[i] | (e.g. precomputed residuals).
ErrorPartials AccumulateAbsBlocks(const std::vector<double>& values,
                                  const std::vector<int64_t>& rows,
                                  int64_t block_rows);

/// Batched canonical fold: `a.size()` positional folds sharing one ascending
/// `rows` vector, evaluated with a single kernel error_fold_batch call per
/// block. Entry e computes Σ|a[e][i] − b[e][i]| (or Σ|a[e][i]| when b[e] is
/// null); each result is bit-identical to the corresponding single-fold
/// AccumulateAbsDiffBlocks / AccumulateAbsBlocks. `b` must be empty (all
/// abs-sum) or a.size() long.
std::vector<ErrorPartials> AccumulateAbsDiffBlocksBatch(
    const std::vector<const std::vector<double>*>& a,
    const std::vector<const std::vector<double>*>& b,
    const std::vector<int64_t>& rows, int64_t block_rows);

/// \name Kernel-explicit variants (differential testing and benches).
/// @{
ErrorPartials AccumulateAbsDiffBlocks(const kernels::Kernel& kernel,
                                      const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      const std::vector<int64_t>& rows,
                                      int64_t block_rows);
ErrorPartials AccumulateAbsBlocks(const kernels::Kernel& kernel,
                                  const std::vector<double>& values,
                                  const std::vector<int64_t>& rows,
                                  int64_t block_rows);
std::vector<ErrorPartials> AccumulateAbsDiffBlocksBatch(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& a,
    const std::vector<const std::vector<double>*>& b,
    const std::vector<int64_t>& rows, int64_t block_rows);
/// @}

/// @}

}  // namespace charles

#endif  // CHARLES_LINALG_ERROR_PARTIALS_H_
