#include "linalg/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace charles {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mean) * (x - mean);
  return sum / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Covariance(const std::vector<double>& xs, const std::vector<double>& ys) {
  CHARLES_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sum = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) sum += (xs[i] - mx) * (ys[i] - my);
  return sum / static_cast<double>(xs.size());
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  CHARLES_CHECK_EQ(xs.size(), ys.size());
  double sx = Stddev(xs);
  double sy = Stddev(ys);
  if (sx <= 1e-300 || sy <= 1e-300) return 0.0;
  double r = Covariance(xs, ys) / (sx * sy);
  return std::clamp(r, -1.0, 1.0);
}

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Tie group [i, j]: assign the average 1-based rank.
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  CHARLES_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

double CorrelationRatio(const std::vector<int>& groups, const std::vector<double>& ys) {
  CHARLES_CHECK_EQ(groups.size(), ys.size());
  if (ys.size() < 2) return 0.0;
  double total_var = Variance(ys);
  if (total_var <= 1e-300) return 0.0;
  double grand_mean = Mean(ys);
  std::unordered_map<int, std::pair<double, int64_t>> sums;  // group -> (sum, count)
  for (size_t i = 0; i < ys.size(); ++i) {
    auto& entry = sums[groups[i]];
    entry.first += ys[i];
    entry.second += 1;
  }
  double between = 0.0;
  for (const auto& [group, entry] : sums) {
    double group_mean = entry.first / static_cast<double>(entry.second);
    between += static_cast<double>(entry.second) * (group_mean - grand_mean) *
               (group_mean - grand_mean);
  }
  between /= static_cast<double>(ys.size());
  double eta2 = between / total_var;
  return std::sqrt(std::clamp(eta2, 0.0, 1.0));
}

double AdjustedCorrelationRatio(const std::vector<int>& groups,
                                const std::vector<double>& ys) {
  double eta = CorrelationRatio(groups, ys);
  std::unordered_set<int> distinct(groups.begin(), groups.end());
  auto n = static_cast<double>(ys.size());
  auto k = static_cast<double>(distinct.size());
  if (n <= k) return 0.0;
  double eta2_adj = 1.0 - (1.0 - eta * eta) * (n - 1.0) / (n - k);
  return std::sqrt(std::clamp(eta2_adj, 0.0, 1.0));
}

Result<double> Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return Status::InvalidArgument("Quantile of empty input");
  if (q < 0.0 || q > 1.0) return Status::OutOfRange("quantile must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  double position = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(position));
  size_t hi = static_cast<size_t>(std::ceil(position));
  double frac = position - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double MeanAbsoluteError(const std::vector<double>& a, const std::vector<double>& b) {
  CHARLES_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  return L1Distance(a, b) / static_cast<double>(a.size());
}

double RootMeanSquaredError(const std::vector<double>& a, const std::vector<double>& b) {
  CHARLES_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  CHARLES_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

}  // namespace charles
