#ifndef CHARLES_LINALG_SUFFSTATS_H_
#define CHARLES_LINALG_SUFFSTATS_H_

/// \file
/// \brief Sufficient statistics for ordinary least squares.
///
/// An OLS fit of y on features x₁..x_p needs only the moments
/// (XᵀX, Xᵀy, yᵀy, n) of the *augmented* design z = (1, x₁..x_p) — not the
/// rows themselves. SufficientStats accumulates those moments in one scan
/// and answers any number of fits afterwards at O(p³), independent of row
/// count. Three properties make it the engine's leaf-fit workhorse:
///
///  - **Additivity.** Stats of a union of disjoint row sets are the sums of
///    the per-set stats (Merge), so child-partition stats roll up into
///    parent- or table-level fits without rescanning rows.
///  - **Marginalization.** The stats of any feature *subset* are a
///    principal submatrix of the full stats (Project), so one scan over the
///    full transformation shortlist serves every candidate subset T — only
///    the p×p solve differs per T.
///  - **Determinism.** Accumulate is a fold over rows in the caller's order;
///    replaying serial row order yields bit-identical moments on any thread,
///    which is what keeps parallel engine output bit-identical to serial.
///
/// Internally the moments are accumulated relative to a **shift** — the
/// first observation's feature/response values. Raw moments lose roughly
/// (mean/spread)² digits to cancellation when the solve re-centers them
/// (Σx² − n·x̄² with mean ≫ spread); shifting by a sample point bounds the
/// re-centering cancellation by the data's own spread, which keeps the
/// solved coefficients within a few ULPs of the row-level QR answer on
/// well-conditioned data. The shift is pure representation: Merge translates
/// between shifts exactly, and Solve's output is shift-independent up to
/// those last ULPs.
///
/// SolveOls solves the centered normal equations by Cholesky and reports
/// failure — rather than a noisy answer — on ill-conditioned systems, so
/// callers can fall back to the row-level Householder QR path.

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace charles {

namespace kernels {
struct Kernel;
struct SuffStatsAccess;
}  // namespace kernels

/// \brief Accumulated OLS moments (XᵀX, Xᵀy, yᵀy, n) over the augmented
/// design z = (1, x₁..x_p), stored relative to a first-observation shift.
class SufficientStats {
 public:
  /// Zero-feature stats (intercept-only); establishes the moment-buffer
  /// invariant so Accumulate on a default-constructed instance is safe.
  SufficientStats() : SufficientStats(0) {}

  /// Stats over `num_features` features (the intercept column is implicit).
  explicit SufficientStats(int64_t num_features);

  /// Folds one observation in: `x` points at num_features() doubles, `y` is
  /// the response. The first observation becomes the shift point.
  /// Accumulation order is the caller's contract — replay rows in a fixed
  /// order to get bit-identical moments.
  void Accumulate(const double* x, double y);

  /// Adds `other`'s moments into this (the stats of the union of two
  /// disjoint row sets), translating between shift points exactly. Fails on
  /// a feature-count mismatch.
  Status Merge(const SufficientStats& other);

  /// Stats restricted to the features at `subset` (indices into
  /// 0..num_features()-1, in the order given). The result is exactly what
  /// accumulating only those features would have produced.
  SufficientStats Project(const std::vector<int>& subset) const;

  int64_t num_features() const { return p_; }
  int64_t n() const { return n_; }

  /// \name Derived (shift-independent) descriptive moments.
  /// @{
  /// Mean of feature f over the accumulated rows (0 before any row).
  double MeanX(int64_t f) const;
  /// Mean response.
  double MeanY() const;
  /// Centered cross-moment S_ij = Σ (x_i − x̄_i)(x_j − x̄_j).
  double Sxx(int64_t i, int64_t j) const;
  /// Centered feature/response moment S_iy = Σ (x_i − x̄_i)(y − ȳ).
  double Sxy(int64_t i) const;
  /// Centered response scatter S_yy = Σ (y − ȳ)² (clamped at 0).
  double Syy() const;
  /// @}

  /// \brief One solved OLS system, with fit diagnostics derived from the
  /// moments alone (no pass over rows).
  ///
  /// `r2` and `rmse` are exact (both are functions of the second moments).
  /// `mae_estimate` is the Gaussian-residual approximation
  /// rmse · sqrt(2/π) — the moments cannot determine the exact L1 error;
  /// callers that need it recompute it on their prediction pass.
  struct Solution {
    double intercept = 0.0;
    std::vector<double> coefficients;  ///< One per requested feature.
    double r2 = 0.0;
    double rmse = 0.0;
    double mae_estimate = 0.0;
  };

  /// \brief OLS fit of y on the features at `subset` (empty = intercept
  /// only), from the moments alone.
  ///
  /// Solves the centered p×p normal equations by Cholesky. Fails with
  /// InvalidArgument when the system is underdetermined (n < |subset| + 1)
  /// or ill-conditioned (a Cholesky pivot collapses relative to its
  /// diagonal) — callers should treat failure as "use the row-level QR
  /// path", which either solves the system more stably or correctly reports
  /// rank deficiency.
  Result<Solution> SolveOls(const std::vector<int>& subset) const;

  /// SolveOls over every feature, in order.
  Result<Solution> SolveOls() const;

  /// \name Wire format (distributed shard execution).
  ///
  /// Shard workers ship per-leaf moments to the coordinator as raw bytes.
  /// Doubles are copied bit-for-bit in native byte order — the format is a
  /// same-architecture pipe/socket protocol, not an archival format — so a
  /// round trip reproduces the moments exactly and the coordinator's merge
  /// is bit-identical to an in-process one.
  /// @{
  /// Appends the stats' wire encoding to `out`.
  void SerializeTo(std::string* out) const;
  /// Reads one stats encoding from `*cursor`, advancing it past the bytes
  /// consumed. Fails (without advancing past `end`) on truncated or
  /// malformed input.
  static Result<SufficientStats> Deserialize(const unsigned char** cursor,
                                             const unsigned char* end);
  /// Exact representation equality — shift point, counts, and every moment
  /// byte-for-byte. The comparator of round-trip and shard-parity tests
  /// (operator== would be misleading: two stats of the same rows in a
  /// different order are semantically equal but not bit-identical).
  bool BitIdenticalTo(const SufficientStats& other) const;
  /// @}

 private:
  /// The vectorized kernel writes block moments straight into the buffers
  /// (linalg/kernels/suffstats_access.h) — the one private doorway.
  friend struct kernels::SuffStatsAccess;

  int64_t p_ = 0;
  int64_t n_ = 0;
  /// Shift point: the first accumulated observation (features, response).
  std::vector<double> x_shift_;
  double y_shift_ = 0.0;
  /// Augmented Gram ZᵀZ of the shifted design z = (1, x − x_shift),
  /// row-major (p+1)², kept fully mirrored.
  std::vector<double> gram_;
  /// Zᵀ(y − y_shift), length p+1.
  std::vector<double> xty_;
  /// Σ (y − y_shift)².
  double yty_ = 0.0;
};

/// \name Canonical block-structured accumulation
///
/// The distributed determinism contract (docs/distributed.md) needs leaf
/// moments that are *decomposition-invariant*: the same bits whether one
/// process scans every row or N shards each scan a row range. A single
/// sequential fold cannot be split (float addition is not associative), so
/// the canonical computation is block-structured instead:
///
///  1. rows are grouped into fixed *blocks* by global row index
///     (block b = rows [b·B, (b+1)·B) for a run-wide block size B);
///  2. each block's rows are accumulated into a fresh partial, in row order;
///  3. the per-block partials are folded left-to-right with Merge.
///
/// Every step is deterministic and block-local, so any executor that owns
/// whole blocks reproduces the identical partials, and the identical fold —
/// the shard planner only ever cuts at block boundaries. A leaf spanning a
/// single block degenerates to exactly the plain sequential scan (Merge
/// into empty stats is a copy).
/// @{

/// Calls `fn(block, rows + lo, count)` for each maximal run of `rows`
/// (ascending row indices) falling in one block of size `block_rows`.
template <typename Fn>
void ForEachRowBlock(const int64_t* rows, int64_t count, int64_t block_rows,
                     Fn&& fn) {
  int64_t lo = 0;
  while (lo < count) {
    int64_t block = rows[lo] / block_rows;
    int64_t hi = lo + 1;
    while (hi < count && rows[hi] / block_rows == block) ++hi;
    fn(block, rows + lo, hi - lo);
    lo = hi;
  }
}

/// One partial: accumulates `count` rows (gathering one value per column, in
/// column order) into fresh stats. The shared primitive of engine-side and
/// shard-side accumulation — both must produce byte-identical partials.
/// Dispatches through the process-wide active kernel
/// (linalg/kernels/kernel.h); every kernel produces the same bits, so the
/// dispatch is invisible to results.
SufficientStats AccumulateRows(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count);

/// The canonical computation: per-block partials folded with Merge, as
/// described above. `rows` must be ascending; `block_rows` >= 1.
SufficientStats AccumulateRowBlocks(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const std::vector<int64_t>& rows,
    int64_t block_rows);

/// The canonical computation over the contiguous range [0, num_rows) — the
/// all-rows case, without materializing an identity index vector.
/// Bit-identical to AccumulateRowBlocks over {0, ..., num_rows − 1}.
SufficientStats AccumulateRangeBlocks(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, int64_t num_rows, int64_t block_rows);

/// \name Kernel-explicit variants
///
/// The same computations through a caller-chosen kernel instead of the
/// process-wide active one — the differential surface of the kernel-parity
/// harness (tests/kernel_parity_test.cc) and the scalar-vs-simd bench grid.
/// @{
SufficientStats AccumulateRows(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count);
SufficientStats AccumulateRowBlocks(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const std::vector<int64_t>& rows,
    int64_t block_rows);
SufficientStats AccumulateRangeBlocks(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, int64_t num_rows, int64_t block_rows);
/// @}

/// @}

}  // namespace charles

#endif  // CHARLES_LINALG_SUFFSTATS_H_
