#ifndef CHARLES_LINALG_SUFFSTATS_H_
#define CHARLES_LINALG_SUFFSTATS_H_

/// \file
/// \brief Sufficient statistics for ordinary least squares.
///
/// An OLS fit of y on features x₁..x_p needs only the moments
/// (XᵀX, Xᵀy, yᵀy, n) of the *augmented* design z = (1, x₁..x_p) — not the
/// rows themselves. SufficientStats accumulates those moments in one scan
/// and answers any number of fits afterwards at O(p³), independent of row
/// count. Three properties make it the engine's leaf-fit workhorse:
///
///  - **Additivity.** Stats of a union of disjoint row sets are the sums of
///    the per-set stats (Merge), so child-partition stats roll up into
///    parent- or table-level fits without rescanning rows.
///  - **Marginalization.** The stats of any feature *subset* are a
///    principal submatrix of the full stats (Project), so one scan over the
///    full transformation shortlist serves every candidate subset T — only
///    the p×p solve differs per T.
///  - **Determinism.** Accumulate is a fold over rows in the caller's order;
///    replaying serial row order yields bit-identical moments on any thread,
///    which is what keeps parallel engine output bit-identical to serial.
///
/// Internally the moments are accumulated relative to a **shift** — the
/// first observation's feature/response values. Raw moments lose roughly
/// (mean/spread)² digits to cancellation when the solve re-centers them
/// (Σx² − n·x̄² with mean ≫ spread); shifting by a sample point bounds the
/// re-centering cancellation by the data's own spread, which keeps the
/// solved coefficients within a few ULPs of the row-level QR answer on
/// well-conditioned data. The shift is pure representation: Merge translates
/// between shifts exactly, and Solve's output is shift-independent up to
/// those last ULPs.
///
/// SolveOls solves the centered normal equations by Cholesky and reports
/// failure — rather than a noisy answer — on ill-conditioned systems, so
/// callers can fall back to the row-level Householder QR path.

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace charles {

/// \brief Accumulated OLS moments (XᵀX, Xᵀy, yᵀy, n) over the augmented
/// design z = (1, x₁..x_p), stored relative to a first-observation shift.
class SufficientStats {
 public:
  /// Zero-feature stats (intercept-only); establishes the moment-buffer
  /// invariant so Accumulate on a default-constructed instance is safe.
  SufficientStats() : SufficientStats(0) {}

  /// Stats over `num_features` features (the intercept column is implicit).
  explicit SufficientStats(int64_t num_features);

  /// Folds one observation in: `x` points at num_features() doubles, `y` is
  /// the response. The first observation becomes the shift point.
  /// Accumulation order is the caller's contract — replay rows in a fixed
  /// order to get bit-identical moments.
  void Accumulate(const double* x, double y);

  /// Adds `other`'s moments into this (the stats of the union of two
  /// disjoint row sets), translating between shift points exactly. Fails on
  /// a feature-count mismatch.
  Status Merge(const SufficientStats& other);

  /// Stats restricted to the features at `subset` (indices into
  /// 0..num_features()-1, in the order given). The result is exactly what
  /// accumulating only those features would have produced.
  SufficientStats Project(const std::vector<int>& subset) const;

  int64_t num_features() const { return p_; }
  int64_t n() const { return n_; }

  /// \name Derived (shift-independent) descriptive moments.
  /// @{
  /// Mean of feature f over the accumulated rows (0 before any row).
  double MeanX(int64_t f) const;
  /// Mean response.
  double MeanY() const;
  /// Centered cross-moment S_ij = Σ (x_i − x̄_i)(x_j − x̄_j).
  double Sxx(int64_t i, int64_t j) const;
  /// Centered feature/response moment S_iy = Σ (x_i − x̄_i)(y − ȳ).
  double Sxy(int64_t i) const;
  /// Centered response scatter S_yy = Σ (y − ȳ)² (clamped at 0).
  double Syy() const;
  /// @}

  /// \brief One solved OLS system, with fit diagnostics derived from the
  /// moments alone (no pass over rows).
  ///
  /// `r2` and `rmse` are exact (both are functions of the second moments).
  /// `mae_estimate` is the Gaussian-residual approximation
  /// rmse · sqrt(2/π) — the moments cannot determine the exact L1 error;
  /// callers that need it recompute it on their prediction pass.
  struct Solution {
    double intercept = 0.0;
    std::vector<double> coefficients;  ///< One per requested feature.
    double r2 = 0.0;
    double rmse = 0.0;
    double mae_estimate = 0.0;
  };

  /// \brief OLS fit of y on the features at `subset` (empty = intercept
  /// only), from the moments alone.
  ///
  /// Solves the centered p×p normal equations by Cholesky. Fails with
  /// InvalidArgument when the system is underdetermined (n < |subset| + 1)
  /// or ill-conditioned (a Cholesky pivot collapses relative to its
  /// diagonal) — callers should treat failure as "use the row-level QR
  /// path", which either solves the system more stably or correctly reports
  /// rank deficiency.
  Result<Solution> SolveOls(const std::vector<int>& subset) const;

  /// SolveOls over every feature, in order.
  Result<Solution> SolveOls() const;

 private:
  int64_t p_ = 0;
  int64_t n_ = 0;
  /// Shift point: the first accumulated observation (features, response).
  std::vector<double> x_shift_;
  double y_shift_ = 0.0;
  /// Augmented Gram ZᵀZ of the shifted design z = (1, x − x_shift),
  /// row-major (p+1)², kept fully mirrored.
  std::vector<double> gram_;
  /// Zᵀ(y − y_shift), length p+1.
  std::vector<double> xty_;
  /// Σ (y − y_shift)².
  double yty_ = 0.0;
};

}  // namespace charles

#endif  // CHARLES_LINALG_SUFFSTATS_H_
