#ifndef CHARLES_LINALG_SCORE_PARTIALS_H_
#define CHARLES_LINALG_SCORE_PARTIALS_H_

/// \file
/// \brief Exact accuracy partials: the distributable form of Scorer's fold.
///
/// The ChARLES accuracy term blends two per-row reductions over a candidate
/// summary's predictions: the L1 distance Σ|ŷ − y_new| (the explained-change
/// numerator) and the exactness count #{i : |ŷᵢ − y_newᵢ| ≤ τ} for the
/// run's exact tolerance τ. Before this accumulator, both lived inside
/// Scorer::Accuracy as a central n-row scan over a materialized run-wide
/// ŷ vector — the last O(rows) cost in the per-candidate hot loop.
///
/// ScorePartials is that scan in partial form: (Σ|ŷ − y_new|, exact count,
/// n) accumulated per canonical row block and folded in ascending block
/// order — the identical decomposition-invariant recipe ErrorPartials uses
/// for MAE (linalg/error_partials.h). The sum chain replays ErrorPartials'
/// addend order exactly, so any executor that owns whole blocks produces
/// bit-identical sums; the exact count is an integer tally over the same
/// |errors|, which makes it order-free — equal under *every* fold order,
/// not merely the canonical one. Together a shard-merged ScorePartials
/// yields the bit-identical accuracy a central scan of the same fold would
/// have computed (Scorer::AccuracyFromPartials).
///
/// This is the `kScorePartials` currency of the distributed ShardTask
/// protocol (distributed/backend.h) and the per-leaf cache entry that lets
/// BuildSummary score a candidate without materializing ŷ at all.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/error_partials.h"

namespace charles {

namespace kernels {
struct Kernel;
}  // namespace kernels

/// \brief Accumulated accuracy partials: Σ|y − ŷ|, the within-tolerance
/// count, and the row count.
///
/// Accumulation order of the sum is the caller's contract (float addition is
/// not associative); the canonical block fold below is what makes
/// shard-merged partials bit-identical to a central scan. The exact count
/// and n are integers, exact under any order.
struct ScorePartials {
  double abs_error_sum = 0.0;
  int64_t exact_count = 0;
  int64_t n = 0;

  /// Folds one observation in: |y − ŷ| joins the sum, and the exact count
  /// grows when the error is within `tolerance`.
  void Accumulate(double y, double y_hat, double tolerance);

  /// Adds `other`'s partials into this (the partials of the union of two
  /// disjoint row sets). Exact under a fixed merge order.
  void Merge(const ScorePartials& other);

  /// Mean absolute error of the accumulated rows (0 before any row).
  double mae() const {
    return n > 0 ? abs_error_sum / static_cast<double>(n) : 0.0;
  }

  /// Fraction of accumulated rows within tolerance (0 before any row).
  double exact_fraction() const {
    return n > 0 ? static_cast<double>(exact_count) / static_cast<double>(n)
                 : 0.0;
  }

  /// The (Σ|y − ŷ|, n) projection — the ErrorPartials this fold subsumes.
  /// FitLeaf uses it as the SnapModel accuracy baseline so a score round
  /// never needs a separate error round.
  ErrorPartials error() const {
    ErrorPartials partials;
    partials.abs_error_sum = abs_error_sum;
    partials.n = n;
    return partials;
  }

  /// \name Wire format (distributed shard execution).
  /// Native-endian, bit-for-bit doubles — the same same-architecture
  /// pipe/socket discipline as ErrorPartials' wire format.
  /// @{
  void SerializeTo(std::string* out) const;
  static Result<ScorePartials> Deserialize(const unsigned char** cursor,
                                           const unsigned char* end);
  /// Exact representation equality (every byte): the comparator of wire
  /// round-trip and shard-parity tests.
  bool BitIdenticalTo(const ScorePartials& other) const;
  /// @}
};

/// \name Canonical block-structured accuracy accumulation
///
/// The positional-array entry point of the canonical computation: rows are
/// grouped into the run's fixed blocks by *global* row index, each block's
/// |errors| are summed (and tallied against `tolerance`) in row order into a
/// fresh partial, and the partials are folded left-to-right with Merge.
/// `rows` must be ascending; `block_rows` >= 1. `a`/`b` are positional —
/// a[i]/b[i] belong to global row rows[i] — matching how the engine holds
/// leaf-aligned predictions. The sum is bit-identical to
/// AccumulateAbsDiffBlocks over the same inputs.
/// @{

/// Canonical fold of (Σ|a[i] − b[i]|, #within tolerance) — e.g. a = observed
/// y_new, b = predictions. Per-block work dispatches through the
/// process-wide active kernel (linalg/kernels/kernel.h); every kernel
/// produces the same bits.
ScorePartials AccumulateScoreDiffBlocks(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const std::vector<int64_t>& rows,
                                        int64_t block_rows, double tolerance);

/// Kernel-explicit variant (differential testing and benches).
ScorePartials AccumulateScoreDiffBlocks(const kernels::Kernel& kernel,
                                        const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const std::vector<int64_t>& rows,
                                        int64_t block_rows, double tolerance);
/// @}

}  // namespace charles

#endif  // CHARLES_LINALG_SCORE_PARTIALS_H_
