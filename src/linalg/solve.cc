#include "linalg/solve.h"

#include <cmath>

namespace charles {

Result<std::vector<double>> CholeskySolve(const Matrix& a, const std::vector<double>& b) {
  int64_t n = a.rows();
  if (a.cols() != n) return Status::InvalidArgument("CholeskySolve: matrix not square");
  if (static_cast<int64_t>(b.size()) != n) {
    return Status::InvalidArgument("CholeskySolve: rhs size mismatch");
  }
  // Factor A = L L^T in place on a copy.
  Matrix l(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (int64_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 1e-12 * std::max(1.0, a.At(i, i))) {
          return Status::InvalidArgument("CholeskySolve: matrix not positive definite");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = sum / l.At(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = y[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x[static_cast<size_t>(k)];
    x[static_cast<size_t>(i)] = sum / l.At(i, i);
  }
  return x;
}

Result<std::vector<double>> QrLeastSquares(const Matrix& a, const std::vector<double>& b) {
  int64_t m = a.rows();
  int64_t n = a.cols();
  if (static_cast<int64_t>(b.size()) != m) {
    return Status::InvalidArgument("QrLeastSquares: rhs size mismatch");
  }
  if (m < n) return Status::InvalidArgument("QrLeastSquares: underdetermined system");
  // Householder QR, applying reflectors to rhs as we go.
  Matrix r = a;  // working copy, becomes R in the upper triangle
  std::vector<double> rhs = b;
  double scale = r.MaxAbs();
  if (scale == 0.0) return Status::InvalidArgument("QrLeastSquares: zero matrix");
  for (int64_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (int64_t i = k; i < m; ++i) norm += r.At(i, k) * r.At(i, k);
    norm = std::sqrt(norm);
    if (norm <= 1e-12 * scale) {
      return Status::InvalidArgument("QrLeastSquares: rank-deficient design matrix");
    }
    double alpha = r.At(k, k) >= 0 ? -norm : norm;
    std::vector<double> v(static_cast<size_t>(m - k));
    v[0] = r.At(k, k) - alpha;
    for (int64_t i = k + 1; i < m; ++i) v[static_cast<size_t>(i - k)] = r.At(i, k);
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    if (vnorm2 <= 1e-300) {
      return Status::InvalidArgument("QrLeastSquares: degenerate reflector");
    }
    // Apply I - 2 v v^T / (v^T v) to the remaining columns and the rhs.
    for (int64_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (int64_t i = k; i < m; ++i) dot += v[static_cast<size_t>(i - k)] * r.At(i, j);
      double coef = 2.0 * dot / vnorm2;
      for (int64_t i = k; i < m; ++i) r.At(i, j) -= coef * v[static_cast<size_t>(i - k)];
    }
    double dot = 0.0;
    for (int64_t i = k; i < m; ++i) {
      dot += v[static_cast<size_t>(i - k)] * rhs[static_cast<size_t>(i)];
    }
    double coef = 2.0 * dot / vnorm2;
    for (int64_t i = k; i < m; ++i) {
      rhs[static_cast<size_t>(i)] -= coef * v[static_cast<size_t>(i - k)];
    }
  }
  // Back-substitute R x = rhs[0..n).
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = rhs[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) sum -= r.At(i, j) * x[static_cast<size_t>(j)];
    double diag = r.At(i, i);
    if (std::abs(diag) <= 1e-12 * scale) {
      return Status::InvalidArgument("QrLeastSquares: singular R");
    }
    x[static_cast<size_t>(i)] = sum / diag;
  }
  return x;
}

Result<std::vector<double>> RidgeLeastSquares(const Matrix& a, const std::vector<double>& b,
                                              double lambda) {
  if (lambda <= 0.0) {
    return Status::InvalidArgument("RidgeLeastSquares: lambda must be positive");
  }
  Matrix gram = a.Gram();
  for (int64_t i = 0; i < gram.rows(); ++i) gram.At(i, i) += lambda;
  std::vector<double> aty = a.TransposeVec(b);
  Result<std::vector<double>> solution = CholeskySolve(gram, aty);
  if (!solution.ok()) {
    return solution.status().WithContext("RidgeLeastSquares");
  }
  return solution;
}

}  // namespace charles
