#include "linalg/batch_fold.h"

namespace charles {
namespace kernels {

std::vector<SufficientStats> BatchAccumulateRowBlocks(
    const Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y,
    const std::vector<BatchLeafRequest>& requests, int64_t range_begin,
    int64_t range_end, int64_t block_rows, BlockStager* stager,
    BatchFoldCounters* counters) {
  const int64_t p = static_cast<int64_t>(columns.size());
  std::vector<SufficientStats> merged(requests.size(), SufficientStats(p));
  BatchFoldLeafMoments(
      kernel, columns, y, requests, range_begin, range_end, block_rows,
      stager, counters,
      [&](int64_t ordinal, int64_t /*block*/, SufficientStats&& stats) {
        // Ascending-block emission per request ⇒ this is the canonical
        // left-to-right Merge chain.
        CHARLES_CHECK_OK(merged[static_cast<size_t>(ordinal)].Merge(stats));
      });
  return merged;
}

std::vector<SufficientStats> BatchAccumulateRowBlocks(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y,
    const std::vector<BatchLeafRequest>& requests, int64_t range_begin,
    int64_t range_end, int64_t block_rows, BatchFoldCounters* counters) {
  return BatchAccumulateRowBlocks(ActiveKernel(), columns, y, requests,
                                  range_begin, range_end, block_rows,
                                  &BlockStager::ThreadLocal(), counters);
}

bool ShouldBatchFold(BatchFoldMode mode, int64_t num_accumulators) {
  switch (mode) {
    case BatchFoldMode::kOn:
      return num_accumulators > 0;
    case BatchFoldMode::kOff:
      return false;
    case BatchFoldMode::kAuto:
      return num_accumulators >= 2;
  }
  return false;  // unreachable
}

}  // namespace kernels
}  // namespace charles
