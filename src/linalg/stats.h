#ifndef CHARLES_LINALG_STATS_H_
#define CHARLES_LINALG_STATS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace charles {

/// \name Descriptive statistics over double vectors.
/// Empty-input behaviour is documented per function; variance uses the
/// population convention unless noted.
/// @{

/// Arithmetic mean; 0.0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by n); 0.0 for inputs with < 2 elements.
double Variance(const std::vector<double>& xs);

/// sqrt(Variance).
double Stddev(const std::vector<double>& xs);

/// Population covariance; inputs must have equal length.
double Covariance(const std::vector<double>& xs, const std::vector<double>& ys);

/// Pearson correlation coefficient in [-1, 1]; 0.0 when either input is
/// constant (no linear association measurable).
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (Pearson over average ranks; robust to
/// monotone-nonlinear association).
double SpearmanCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// \brief Correlation ratio (eta) of a numeric outcome given categorical
/// groups: sqrt(between-group variance / total variance), in [0, 1].
///
/// This is the association measure the setup assistant uses for categorical
/// attributes, the analogue of |Pearson| for numeric ones. `groups` carries
/// an arbitrary integer label per element.
double CorrelationRatio(const std::vector<int>& groups, const std::vector<double>& ys);

/// \brief Small-sample-corrected correlation ratio.
///
/// Raw eta is biased upward when groups are many and small (a pure-noise
/// 8-category attribute over 600 rows scores ≈ 0.1). This applies the
/// adjusted-R²-style correction eta²_adj = 1 − (1 − eta²)(n − 1)/(n − k)
/// (clamped at 0), which the setup assistant uses so noise categoricals rank
/// below genuinely associated attributes.
double AdjustedCorrelationRatio(const std::vector<int>& groups,
                                const std::vector<double>& ys);

/// Linear-interpolated quantile, q in [0, 1]; fails on empty input.
Result<double> Quantile(std::vector<double> xs, double q);

/// Mean absolute value of element-wise differences; inputs must match in size.
double MeanAbsoluteError(const std::vector<double>& a, const std::vector<double>& b);

/// Root mean squared element-wise difference.
double RootMeanSquaredError(const std::vector<double>& a, const std::vector<double>& b);

/// Sum of |a_i - b_i| (the L1 distance the Accuracy score is built on).
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Average ranks (1-based, ties averaged), as used by Spearman.
std::vector<double> AverageRanks(const std::vector<double>& xs);

/// @}

}  // namespace charles

#endif  // CHARLES_LINALG_STATS_H_
