#include "linalg/error_partials.h"

#include <cmath>
#include <cstring>

#include "common/wire.h"
#include "linalg/suffstats.h"

namespace charles {

void ErrorPartials::Accumulate(double y, double y_hat) {
  abs_error_sum += std::abs(y - y_hat);
  ++n;
}

void ErrorPartials::Merge(const ErrorPartials& other) {
  abs_error_sum += other.abs_error_sum;
  n += other.n;
}

void ErrorPartials::SerializeTo(std::string* out) const {
  wire::AppendScalar(out, abs_error_sum);
  wire::AppendScalar(out, n);
}

Result<ErrorPartials> ErrorPartials::Deserialize(const unsigned char** cursor,
                                                 const unsigned char* end) {
  ErrorPartials partials;
  if (!wire::ReadScalar(cursor, end, &partials.abs_error_sum) ||
      !wire::ReadScalar(cursor, end, &partials.n) || partials.n < 0) {
    return Status::IOError("ErrorPartials::Deserialize: truncated input");
  }
  return partials;
}

bool ErrorPartials::BitIdenticalTo(const ErrorPartials& other) const {
  return n == other.n &&
         std::memcmp(&abs_error_sum, &other.abs_error_sum, sizeof(double)) == 0;
}

namespace {

/// The shared fold: per-block partials (each summed in row order from zero)
/// merged left-to-right — the decomposition-invariant computation every
/// executor of a plan replays.
template <typename ErrorAt>
ErrorPartials FoldBlocks(const std::vector<int64_t>& rows, int64_t block_rows,
                         ErrorAt&& error_at) {
  ErrorPartials total;
  const int64_t* data = rows.data();
  ForEachRowBlock(data, static_cast<int64_t>(rows.size()), block_rows,
                  [&](int64_t /*block*/, const int64_t* block_rows_ptr,
                      int64_t count) {
                    ErrorPartials block_partial;
                    int64_t base = block_rows_ptr - data;
                    for (int64_t i = 0; i < count; ++i) {
                      block_partial.abs_error_sum +=
                          error_at(static_cast<size_t>(base + i));
                      ++block_partial.n;
                    }
                    total.Merge(block_partial);
                  });
  return total;
}

}  // namespace

ErrorPartials AccumulateAbsDiffBlocks(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      const std::vector<int64_t>& rows,
                                      int64_t block_rows) {
  return FoldBlocks(rows, block_rows,
                    [&](size_t i) { return std::abs(a[i] - b[i]); });
}

ErrorPartials AccumulateAbsBlocks(const std::vector<double>& values,
                                  const std::vector<int64_t>& rows,
                                  int64_t block_rows) {
  return FoldBlocks(rows, block_rows,
                    [&](size_t i) { return std::abs(values[i]); });
}

}  // namespace charles
