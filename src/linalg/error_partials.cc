#include "linalg/error_partials.h"

#include <cmath>
#include <cstring>

#include "common/wire.h"
#include "linalg/kernels/kernel.h"
#include "linalg/suffstats.h"

namespace charles {

void ErrorPartials::Accumulate(double y, double y_hat) {
  abs_error_sum += std::abs(y - y_hat);
  ++n;
}

void ErrorPartials::Merge(const ErrorPartials& other) {
  abs_error_sum += other.abs_error_sum;
  n += other.n;
}

void ErrorPartials::SerializeTo(std::string* out) const {
  wire::AppendScalar(out, abs_error_sum);
  wire::AppendScalar(out, n);
}

Result<ErrorPartials> ErrorPartials::Deserialize(const unsigned char** cursor,
                                                 const unsigned char* end) {
  ErrorPartials partials;
  if (!wire::ReadScalar(cursor, end, &partials.abs_error_sum) ||
      !wire::ReadScalar(cursor, end, &partials.n) || partials.n < 0) {
    return Status::IOError("ErrorPartials::Deserialize: truncated input");
  }
  return partials;
}

bool ErrorPartials::BitIdenticalTo(const ErrorPartials& other) const {
  return n == other.n &&
         std::memcmp(&abs_error_sum, &other.abs_error_sum, sizeof(double)) == 0;
}

namespace {

/// The shared fold: per-block partials (each summed in index order from
/// zero by a kernel block primitive) merged left-to-right — the
/// decomposition-invariant computation every executor of a plan replays.
/// `block_sum(base, count)` must return the row-order sum of the block's
/// positional slice [base, base + count).
template <typename BlockSum>
ErrorPartials FoldBlocks(const std::vector<int64_t>& rows, int64_t block_rows,
                         BlockSum&& block_sum) {
  ErrorPartials total;
  const int64_t* data = rows.data();
  ForEachRowBlock(data, static_cast<int64_t>(rows.size()), block_rows,
                  [&](int64_t /*block*/, const int64_t* block_rows_ptr,
                      int64_t count) {
                    ErrorPartials block_partial;
                    int64_t base = block_rows_ptr - data;
                    block_partial.abs_error_sum = block_sum(base, count);
                    block_partial.n = count;
                    total.Merge(block_partial);
                  });
  return total;
}

}  // namespace

ErrorPartials AccumulateAbsDiffBlocks(const kernels::Kernel& kernel,
                                      const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      const std::vector<int64_t>& rows,
                                      int64_t block_rows) {
  return FoldBlocks(rows, block_rows, [&](int64_t base, int64_t count) {
    return kernel.abs_diff_sum(a.data() + base, b.data() + base, count);
  });
}

ErrorPartials AccumulateAbsDiffBlocks(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      const std::vector<int64_t>& rows,
                                      int64_t block_rows) {
  return AccumulateAbsDiffBlocks(kernels::ActiveKernel(), a, b, rows,
                                 block_rows);
}

ErrorPartials AccumulateAbsBlocks(const kernels::Kernel& kernel,
                                  const std::vector<double>& values,
                                  const std::vector<int64_t>& rows,
                                  int64_t block_rows) {
  return FoldBlocks(rows, block_rows, [&](int64_t base, int64_t count) {
    return kernel.abs_sum(values.data() + base, count);
  });
}

ErrorPartials AccumulateAbsBlocks(const std::vector<double>& values,
                                  const std::vector<int64_t>& rows,
                                  int64_t block_rows) {
  return AccumulateAbsBlocks(kernels::ActiveKernel(), values, rows,
                             block_rows);
}

std::vector<ErrorPartials> AccumulateAbsDiffBlocksBatch(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& a,
    const std::vector<const std::vector<double>*>& b,
    const std::vector<int64_t>& rows, int64_t block_rows) {
  const int64_t num_folds = static_cast<int64_t>(a.size());
  std::vector<ErrorPartials> totals(a.size());
  if (num_folds == 0) return totals;
  std::vector<const double*> pa(a.size());
  std::vector<const double*> pb(a.size());
  std::vector<int64_t> counts(a.size());
  std::vector<double> sums(a.size());
  const int64_t* data = rows.data();
  ForEachRowBlock(
      data, static_cast<int64_t>(rows.size()), block_rows,
      [&](int64_t /*block*/, const int64_t* block_rows_ptr, int64_t count) {
        const int64_t base = block_rows_ptr - data;
        for (int64_t e = 0; e < num_folds; ++e) {
          pa[e] = a[e]->data() + base;
          pb[e] = (e < static_cast<int64_t>(b.size()) && b[e] != nullptr)
                      ? b[e]->data() + base
                      : nullptr;
          counts[e] = count;
        }
        kernel.error_fold_batch(pa.data(), pb.data(), counts.data(), num_folds,
                                sums.data());
        for (int64_t e = 0; e < num_folds; ++e) {
          ErrorPartials block_partial;
          block_partial.abs_error_sum = sums[e];
          block_partial.n = count;
          totals[e].Merge(block_partial);
        }
      });
  return totals;
}

std::vector<ErrorPartials> AccumulateAbsDiffBlocksBatch(
    const std::vector<const std::vector<double>*>& a,
    const std::vector<const std::vector<double>*>& b,
    const std::vector<int64_t>& rows, int64_t block_rows) {
  return AccumulateAbsDiffBlocksBatch(kernels::ActiveKernel(), a, b, rows,
                                      block_rows);
}

}  // namespace charles
