#include "linalg/suffstats.h"

#include <cmath>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/wire.h"
#include "linalg/kernels/kernel.h"

namespace charles {

namespace {

/// mean(|e|) = rmse·sqrt(2/π) when residuals are Gaussian; the moments
/// cannot pin the L1 error down exactly, so this is the documented estimate.
constexpr double kMaeOverRmseGaussian = 0.7978845608028654;  // sqrt(2/pi)

/// Relative pivot floor for the centered Cholesky. Normal equations square
/// the design's condition number, so this is deliberately stricter than the
/// generic CholeskySolve tolerance: a pivot this small relative to its
/// centered diagonal means the moments have lost the digits a trustworthy
/// solve needs, and the row-level QR path should decide instead.
constexpr double kPivotTolerance = 1e-9;

}  // namespace

SufficientStats::SufficientStats(int64_t num_features) : p_(num_features) {
  CHARLES_CHECK_GE(num_features, 0);
  size_t d = static_cast<size_t>(p_ + 1);
  x_shift_.assign(static_cast<size_t>(p_), 0.0);
  gram_.assign(d * d, 0.0);
  xty_.assign(d, 0.0);
}

void SufficientStats::Accumulate(const double* x, double y) {
  size_t d = static_cast<size_t>(p_ + 1);
  if (n_ == 0) {
    for (size_t f = 0; f + 1 < d; ++f) x_shift_[f] = x[f];
    y_shift_ = y;
  }
  // Upper triangle of z·zᵀ for the shifted z = (1, x − x_shift), mirrored
  // below so the derived-moment accessors and Project() never branch on
  // triangle order. The first observation contributes only to gram_[0]/n —
  // its shifted coordinates are exactly zero.
  gram_[0] += 1.0;
  double dy = y - y_shift_;
  for (size_t j = 1; j < d; ++j) {
    double v = x[j - 1] - x_shift_[j - 1];
    gram_[j] += v;
    gram_[j * d] += v;
    for (size_t i = 1; i <= j; ++i) {
      double prod = (x[i - 1] - x_shift_[i - 1]) * v;
      gram_[i * d + j] += prod;
      if (i != j) gram_[j * d + i] += prod;
    }
    xty_[j] += v * dy;
  }
  xty_[0] += dy;
  yty_ += dy * dy;
  ++n_;
}

Status SufficientStats::Merge(const SufficientStats& other) {
  if (other.p_ != p_) {
    return Status::InvalidArgument("SufficientStats::Merge: feature count mismatch (" +
                                   std::to_string(p_) + " vs " +
                                   std::to_string(other.p_) + ")");
  }
  if (other.n_ == 0) return Status::OK();
  if (n_ == 0) {
    *this = other;
    return Status::OK();
  }
  // Translate other's moments from its shift (s, t) to ours (s', t'):
  // with u' = u + δ (δ_j = s_j − s'_j) and v' = v + ε,
  //   Σu'_i u'_j = Σu_i u_j + δ_i Σu_j + δ_j Σu_i + n δ_i δ_j
  //   Σu'_j v'   = Σu_j v + ε Σu_j + δ_j Σv + n δ_j ε
  //   Σv'²       = Σv² + 2ε Σv + n ε².
  // The translation is algebraically exact; its rounding is bounded by the
  // shift distance, which for sample-point shifts is the data's own spread.
  size_t d = static_cast<size_t>(p_ + 1);
  double on = static_cast<double>(other.n_);
  double eps = other.y_shift_ - y_shift_;
  std::vector<double> delta(static_cast<size_t>(p_));
  for (size_t f = 0; f < delta.size(); ++f) {
    delta[f] = other.x_shift_[f] - x_shift_[f];
  }
  auto osum_u = [&](size_t j) { return j == 0 ? on : other.gram_[j]; };
  auto dlt = [&](size_t j) { return j == 0 ? 0.0 : delta[j - 1]; };
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      gram_[i * d + j] += other.gram_[i * d + j] + dlt(i) * osum_u(j) +
                          dlt(j) * osum_u(i) + on * dlt(i) * dlt(j);
    }
  }
  double other_sum_v = other.xty_[0];
  for (size_t j = 0; j < d; ++j) {
    xty_[j] += other.xty_[j] + eps * osum_u(j) + dlt(j) * other_sum_v +
               on * dlt(j) * eps;
  }
  yty_ += other.yty_ + 2.0 * eps * other_sum_v + on * eps * eps;
  n_ += other.n_;
  return Status::OK();
}

SufficientStats SufficientStats::Project(const std::vector<int>& subset) const {
  SufficientStats out(static_cast<int64_t>(subset.size()));
  out.n_ = n_;
  out.y_shift_ = y_shift_;
  out.yty_ = yty_;
  size_t d = static_cast<size_t>(p_ + 1);
  size_t od = subset.size() + 1;
  // Augmented index 0 (the intercept column) always survives projection.
  auto from = [&](size_t k) {
    return k == 0 ? size_t{0} : static_cast<size_t>(subset[k - 1]) + 1;
  };
  for (size_t k = 1; k < od; ++k) {
    out.x_shift_[k - 1] = x_shift_[static_cast<size_t>(subset[k - 1])];
  }
  for (size_t i = 0; i < od; ++i) {
    out.xty_[i] = xty_[from(i)];
    for (size_t j = 0; j < od; ++j) {
      out.gram_[i * od + j] = gram_[from(i) * d + from(j)];
    }
  }
  return out;
}

double SufficientStats::MeanX(int64_t f) const {
  if (n_ == 0) return 0.0;
  return x_shift_[static_cast<size_t>(f)] +
         gram_[static_cast<size_t>(f) + 1] / static_cast<double>(n_);
}

double SufficientStats::MeanY() const {
  if (n_ == 0) return 0.0;
  return y_shift_ + xty_[0] / static_cast<double>(n_);
}

double SufficientStats::Sxx(int64_t i, int64_t j) const {
  size_t d = static_cast<size_t>(p_ + 1);
  double n = static_cast<double>(n_);
  double sum_i = gram_[static_cast<size_t>(i) + 1];
  double sum_j = gram_[static_cast<size_t>(j) + 1];
  return gram_[(static_cast<size_t>(i) + 1) * d + static_cast<size_t>(j) + 1] -
         (n_ > 0 ? sum_i * sum_j / n : 0.0);
}

double SufficientStats::Sxy(int64_t i) const {
  double n = static_cast<double>(n_);
  return xty_[static_cast<size_t>(i) + 1] -
         (n_ > 0 ? gram_[static_cast<size_t>(i) + 1] * xty_[0] / n : 0.0);
}

double SufficientStats::Syy() const {
  if (n_ == 0) return 0.0;
  double syy = yty_ - xty_[0] * xty_[0] / static_cast<double>(n_);
  return syy < 0.0 ? 0.0 : syy;
}

Result<SufficientStats::Solution> SufficientStats::SolveOls(
    const std::vector<int>& subset) const {
  for (int f : subset) {
    if (f < 0 || f >= p_) {
      return Status::OutOfRange("SufficientStats::SolveOls: feature index " +
                                std::to_string(f));
    }
  }
  if (n_ == 0) return Status::InvalidArgument("SufficientStats::SolveOls: no rows");

  size_t p = subset.size();
  double n = static_cast<double>(n_);
  double mean_y = MeanY();
  double syy = Syy();

  Solution solution;
  solution.coefficients.assign(p, 0.0);

  // Constant response: mirror LinearRegression's short-circuit — the model
  // is the mean, and no coefficient may pick up noise.
  double total_var = syy / n;
  auto finish = [&](double sse) {
    if (sse < 0.0) sse = 0.0;
    solution.rmse = std::sqrt(sse / n);
    if (total_var <= 1e-300) {
      solution.r2 = solution.rmse <= 1e-9 ? 1.0 : 0.0;
    } else {
      solution.r2 = 1.0 - (sse / n) / total_var;
    }
    solution.mae_estimate = solution.rmse * kMaeOverRmseGaussian;
  };
  if (p == 0 || total_var <= 1e-300) {
    solution.intercept = mean_y;
    finish(syy);
    return solution;
  }
  if (n_ < static_cast<int64_t>(p) + 1) {
    return Status::InvalidArgument(
        "SufficientStats::SolveOls: underdetermined system (n = " +
        std::to_string(n_) + ", p = " + std::to_string(p) + ")");
  }

  // Centered normal equations Sxx β = Sxy. Centering eliminates the
  // intercept column, whose correlation with raw features is what usually
  // wrecks the conditioning of uncentered normal equations; the intercept is
  // recovered from the means afterwards.
  std::vector<double> sxx(p * p);
  std::vector<double> sxy(p);
  for (size_t i = 0; i < p; ++i) {
    sxy[i] = Sxy(subset[i]);
    for (size_t j = 0; j < p; ++j) {
      sxx[i * p + j] = Sxx(subset[i], subset[j]);
    }
  }

  // In-place Cholesky with a relative pivot floor: a pivot that collapses
  // against its own centered diagonal marks a (near-)collinear subset —
  // fail so the caller's QR path arbitrates instead of returning noise.
  std::vector<double>& l = sxx;  // lower triangle overwrites the input
  std::vector<double> diag(p);
  for (size_t i = 0; i < p; ++i) diag[i] = sxx[i * p + i];
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = l[i * p + j];
      for (size_t k = 0; k < j; ++k) sum -= l[i * p + k] * l[j * p + k];
      if (i == j) {
        if (sum <= kPivotTolerance * std::max(1e-300, diag[i])) {
          return Status::InvalidArgument(
              "SufficientStats::SolveOls: ill-conditioned normal equations");
        }
        l[i * p + i] = std::sqrt(sum);
      } else {
        l[i * p + j] = sum / l[j * p + j];
      }
    }
  }
  // Forward then back substitution.
  std::vector<double> beta = sxy;
  for (size_t i = 0; i < p; ++i) {
    for (size_t k = 0; k < i; ++k) beta[i] -= l[i * p + k] * beta[k];
    beta[i] /= l[i * p + i];
  }
  for (size_t ii = p; ii > 0; --ii) {
    size_t i = ii - 1;
    for (size_t k = i + 1; k < p; ++k) beta[i] -= l[k * p + i] * beta[k];
    beta[i] /= l[i * p + i];
  }

  solution.coefficients = beta;
  double intercept = mean_y;
  for (size_t i = 0; i < p; ++i) intercept -= beta[i] * MeanX(subset[i]);
  solution.intercept = intercept;

  // SSE = Syy − βᵀSxy (exact for the least-squares β).
  double explained = 0.0;
  for (size_t i = 0; i < p; ++i) explained += beta[i] * sxy[i];
  finish(syy - explained);
  return solution;
}

Result<SufficientStats::Solution> SufficientStats::SolveOls() const {
  std::vector<int> all(static_cast<size_t>(p_));
  for (int64_t i = 0; i < p_; ++i) all[static_cast<size_t>(i)] = static_cast<int>(i);
  return SolveOls(all);
}

using wire::AppendRaw;
using wire::ReadRaw;

void SufficientStats::SerializeTo(std::string* out) const {
  AppendRaw(out, &p_, sizeof(p_));
  AppendRaw(out, &n_, sizeof(n_));
  AppendRaw(out, &y_shift_, sizeof(y_shift_));
  AppendRaw(out, &yty_, sizeof(yty_));
  AppendRaw(out, x_shift_.data(), x_shift_.size() * sizeof(double));
  AppendRaw(out, gram_.data(), gram_.size() * sizeof(double));
  AppendRaw(out, xty_.data(), xty_.size() * sizeof(double));
}

Result<SufficientStats> SufficientStats::Deserialize(const unsigned char** cursor,
                                                     const unsigned char* end) {
  int64_t p = 0;
  const unsigned char* at = *cursor;
  if (!ReadRaw(&at, end, &p, sizeof(p)) || p < 0 || p > (1 << 20)) {
    return Status::IOError("SufficientStats::Deserialize: bad feature count");
  }
  // Bound the allocation by the bytes actually present: a corrupt stream
  // must fail with a Status, never with a gram-buffer bad_alloc.
  size_t d = static_cast<size_t>(p) + 1;
  size_t needed = sizeof(int64_t) + 2 * sizeof(double) +
                  (static_cast<size_t>(p) + d * d + d) * sizeof(double);
  if (static_cast<size_t>(end - at) < needed) {
    return Status::IOError("SufficientStats::Deserialize: truncated input");
  }
  SufficientStats stats(p);
  bool ok = ReadRaw(&at, end, &stats.n_, sizeof(stats.n_)) &&
            ReadRaw(&at, end, &stats.y_shift_, sizeof(stats.y_shift_)) &&
            ReadRaw(&at, end, &stats.yty_, sizeof(stats.yty_)) &&
            ReadRaw(&at, end, stats.x_shift_.data(),
                    stats.x_shift_.size() * sizeof(double)) &&
            ReadRaw(&at, end, stats.gram_.data(),
                    stats.gram_.size() * sizeof(double)) &&
            ReadRaw(&at, end, stats.xty_.data(),
                    stats.xty_.size() * sizeof(double));
  if (!ok || stats.n_ < 0) {
    return Status::IOError("SufficientStats::Deserialize: truncated input");
  }
  *cursor = at;
  return stats;
}

bool SufficientStats::BitIdenticalTo(const SufficientStats& other) const {
  auto bytes_equal = [](const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
  };
  return p_ == other.p_ && n_ == other.n_ &&
         std::memcmp(&y_shift_, &other.y_shift_, sizeof(y_shift_)) == 0 &&
         std::memcmp(&yty_, &other.yty_, sizeof(yty_)) == 0 &&
         bytes_equal(x_shift_, other.x_shift_) && bytes_equal(gram_, other.gram_) &&
         bytes_equal(xty_, other.xty_);
}

// The per-block arithmetic lives behind the kernel seam
// (linalg/kernels/kernel.h): the scalar kernel is the original per-row
// gather/accumulate loop extracted verbatim, and every other kernel must
// reproduce its bits exactly, so dispatching by active kernel is invisible
// to results. The entry points here own only the block structure — grouping
// rows into canonical blocks and folding the per-block partials in order.

SufficientStats AccumulateRows(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count) {
  return kernel.suffstats_block(columns, y, rows, /*base=*/0, count);
}

SufficientStats AccumulateRows(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const int64_t* rows, int64_t count) {
  return AccumulateRows(kernels::ActiveKernel(), columns, y, rows, count);
}

SufficientStats AccumulateRowBlocks(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const std::vector<int64_t>& rows,
    int64_t block_rows) {
  CHARLES_CHECK_GE(block_rows, 1);
  SufficientStats merged(static_cast<int64_t>(columns.size()));
  ForEachRowBlock(rows.data(), static_cast<int64_t>(rows.size()), block_rows,
                  [&](int64_t /*block*/, const int64_t* block_rows_ptr,
                      int64_t count) {
                    CHARLES_CHECK_OK(merged.Merge(kernel.suffstats_block(
                        columns, y, block_rows_ptr, /*base=*/0, count)));
                  });
  return merged;
}

SufficientStats AccumulateRowBlocks(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, const std::vector<int64_t>& rows,
    int64_t block_rows) {
  return AccumulateRowBlocks(kernels::ActiveKernel(), columns, y, rows,
                             block_rows);
}

SufficientStats AccumulateRangeBlocks(
    const kernels::Kernel& kernel,
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, int64_t num_rows, int64_t block_rows) {
  CHARLES_CHECK_GE(block_rows, 1);
  SufficientStats merged(static_cast<int64_t>(columns.size()));
  for (int64_t begin = 0; begin < num_rows; begin += block_rows) {
    int64_t end = begin + block_rows < num_rows ? begin + block_rows : num_rows;
    CHARLES_CHECK_OK(merged.Merge(kernel.suffstats_block(
        columns, y, /*rows=*/nullptr, begin, end - begin)));
  }
  return merged;
}

SufficientStats AccumulateRangeBlocks(
    const std::vector<const std::vector<double>*>& columns,
    const std::vector<double>& y, int64_t num_rows, int64_t block_rows) {
  return AccumulateRangeBlocks(kernels::ActiveKernel(), columns, y, num_rows,
                               block_rows);
}

}  // namespace charles
