#ifndef CHARLES_PARALLEL_THREAD_POOL_H_
#define CHARLES_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace charles {

/// \brief A fixed-size worker pool executing submitted tasks FIFO.
///
/// Tasks are arbitrary callables; Submit returns a std::future carrying the
/// task's result or exception. The pool is reusable across waves of work and
/// joins all workers on destruction (pending tasks are drained first).
///
/// Blocking helpers (ParallelFor/ParallelMap) call TryRunOneTask while they
/// wait so a caller that is itself a pool task keeps the queue draining
/// instead of deadlocking the fixed-size pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// `fn` surface from future.get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Pops and runs one queued task on the calling thread. Returns false if
  /// the queue was empty.
  bool TryRunOneTask();

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace charles

#endif  // CHARLES_PARALLEL_THREAD_POOL_H_
