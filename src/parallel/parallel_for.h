#ifndef CHARLES_PARALLEL_PARALLEL_FOR_H_
#define CHARLES_PARALLEL_PARALLEL_FOR_H_

/// \file
/// \brief Data-parallel helpers over a ThreadPool with deterministic,
/// index-ordered results.
///
/// All helpers fall back to a plain sequential loop when `pool` is null or
/// has a single worker, so `num_threads = 1` exercises exactly the serial
/// code path. Work is split into contiguous index chunks; results land in a
/// pre-sized vector slot per index, so the output order never depends on
/// scheduling. The calling thread helps drain the queue while it waits
/// (ThreadPool::TryRunOneTask), which keeps nested invocations from
/// deadlocking a fixed-size pool.

#include <chrono>
#include <cstdint>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace charles {

namespace parallel_internal {

/// Contiguous [begin, end) chunks covering [0, n); at most `max_chunks`.
inline std::vector<std::pair<int64_t, int64_t>> MakeChunks(int64_t n,
                                                           int64_t max_chunks) {
  std::vector<std::pair<int64_t, int64_t>> chunks;
  if (n <= 0 || max_chunks <= 0) return chunks;
  int64_t num_chunks = std::min(n, max_chunks);
  int64_t base = n / num_chunks;
  int64_t extra = n % num_chunks;
  int64_t begin = 0;
  for (int64_t c = 0; c < num_chunks; ++c) {
    int64_t size = base + (c < extra ? 1 : 0);
    chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  return chunks;
}

/// Waits for every future, helping the pool drain while blocked, and
/// rethrows the first task exception (after all tasks finished).
inline void WaitAll(ThreadPool* pool, std::vector<std::future<void>>* futures) {
  std::exception_ptr first_error;
  for (std::future<void>& future : *futures) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool->TryRunOneTask()) {
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace parallel_internal

/// Runs fn(i) for every i in [0, n). Serial when the pool cannot help.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int64_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto chunks =
      parallel_internal::MakeChunks(n, static_cast<int64_t>(pool->size()) * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (const auto& [begin, end] : chunks) {
    futures.push_back(pool->Submit([&fn, begin = begin, end = end]() {
      for (int64_t i = begin; i < end; ++i) fn(i);
    }));
  }
  parallel_internal::WaitAll(pool, &futures);
}

/// Computes results[i] = fn(i) for i in [0, n), in index order regardless of
/// scheduling. R must be default-constructible and movable.
template <typename R, typename Fn>
std::vector<R> ParallelMap(ThreadPool* pool, int64_t n, Fn&& fn) {
  std::vector<R> results(static_cast<size_t>(std::max<int64_t>(n, 0)));
  ParallelFor(pool, n, [&results, &fn](int64_t i) {
    results[static_cast<size_t>(i)] = fn(i);
  });
  return results;
}

/// \brief ParallelMap with one worker-local state object per chunk.
///
/// `make_state()` builds a fresh State per contiguous chunk (one chunk per
/// pool worker); `fn(state, i)` produces results[i]. After the barrier the
/// per-chunk states are returned in chunk order so the caller can merge them
/// deterministically (e.g. thread-local caches folded into run diagnostics).
template <typename R, typename State, typename MakeState, typename Fn>
std::vector<R> ParallelMapWithState(ThreadPool* pool, int64_t n,
                                    MakeState&& make_state, Fn&& fn,
                                    std::vector<State>* states_out) {
  std::vector<R> results(static_cast<size_t>(std::max<int64_t>(n, 0)));
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    State state = make_state();
    for (int64_t i = 0; i < n; ++i) {
      results[static_cast<size_t>(i)] = fn(state, i);
    }
    if (states_out != nullptr) states_out->push_back(std::move(state));
    return results;
  }
  auto chunks =
      parallel_internal::MakeChunks(n, static_cast<int64_t>(pool->size()));
  std::vector<State> states;
  states.reserve(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) states.push_back(make_state());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    State* state = &states[c];
    auto [begin, end] = chunks[c];
    futures.push_back(pool->Submit([&results, &fn, state, begin = begin, end = end]() {
      for (int64_t i = begin; i < end; ++i) {
        results[static_cast<size_t>(i)] = fn(*state, i);
      }
    }));
  }
  parallel_internal::WaitAll(pool, &futures);
  if (states_out != nullptr) {
    for (State& state : states) states_out->push_back(std::move(state));
  }
  return results;
}

}  // namespace charles

#endif  // CHARLES_PARALLEL_PARALLEL_FOR_H_
