#ifndef CHARLES_PARALLEL_PARALLEL_H_
#define CHARLES_PARALLEL_PARALLEL_H_

/// \file
/// \brief The ChARLES parallel execution subsystem.
///
/// Three building blocks, designed so that parallel output is bit-identical
/// to serial output:
///
///  - ThreadPool — a fixed-size worker pool with task futures and exception
///    propagation (thread_pool.h).
///  - ParallelFor / ParallelMap / ParallelMapWithState — data-parallel loops
///    with contiguous index chunking, index-ordered results, and optional
///    worker-local state returned at the barrier for deterministic merging
///    (parallel_for.h).
///  - ShardedCache — a lock-sharded concurrent map for cross-worker reuse of
///    deterministic computations (sharded_cache.h).
///
/// Determinism contract: helpers only decide *where* work runs, never *what*
/// is computed or in which order results are reduced. Any nondeterminism
/// would have to come from the mapped function itself; the engine's mapped
/// functions are pure given (options, inputs), so `num_threads = 1` and
/// `num_threads = N` produce identical ranked output.
///
/// Scheduling contract: only threads outside the pool should Submit waves of
/// work; the helpers' wait loops additionally run queued tasks on the caller
/// (work helping) so an accidental nested invocation degrades to extra
/// serial work instead of deadlock.

#include "parallel/parallel_for.h"   // IWYU pragma: export
#include "parallel/sharded_cache.h"  // IWYU pragma: export
#include "parallel/thread_pool.h"    // IWYU pragma: export

#endif  // CHARLES_PARALLEL_PARALLEL_H_
