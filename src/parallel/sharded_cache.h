#ifndef CHARLES_PARALLEL_SHARDED_CACHE_H_
#define CHARLES_PARALLEL_SHARDED_CACHE_H_

/// \file
/// \brief A lock-sharded concurrent cache for cross-worker result reuse.
///
/// Keys are hashed to one of N shards, each an unordered_map behind its own
/// mutex, so concurrent lookups and inserts on different shards never
/// contend.
///
/// Every shard keeps a recency list, so the cache can be **bounded** — at
/// construction (`max_entries > 0`, enforced on every Insert) or after the
/// fact (TrimToSize) — evicting least-recently-used entries first. Eviction
/// changes the pointer-stability rules:
///
///  - Unbounded caches never erase on lookup or insert, and
///    std::unordered_map guarantees reference stability under rehash, so the
///    pointers returned by Find and Insert stay valid until Clear() or
///    TrimToSize() — callers may hold them across further inserts from any
///    thread.
///  - Bounded caches may evict any entry on any Insert, so pointers returned
///    by Find/Insert/GetOrCompute are only safe to dereference before the
///    next insert from any thread. Callers of a cache that may be bounded or
///    trimmed should use the copy-out Lookup() instead, which copies the
///    value under the shard lock.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace charles {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  /// `max_entries` caps the total entry count across shards (0 = unbounded).
  /// The budget is split evenly, rounding *down* so the configured total is
  /// a true upper bound — except in the degenerate case of more shards than
  /// entries, where every shard still holds at least one entry (a zero-cap
  /// shard could never cache anything) and the cache can reach one entry
  /// per shard.
  explicit ShardedCache(int num_shards = 16, size_t max_entries = 0)
      : shards_(static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {
    for (auto& shard : shards_) shard = std::make_unique<Shard>();
    if (max_entries > 0) {
      per_shard_cap_ = max_entries / shards_.size();
      if (per_shard_cap_ == 0) per_shard_cap_ = 1;
    }
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Returns a stable pointer to the cached value, or nullptr on miss. See
  /// the file comment for pointer-validity rules on bounded caches.
  const Value* Find(const Key& key) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    Touch(shard, it->second);
    return &it->second.value;
  }

  /// Copy-out lookup: copies the value under the shard lock, so the result
  /// stays valid regardless of concurrent inserts or evictions. This is the
  /// lookup bounded caches require.
  bool Lookup(const Key& key, Value* out) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return false;
    }
    ++shard.hits;
    Touch(shard, it->second);
    *out = it->second.value;
    return true;
  }

  /// Inserts (key, value) unless the key is already present — the first
  /// writer wins, so concurrent duplicate computes converge on one stored
  /// value. Bounded caches evict their shard's least-recently-used entry
  /// when over budget. Returns a stable pointer to the stored value (see the
  /// file comment for validity rules on bounded caches).
  const Value* Insert(Key key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      Entry entry;
      entry.value = std::move(value);
      it = shard.map.emplace(std::move(key), std::move(entry)).first;
      shard.lru.push_front(&it->first);
      it->second.pos = shard.lru.begin();
      if (per_shard_cap_ > 0) EvictDownTo(shard, per_shard_cap_);
    }
    return &it->second.value;
  }

  /// Find-or-compute: `compute()` runs outside the shard lock (it may be
  /// expensive), so two threads racing on the same fresh key may both
  /// compute; Insert then keeps exactly one result.
  template <typename Compute>
  const Value* GetOrCompute(const Key& key, Compute&& compute) {
    if (const Value* found = Find(key)) return found;
    return Insert(key, compute());
  }

  /// Evicts least-recently-used entries until at most `max_entries` remain
  /// (split evenly across shards, rounding down as in the constructor).
  /// Works on caches constructed unbounded — recency is always tracked.
  void TrimToSize(size_t max_entries) {
    size_t cap = max_entries / shards_.size();
    if (cap == 0) cap = 1;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      EvictDownTo(*shard, cap);
    }
  }

  /// Drops every entry (lookup counters are kept). Invalidates all pointers
  /// previously returned by Find/Insert/GetOrCompute — callers must ensure no
  /// thread is concurrently reading cached values through such pointers.
  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
      shard->lru.clear();
    }
  }

  /// Total entries across shards (takes every shard lock; intended for
  /// post-barrier diagnostics, not hot paths).
  size_t Size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Total entry budget as enforced (per-shard cap × shards; 0 = unbounded).
  size_t max_entries() const { return per_shard_cap_ * shards_.size(); }

  /// Lookup counters, kept per shard under the shard lock (no cross-shard
  /// contention on the hot path) and summed here for diagnostics.
  int64_t hits() const { return SumCounter(&Shard::hits); }
  int64_t misses() const { return SumCounter(&Shard::misses); }
  /// Entries dropped by the LRU bound (always 0 for unbounded caches).
  int64_t evictions() const { return SumCounter(&Shard::evictions); }

 private:
  struct Entry {
    Value value;
    /// Position in the shard's recency list.
    typename std::list<const Key*>::iterator pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, Hash> map;
    /// Most-recently-used first. Entries point at the map's own keys —
    /// stable for the node-based unordered_map — so recency tracking never
    /// copies a key (LeafKey carries a whole row-index vector).
    mutable std::list<const Key*> lru;
    mutable int64_t hits = 0;
    mutable int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// Moves the entry to the front of its shard's recency list.
  void Touch(Shard& shard, const Entry& entry) const {
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.pos);
  }

  /// Caller holds the shard lock.
  void EvictDownTo(Shard& shard, size_t cap) {
    while (shard.map.size() > cap && !shard.lru.empty()) {
      shard.map.erase(*shard.lru.back());
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  int64_t SumCounter(int64_t Shard::* counter) const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += (*shard).*counter;
    }
    return total;
  }

  Shard& ShardFor(const Key& key) const {
    // Mix in 64 bits so shard choice is not correlated with the map's bucket
    // choice (and the >> 32 below stays defined on 32-bit size_t).
    uint64_t h = Hash{}(key);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ull;
    return *shards_[(h >> 32) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_cap_ = 0;  ///< Per-shard entry cap; 0 = unbounded.
};

}  // namespace charles

#endif  // CHARLES_PARALLEL_SHARDED_CACHE_H_
