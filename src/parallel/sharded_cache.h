#ifndef CHARLES_PARALLEL_SHARDED_CACHE_H_
#define CHARLES_PARALLEL_SHARDED_CACHE_H_

/// \file
/// \brief A lock-sharded concurrent cache for cross-worker result reuse.
///
/// Keys are hashed to one of N shards, each an unordered_map behind its own
/// mutex, so concurrent lookups and inserts on different shards never
/// contend. Values are never erased by lookups or inserts, and
/// std::unordered_map guarantees reference stability under rehash, so the
/// pointers returned by Find and Insert stay valid until Clear() — callers
/// may hold them across further inserts from any thread.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace charles {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  explicit ShardedCache(int num_shards = 16)
      : shards_(static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {
    for (auto& shard : shards_) shard = std::make_unique<Shard>();
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Returns a stable pointer to the cached value, or nullptr on miss.
  const Value* Find(const Key& key) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    return &it->second;
  }

  /// Inserts (key, value) unless the key is already present — the first
  /// writer wins, so concurrent duplicate computes converge on one stored
  /// value. Returns a stable pointer to the stored value.
  const Value* Insert(Key key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(std::move(key), std::move(value));
    (void)inserted;
    return &it->second;
  }

  /// Find-or-compute: `compute()` runs outside the shard lock (it may be
  /// expensive), so two threads racing on the same fresh key may both
  /// compute; Insert then keeps exactly one result.
  template <typename Compute>
  const Value* GetOrCompute(const Key& key, Compute&& compute) {
    if (const Value* found = Find(key)) return found;
    return Insert(key, compute());
  }

  /// Drops every entry (lookup counters are kept). Invalidates all pointers
  /// previously returned by Find/Insert/GetOrCompute — callers must ensure no
  /// thread is concurrently reading cached values through such pointers.
  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
    }
  }

  /// Total entries across shards (takes every shard lock; intended for
  /// post-barrier diagnostics, not hot paths).
  size_t Size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Lookup counters, kept per shard under the shard lock (no cross-shard
  /// contention on the hot path) and summed here for diagnostics.
  int64_t hits() const { return SumCounter(&Shard::hits); }
  int64_t misses() const { return SumCounter(&Shard::misses); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
    int64_t hits = 0;
    int64_t misses = 0;
  };

  int64_t SumCounter(int64_t Shard::* counter) const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += (*shard).*counter;
    }
    return total;
  }

  Shard& ShardFor(const Key& key) const {
    // Mix in 64 bits so shard choice is not correlated with the map's bucket
    // choice (and the >> 32 below stays defined on 32-bit size_t).
    uint64_t h = Hash{}(key);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ull;
    return *shards_[(h >> 32) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace charles

#endif  // CHARLES_PARALLEL_SHARDED_CACHE_H_
