#include "parallel/thread_pool.h"

#include <algorithm>

namespace charles {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

int ThreadPool::HardwareConcurrency() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace charles
