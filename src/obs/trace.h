#ifndef CHARLES_OBS_TRACE_H_
#define CHARLES_OBS_TRACE_H_

/// \file
/// \brief Lightweight in-process span tracing with cross-process stitching.
///
/// A run that opts in (`CharlesOptions::trace`) gets one TraceRecorder for
/// its whole lifetime. Code wraps regions in RAII Span objects; each span
/// records a monotonic start/duration, a parent link, and optional
/// key/value annotations. The recorder is just a mutex-guarded vector of
/// finished and in-flight SpanRecords — cheap enough to carry through the
/// engine, rich enough to export as Chrome `trace_event` JSON that opens
/// directly in `about:tracing` / Perfetto (ToChromeTraceJson).
///
/// Parent links come from a thread-local span stack: constructing a Span
/// pushes it as the current span of *this thread*, so nested spans on one
/// thread parent naturally. Work that hops threads (the coordinator's
/// ParallelMap fan-out, the remote execute wire) captures
/// CurrentTraceContext() on the submitting thread and opens child spans
/// with an explicit parent id on the other side. Worker processes record
/// spans against their own clock; ImportSpans() rebases them into the
/// coordinator's timeline under the dispatch span that carried them.
///
/// Tracing off is the default and costs nothing: a Span constructed with a
/// null recorder is inert — no allocation, no lock, no clock read. Spans
/// observe; they never reorder work, so the determinism contract (canonical
/// block folds, serial-order merges) is untouched.
///
/// A second, independent piece of run-scoped context rides the same
/// thread-local mechanism: the run id (fingerprint-derived, see
/// RunState::run_id). RunIdScope installs it on a thread; CurrentRunId()
/// reads it. It is set whether or not tracing is on, so worker log lines
/// can always be correlated with the coordinator run that issued them.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <mutex>

namespace charles {
namespace obs {

/// One recorded span. `start_ns`/`dur_ns` are steady-clock nanoseconds in
/// the recording process (worker blobs ship them relative to the worker's
/// task start; ImportSpans rebases). `dur_ns` is -1 while the span is open.
struct SpanRecord {
  uint64_t id = 0;      ///< 1-based, unique within one recorder
  uint64_t parent = 0;  ///< parent span id; 0 = root
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = -1;
  uint64_t tid = 0;  ///< small per-thread ordinal (display lane)
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Thread-safe sink for one run's spans.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(uint64_t trace_id) : trace_id_(trace_id) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The run-scoped trace id shared by every process contributing spans.
  /// Set once the run fingerprint is known (RunPipeline phase 1).
  uint64_t trace_id() const;
  void set_trace_id(uint64_t trace_id);

  /// Opens a span and returns its id. Prefer the Span RAII wrapper; this
  /// is the primitive it (and ImportSpans) is built on.
  uint64_t BeginSpan(const char* name, uint64_t parent);
  /// Closes an open span (sets its duration).
  void EndSpan(uint64_t id);
  /// Attaches a key/value annotation to a span (open or closed).
  void Annotate(uint64_t id, const char* key, std::string value);

  /// Splices spans recorded in another process into this trace. `spans`
  /// carry start_ns relative to their own root; ids are remapped onto this
  /// recorder's sequence, roots are re-parented under `parent_for_roots`,
  /// starts are rebased to `anchor_ns` (this process's steady clock), and
  /// every span is assigned display lane `tid`.
  void ImportSpans(const std::vector<SpanRecord>& spans,
                   uint64_t parent_for_roots, int64_t anchor_ns, uint64_t tid);

  /// Copies out everything recorded so far.
  std::vector<SpanRecord> Snapshot() const;

  /// Exports the trace as Chrome `trace_event` JSON (complete "X" events,
  /// microsecond timestamps rebased to the earliest span). Open spans are
  /// exported with their duration so far.
  std::string ToChromeTraceJson() const;

  /// Steady-clock nanoseconds — the clock every span uses.
  static int64_t NowNs();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  uint64_t trace_id_ = 0;
};

/// What the current thread is doing, for code about to hand work to
/// another thread or process: the active recorder and span (null/0 when
/// tracing is off or no span is open here) plus the run id.
struct ThreadTraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t span_id = 0;
  uint64_t run_id = 0;
};

/// Reads this thread's current trace context.
ThreadTraceContext CurrentTraceContext();

/// RAII span. With a null recorder every member is a no-op — this is the
/// zero-cost-when-disabled guarantee, so call sites never branch on
/// whether tracing is enabled.
class Span {
 public:
  /// Inert span.
  Span() = default;
  /// Opens a span whose parent is the current span of this thread.
  Span(TraceRecorder* recorder, const char* name);
  /// Opens a span with an explicit parent (cross-thread/cross-process
  /// hand-offs where the thread-local stack is not the real parent).
  Span(TraceRecorder* recorder, const char* name, uint64_t parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when the span is actually recording. Guard any annotation whose
  /// value is costly to build.
  bool active() const { return recorder_ != nullptr; }
  uint64_t id() const { return id_; }
  /// Attaches a key/value annotation (no-op when inert).
  void Annotate(const char* key, std::string value);

 private:
  TraceRecorder* recorder_ = nullptr;
  uint64_t id_ = 0;
};

/// Installs `run_id` as this thread's current run id for the scope's
/// lifetime (restores the previous value on destruction).
class RunIdScope {
 public:
  explicit RunIdScope(uint64_t run_id);
  ~RunIdScope();

  RunIdScope(const RunIdScope&) = delete;
  RunIdScope& operator=(const RunIdScope&) = delete;

 private:
  uint64_t saved_ = 0;
};

/// This thread's current run id (0 when outside any run scope).
uint64_t CurrentRunId();

/// Formats a run id / trace id the way logs and SummaryList surface it:
/// 16 lowercase hex digits, zero padded.
std::string FormatRunId(uint64_t run_id);

}  // namespace obs
}  // namespace charles

#endif  // CHARLES_OBS_TRACE_H_
