#include "obs/diagnostics.h"

#include "common/json.h"
#include "core/engine.h"

namespace charles {
namespace obs {

RunDiagnostics RunDiagnostics::FromSummary(const SummaryList& summary) {
  RunDiagnostics d;
  d.run_id = summary.run_id;
  d.summaries = static_cast<int64_t>(summary.summaries.size());

  d.condition_subsets = summary.condition_subsets;
  d.transform_subsets = summary.transform_subsets;
  d.labelings = summary.labelings;
  d.partitions = summary.partitions;
  d.candidates_evaluated = summary.candidates_evaluated;
  d.candidates_deduped = summary.candidates_deduped;

  d.threads_used = summary.threads_used;
  d.kernel_used = summary.kernel_used;
  d.batched_blocks_staged = summary.batched_blocks_staged;
  d.batched_fold_accumulators = summary.batched_fold_accumulators;
  d.batch_leaves_per_block_max = summary.batch_leaves_per_block_max;

  d.leaf_fits_computed = summary.leaf_fits_computed;
  d.leaf_fits_reused = summary.leaf_fits_reused;
  d.leaf_fit_evictions = summary.leaf_fit_evictions;

  d.shards_used = summary.shards_used;
  d.shard_rows_scanned = summary.shard_rows_scanned;
  d.shard_blocks_merged = summary.shard_blocks_merged;
  d.shard_tasks_executed = summary.shard_tasks_executed;
  d.shard_moment_leaves_swept = summary.shard_moment_leaves_swept;
  d.shard_moment_leaves_elided = summary.shard_moment_leaves_elided;
  d.shard_error_probes = summary.shard_error_probes;
  d.shard_score_probes = summary.shard_score_probes;

  d.score_partials_candidates = summary.score_partials_candidates;
  d.score_yhat_materializations = summary.score_yhat_materializations;
  d.score_leaf_folds = summary.score_leaf_folds;

  d.remote_tasks_dispatched = summary.remote_tasks_dispatched;
  d.remote_task_retries = summary.remote_task_retries;
  d.remote_input_installs = summary.remote_input_installs;
  d.remote_workers = summary.remote_workers;

  d.elapsed_seconds = summary.elapsed_seconds;
  d.clustering_seconds = summary.clustering_seconds;
  d.induction_seconds = summary.induction_seconds;
  d.fitting_seconds = summary.fitting_seconds;
  d.shard_seconds = summary.shard_seconds;
  d.shard_signal_seconds = summary.shard_signal_seconds;
  d.shard_moments_seconds = summary.shard_moments_seconds;
  d.shard_error_seconds = summary.shard_error_seconds;
  d.shard_score_seconds = summary.shard_score_seconds;
  return d;
}

std::string RunDiagnostics::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kSchemaVersion);
  w.Key("run_id").String(run_id);
  w.Key("summaries").Int(summaries);

  w.Key("search").BeginObject();
  w.Key("condition_subsets").Int(condition_subsets);
  w.Key("transform_subsets").Int(transform_subsets);
  w.Key("labelings").Int(labelings);
  w.Key("partitions").Int(partitions);
  w.Key("candidates_evaluated").Int(candidates_evaluated);
  w.Key("candidates_deduped").Int(candidates_deduped);
  w.EndObject();

  w.Key("execution").BeginObject();
  w.Key("threads_used").Int(threads_used);
  w.Key("kernel_used").String(kernel_used);
  w.Key("batched_blocks_staged").Int(batched_blocks_staged);
  w.Key("batched_fold_accumulators").Int(batched_fold_accumulators);
  w.Key("batch_leaves_per_block_max").Int(batch_leaves_per_block_max);
  w.EndObject();

  w.Key("cache").BeginObject();
  w.Key("leaf_fits_computed").Int(leaf_fits_computed);
  w.Key("leaf_fits_reused").Int(leaf_fits_reused);
  w.Key("leaf_fit_evictions").Int(leaf_fit_evictions);
  w.EndObject();

  w.Key("shards").BeginObject();
  w.Key("shards_used").Int(shards_used);
  w.Key("rows_scanned").Int(shard_rows_scanned);
  w.Key("blocks_merged").Int(shard_blocks_merged);
  w.Key("tasks_executed").Int(shard_tasks_executed);
  w.Key("moment_leaves_swept").Int(shard_moment_leaves_swept);
  w.Key("moment_leaves_elided").Int(shard_moment_leaves_elided);
  w.Key("error_probes").Int(shard_error_probes);
  w.Key("score_probes").Int(shard_score_probes);
  w.EndObject();

  w.Key("scoring").BeginObject();
  w.Key("partials_candidates").Int(score_partials_candidates);
  w.Key("yhat_materializations").Int(score_yhat_materializations);
  w.Key("leaf_folds").Int(score_leaf_folds);
  w.EndObject();

  w.Key("remote").BeginObject();
  w.Key("tasks_dispatched").Int(remote_tasks_dispatched);
  w.Key("task_retries").Int(remote_task_retries);
  w.Key("input_installs").Int(remote_input_installs);
  w.Key("workers").BeginArray();
  for (const RemoteWorkerCounters& worker : remote_workers) {
    w.BeginObject();
    w.Key("endpoint").String(worker.endpoint);
    w.Key("healthy").Bool(worker.healthy);
    w.Key("version_rejected").Bool(worker.version_rejected);
    w.Key("wire_version").Int(worker.wire_version);
    w.Key("tasks_dispatched").Int(worker.tasks_dispatched);
    w.Key("tasks_failed").Int(worker.tasks_failed);
    w.Key("input_installs").Int(worker.input_installs);
    w.Key("last_error").String(worker.last_error);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("timings_seconds").BeginObject();
  w.Key("elapsed").Double(elapsed_seconds);
  w.Key("clustering").Double(clustering_seconds);
  w.Key("induction").Double(induction_seconds);
  w.Key("fitting").Double(fitting_seconds);
  w.Key("shard").Double(shard_seconds);
  w.Key("shard_signal").Double(shard_signal_seconds);
  w.Key("shard_moments").Double(shard_moments_seconds);
  w.Key("shard_error").Double(shard_error_seconds);
  w.Key("shard_score").Double(shard_score_seconds);
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace charles

namespace charles {

std::string SummaryList::ToJson() const {
  return obs::RunDiagnostics::FromSummary(*this).ToJson();
}

}  // namespace charles
