#ifndef CHARLES_OBS_DIAGNOSTICS_H_
#define CHARLES_OBS_DIAGNOSTICS_H_

/// \file
/// \brief Stable JSON diagnostics for one engine run.
///
/// RunDiagnostics is the versioned, machine-readable view of a
/// SummaryList's diagnostic fields — the contract clients, benches, and
/// dashboards parse instead of scraping C++ structs. The schema is
/// deliberately a *copy* of the fields rather than a view: SummaryList can
/// be refactored freely while the JSON stays put. Versioning policy
/// (docs/observability.md): adding keys is backward compatible and does
/// not bump `schema_version`; removing or renaming one does.

#include <cstdint>
#include <string>
#include <vector>

#include "distributed/remote_counters.h"

namespace charles {

struct SummaryList;

namespace obs {

/// Machine-readable diagnostics of one run. Construct with FromSummary;
/// serialize with ToJson (SummaryList::ToJson delegates here).
struct RunDiagnostics {
  /// Bumped only on a breaking change (key removed or renamed).
  static constexpr int kSchemaVersion = 1;

  std::string run_id;        ///< 16-hex run fingerprint
  int64_t summaries = 0;     ///< ranked summaries returned

  // Search space.
  int64_t condition_subsets = 0;
  int64_t transform_subsets = 0;
  int64_t labelings = 0;
  int64_t partitions = 0;
  int64_t candidates_evaluated = 0;
  int64_t candidates_deduped = 0;

  // Execution shape.
  int threads_used = 1;
  std::string kernel_used;
  int64_t batched_blocks_staged = 0;
  int64_t batched_fold_accumulators = 0;
  int64_t batch_leaves_per_block_max = 0;

  // Leaf-fit cache.
  int64_t leaf_fits_computed = 0;
  int64_t leaf_fits_reused = 0;
  int64_t leaf_fit_evictions = 0;

  // Sharded execution.
  int shards_used = 0;
  int64_t shard_rows_scanned = 0;
  int64_t shard_blocks_merged = 0;
  int64_t shard_tasks_executed = 0;
  int64_t shard_moment_leaves_swept = 0;
  int64_t shard_moment_leaves_elided = 0;
  int64_t shard_error_probes = 0;
  int64_t shard_score_probes = 0;

  // Row-free scoring.
  int64_t score_partials_candidates = 0;
  int64_t score_yhat_materializations = 0;
  int64_t score_leaf_folds = 0;

  // Remote fleet.
  int64_t remote_tasks_dispatched = 0;
  int64_t remote_task_retries = 0;
  int64_t remote_input_installs = 0;
  std::vector<RemoteWorkerCounters> remote_workers;

  // Wall times (seconds). Stages that did not run report exactly 0.
  double elapsed_seconds = 0.0;
  double clustering_seconds = 0.0;
  double induction_seconds = 0.0;
  double fitting_seconds = 0.0;
  double shard_seconds = 0.0;
  double shard_signal_seconds = 0.0;
  double shard_moments_seconds = 0.0;
  double shard_error_seconds = 0.0;
  double shard_score_seconds = 0.0;

  /// Copies the diagnostic fields out of a finished run's SummaryList.
  static RunDiagnostics FromSummary(const SummaryList& summary);

  /// One JSON object, `schema_version` first.
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace charles

#endif  // CHARLES_OBS_DIAGNOSTICS_H_
