#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "common/json.h"
#include "common/logging.h"

namespace charles {
namespace obs {
namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  CHARLES_CHECK(!bounds_.empty()) << "Histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHARLES_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "Histogram bounds must be strictly ascending";
  }
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, DoubleToBits(BitsToDouble(observed) + value),
      std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow: floor
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      double fraction =
          (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      return lower + fraction * (upper - lower);
    }
  }
  return bounds_.back();
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 100µs .. ~2min, roughly ×2 per step: enough resolution for interactive
  // latencies without making snapshots noisy.
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
          1e-1, 2.5e-1, 5e-1, 1.0,  2.5,    5.0,  10.0, 30.0,   120.0};
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    slot.reset(new Histogram(std::move(bounds)));
  }
  return slot.get();
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& entry : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %lld\n", entry.first.c_str(),
                  static_cast<long long>(entry.second->Value()));
    out += line;
  }
  for (const auto& entry : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld\n", entry.first.c_str(),
                  static_cast<long long>(entry.second->Value()));
    out += line;
  }
  for (const auto& entry : histograms_) {
    const Histogram& h = *entry.second;
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%lld sum=%.6g p50=%.6g p90=%.6g "
                  "p99=%.6g\n",
                  entry.first.c_str(), static_cast<long long>(h.Count()),
                  h.Sum(), h.P50(), h.P90(), h.P99());
    out += line;
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& entry : counters_) {
    w.Key(entry.first).Int(entry.second->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& entry : gauges_) {
    w.Key(entry.first).Int(entry.second->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& entry : histograms_) {
    const Histogram& h = *entry.second;
    w.Key(entry.first).BeginObject();
    w.Key("count").Int(h.Count());
    w.Key("sum").Double(h.Sum());
    w.Key("p50").Double(h.P50());
    w.Key("p90").Double(h.P90());
    w.Key("p99").Double(h.P99());
    w.Key("buckets").BeginArray();
    const std::vector<int64_t> counts = h.BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      w.BeginObject();
      if (i < h.bounds().size()) {
        w.Key("le").Double(h.bounds()[i]);
      } else {
        w.Key("le").String("inf");
      }
      w.Key("count").Int(counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace charles
