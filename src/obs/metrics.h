#ifndef CHARLES_OBS_METRICS_H_
#define CHARLES_OBS_METRICS_H_

/// \file
/// \brief Process-wide named counters, gauges, and fixed-bucket histograms.
///
/// The engine's per-run SummaryList answers "what did this run do"; the
/// MetricsRegistry answers "what is this process doing" — admission and
/// cache traffic from EngineContext, dispatch/retry/health churn from the
/// remote fleet, staging volume from the kernel layer, latency
/// distributions under concurrent load. Instruments are created on first
/// use by name, live for the process lifetime (pointers returned by the
/// registry are stable), and update lock-free with relaxed atomics — cheap
/// enough to leave on unconditionally.
///
/// `MetricsRegistry::Global()` is the process registry every engine
/// subsystem feeds (metric names are catalogued in docs/observability.md).
/// Tests and benches construct their own instances for isolation.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace charles {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Instantaneous level (active runs, cache entries, high-water marks).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is currently lower (high-water use).
  void Max(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with quantile estimation.
///
/// Buckets are defined by ascending upper bounds; an observation lands in
/// the first bucket whose bound is >= the value, or in the implicit
/// overflow bucket past the last bound. Quantile(q) walks the cumulative
/// counts to the bucket containing rank q*count and interpolates linearly
/// inside it (the overflow bucket reports the last bound — a floor, not an
/// estimate). Observation is lock-free: per-bucket relaxed counters plus a
/// CAS-loop for the running sum.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t Count() const;
  double Sum() const;
  /// The q-th quantile, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P99() const { return Quantile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<int64_t> BucketCounts() const;

  /// Log-spaced seconds bounds covering 100µs .. ~2 minutes — the default
  /// for latency histograms.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-updated
};

/// Name-keyed instrument registry. Lookup takes a mutex; the returned
/// pointers are stable for the registry's lifetime, so callers on hot
/// paths look up once and cache the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named counter.
  Counter* counter(const std::string& name);
  /// Finds or creates the named gauge.
  Gauge* gauge(const std::string& name);
  /// Finds or creates the named histogram. `bounds` is used only on first
  /// creation; empty means Histogram::DefaultLatencyBounds().
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Human-readable dump, one instrument per line, sorted by name.
  std::string TextSnapshot() const;
  /// Machine-readable dump: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,p50,p90,p99,buckets:[{le,count}...]}}}.
  std::string ToJson() const;

  /// The process-wide registry fed by the engine.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace charles

#endif  // CHARLES_OBS_METRICS_H_
