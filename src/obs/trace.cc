#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/json.h"
#include "common/logging.h"

namespace charles {
namespace obs {
namespace {

/// The per-thread span stack: innermost open span last. Entries pair the
/// recorder with the span id so stacks stay correct even if two runs with
/// different recorders interleave on one pool thread.
thread_local std::vector<std::pair<TraceRecorder*, uint64_t>> tls_span_stack;

/// The per-thread run id (see RunIdScope).
thread_local uint64_t tls_run_id = 0;

/// Small sequential ordinal per OS thread — Chrome trace display lanes.
uint64_t ThisThreadOrdinal() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

int64_t TraceRecorder::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t TraceRecorder::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

void TraceRecorder::set_trace_id(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = trace_id;
}

uint64_t TraceRecorder::BeginSpan(const char* name, uint64_t parent) {
  const int64_t now = NowNs();
  const uint64_t tid = ThisThreadOrdinal();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent = parent;
  record.name = name;
  record.start_ns = now;
  record.tid = tid;
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void TraceRecorder::EndSpan(uint64_t id) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  CHARLES_CHECK(id >= 1 && id <= spans_.size()) << "EndSpan: unknown span id";
  SpanRecord& record = spans_[id - 1];
  if (record.dur_ns < 0) record.dur_ns = now - record.start_ns;
}

void TraceRecorder::Annotate(uint64_t id, const char* key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  CHARLES_CHECK(id >= 1 && id <= spans_.size()) << "Annotate: unknown span id";
  spans_[id - 1].annotations.emplace_back(key, std::move(value));
}

void TraceRecorder::ImportSpans(const std::vector<SpanRecord>& spans,
                                uint64_t parent_for_roots, int64_t anchor_ns,
                                uint64_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  // Remote ids are 1..n in blob order; remap them onto our sequence. A
  // parent that is neither 0 nor a previously-imported blob id (a malformed
  // blob that survived parsing) degrades to the dispatch span rather than
  // corrupting the trace.
  std::vector<uint64_t> remap(spans.size() + 1, parent_for_roots);
  for (const SpanRecord& span : spans) {
    SpanRecord local = span;
    local.id = spans_.size() + 1;
    local.parent = (span.parent > 0 && span.parent <= spans.size())
                       ? remap[span.parent]
                       : parent_for_roots;
    local.start_ns = anchor_ns + span.start_ns;
    if (local.dur_ns < 0) local.dur_ns = 0;
    local.tid = tid;
    if (span.id <= spans.size()) remap[span.id] = local.id;
    spans_.push_back(std::move(local));
  }
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans;
  uint64_t trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    trace_id = trace_id_;
  }
  const int64_t now = NowNs();
  int64_t origin_ns = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i == 0 || spans[i].start_ns < origin_ns) origin_ns = spans[i].start_ns;
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("otherData").BeginObject();
  w.Key("trace_id").String(FormatRunId(trace_id));
  w.EndObject();
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& span : spans) {
    const int64_t dur_ns = span.dur_ns >= 0 ? span.dur_ns
                                            : now - span.start_ns;
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String("charles");
    w.Key("ph").String("X");
    w.Key("ts").Double(static_cast<double>(span.start_ns - origin_ns) / 1e3);
    w.Key("dur").Double(static_cast<double>(dur_ns) / 1e3);
    w.Key("pid").Int(1);
    w.Key("tid").Uint(span.tid);
    w.Key("args").BeginObject();
    w.Key("span").Uint(span.id);
    w.Key("parent").Uint(span.parent);
    for (const auto& kv : span.annotations) {
      w.Key(kv.first).String(kv.second);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

ThreadTraceContext CurrentTraceContext() {
  ThreadTraceContext context;
  if (!tls_span_stack.empty()) {
    context.recorder = tls_span_stack.back().first;
    context.span_id = tls_span_stack.back().second;
  }
  context.run_id = tls_run_id;
  return context;
}

Span::Span(TraceRecorder* recorder, const char* name) : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  uint64_t parent = 0;
  if (!tls_span_stack.empty() && tls_span_stack.back().first == recorder_) {
    parent = tls_span_stack.back().second;
  }
  id_ = recorder_->BeginSpan(name, parent);
  tls_span_stack.emplace_back(recorder_, id_);
}

Span::Span(TraceRecorder* recorder, const char* name, uint64_t parent)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  id_ = recorder_->BeginSpan(name, parent);
  tls_span_stack.emplace_back(recorder_, id_);
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  CHARLES_CHECK(!tls_span_stack.empty() &&
                tls_span_stack.back().first == recorder_ &&
                tls_span_stack.back().second == id_)
      << "Span destroyed out of stack order";
  tls_span_stack.pop_back();
  recorder_->EndSpan(id_);
}

void Span::Annotate(const char* key, std::string value) {
  if (recorder_ == nullptr) return;
  recorder_->Annotate(id_, key, std::move(value));
}

RunIdScope::RunIdScope(uint64_t run_id) : saved_(tls_run_id) {
  tls_run_id = run_id;
}

RunIdScope::~RunIdScope() { tls_run_id = saved_; }

uint64_t CurrentRunId() { return tls_run_id; }

std::string FormatRunId(uint64_t run_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(run_id));
  return buf;
}

}  // namespace obs
}  // namespace charles
