#ifndef CHARLES_WORKLOAD_BILLIONAIRES_GEN_H_
#define CHARLES_WORKLOAD_BILLIONAIRES_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "table/table.h"
#include "workload/policy.h"

namespace charles {

/// \brief Synthetic stand-in for the Forbes World's Billionaires list the
/// demo offers as an additional dataset.
///
/// Schema: person_id:int64 (key), name:string, industry:string,
/// country:string, age:int64, net_worth:double (billions USD). The
/// year-over-year policy moves net worth by industry — the classic
/// "tech rallied, energy lagged" story that ChARLES should summarize.
struct BillionairesGenOptions {
  int64_t num_rows = 2000;
  uint64_t seed = 1987;
};

Result<Table> GenerateBillionaires(const BillionairesGenOptions& options);

/// \brief The latent market policy on `net_worth`:
///  - Technology: ×1.25,
///  - Finance:    ×1.10 + 0.5,
///  - Energy:     ×0.9,
///  - everyone else: ×1.05.
Policy MakeMarketPolicy();

}  // namespace charles

#endif  // CHARLES_WORKLOAD_BILLIONAIRES_GEN_H_
