#ifndef CHARLES_WORKLOAD_EMPLOYEE_GEN_H_
#define CHARLES_WORKLOAD_EMPLOYEE_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "table/table.h"
#include "workload/policy.h"

namespace charles {

/// \brief Options for the parametric employee-table generator.
///
/// Produces a scaled-up version of the Example-1 world: a key column
/// (emp_id), demographic/categorical descriptors, experience, salary, and a
/// bonus initially pegged at 10% of salary. Decoy attributes are pure noise
/// with no relationship to any policy — they exercise the setup assistant's
/// ability to rank the informative attributes first (experiment E7).
struct EmployeeGenOptions {
  int64_t num_rows = 1000;
  /// Extra uniform-noise numeric columns named decoy_num_<i>.
  int num_decoy_numeric = 0;
  /// Extra random-category columns named decoy_cat_<i> (8 categories each).
  int num_decoy_categorical = 0;
  uint64_t seed = 42;
};

/// Schema: emp_id:int64 (key), gender:string, edu:string (BS/MS/PhD),
/// dept:string, exp:int64, salary:double, bonus:double [, decoys...].
Result<Table> GenerateEmployees(const EmployeeGenOptions& options);

/// The Example-1 policy (R1–R3 on `bonus`) usable on generated tables.
Policy MakeEmployeeBonusPolicy();

/// A k-segment salary policy for partition-count experiments (E9):
/// `segments` equal-population experience bands, band i multiplying salary
/// by (1 + 0.01·(i+1)) and adding 100·(i+1). Requires 2 ≤ segments ≤ 6.
Result<Policy> MakeSegmentedSalaryPolicy(int segments);

}  // namespace charles

#endif  // CHARLES_WORKLOAD_EMPLOYEE_GEN_H_
