#include "workload/montgomery_gen.h"

#include <cmath>

#include "common/random.h"
#include "table/table_builder.h"

namespace charles {

namespace {

struct Department {
  const char* code;
  const char* name;
  double salary_center;
  std::vector<const char*> divisions;
};

const std::vector<Department>& Departments() {
  static const std::vector<Department> kDepartments = {
      {"POL", "Police", 78000, {"Patrol", "Investigations", "Traffic"}},
      {"FRS", "Fire and Rescue", 74000, {"Operations", "EMS", "Prevention"}},
      {"COR", "Correction and Rehabilitation", 64000, {"Detention", "Re-entry"}},
      {"HHS", "Health and Human Services", 62000, {"Public Health", "Children Services"}},
      {"DOT", "Transportation", 60000, {"Transit", "Highway", "Parking"}},
      {"LIB", "Public Libraries", 54000, {"Branches", "Collections"}},
      {"FIN", "Finance", 71000, {"Treasury", "Controller"}},
      {"TEC", "Technology Services", 82000, {"Infrastructure", "Applications"}},
  };
  return kDepartments;
}

}  // namespace

Result<Table> GenerateMontgomery2016(const MontgomeryGenOptions& options) {
  if (options.num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  CHARLES_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({
          Field{"employee_id", TypeKind::kInt64, false},
          Field{"department", TypeKind::kString, true},
          Field{"department_name", TypeKind::kString, true},
          Field{"division", TypeKind::kString, true},
          Field{"gender", TypeKind::kString, true},
          Field{"base_salary", TypeKind::kDouble, true},
          Field{"overtime_pay", TypeKind::kDouble, true},
          Field{"longevity_pay", TypeKind::kDouble, true},
          Field{"grade", TypeKind::kInt64, true},
      }));
  Rng rng(options.seed);
  TableBuilder builder(schema);
  const auto& departments = Departments();
  for (int64_t i = 0; i < options.num_rows; ++i) {
    const Department& dept = departments[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(departments.size()) - 1))];
    std::string division = dept.divisions[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(dept.divisions.size()) - 1))];
    std::string gender = rng.Bernoulli(0.45) ? "F" : "M";
    int64_t grade = rng.UniformInt(10, 35);
    double salary = dept.salary_center + 1800.0 * static_cast<double>(grade - 20) +
                    rng.Normal(0, 6000);
    salary = std::round(salary / 10.0) * 10.0;
    if (salary < 32000) salary = 32000;
    // Overtime skews to public safety; many employees log none.
    double overtime = 0.0;
    bool public_safety = std::string(dept.code) == "POL" ||
                         std::string(dept.code) == "FRS" ||
                         std::string(dept.code) == "COR";
    if (rng.Bernoulli(public_safety ? 0.8 : 0.3)) {
      overtime = std::abs(rng.Normal(public_safety ? 9000 : 2500, 2000));
      overtime = std::round(overtime);
    }
    // Longevity pay kicks in for senior grades.
    double longevity = grade >= 28 ? std::round(0.02 * salary) : 0.0;
    CHARLES_RETURN_NOT_OK(builder.AppendRow(
        {Value(i), Value(dept.code), Value(dept.name), Value(division), Value(gender),
         Value(salary), Value(overtime), Value(longevity), Value(grade)}));
  }
  return builder.Finish();
}

Policy MakeMontgomeryPayPolicy() {
  Policy policy;
  // Public-safety departments: 4% + $750.
  {
    LinearModel model;
    model.feature_names = {"base_salary"};
    model.coefficients = {1.04};
    model.intercept = 750;
    policy.AddRule(
        MakeIn("department", {Value("POL"), Value("FRS"), Value("COR")}),
        LinearTransform::Linear("base_salary", std::move(model)), "M1");
  }
  // Senior grades elsewhere: 3% + $500.
  {
    LinearModel model;
    model.feature_names = {"base_salary"};
    model.coefficients = {1.03};
    model.intercept = 500;
    policy.AddRule(MakeColumnCompare("grade", CompareOp::kGe, Value(25)),
                   LinearTransform::Linear("base_salary", std::move(model)), "M2");
  }
  // Everyone else: a 2% cost-of-living adjustment.
  {
    LinearModel model;
    model.feature_names = {"base_salary"};
    model.coefficients = {1.02};
    model.intercept = 0;
    policy.AddRule(MakeTrue(), LinearTransform::Linear("base_salary", std::move(model)),
                   "M3");
  }
  return policy;
}

Result<Table> GenerateMontgomery2017(const Table& snapshot_2016,
                                     const PolicyApplicationOptions& options) {
  return MakeMontgomeryPayPolicy().Apply(snapshot_2016, options);
}

}  // namespace charles
