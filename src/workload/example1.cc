#include "workload/example1.h"

#include "common/logging.h"
#include "table/table_builder.h"

namespace charles {

namespace {

Result<Schema> Example1Schema() {
  return Schema::Make({
      Field{"name", TypeKind::kString, false},
      Field{"gen", TypeKind::kString, true},
      Field{"edu", TypeKind::kString, true},
      Field{"exp", TypeKind::kInt64, true},
      Field{"salary", TypeKind::kDouble, true},
      Field{"bonus", TypeKind::kDouble, true},
  });
}

struct EmployeeRow {
  const char* name;
  const char* gen;
  const char* edu;
  int64_t exp;
  double salary;
  double bonus;
};

Result<Table> BuildFrom(const EmployeeRow* rows, size_t count) {
  CHARLES_ASSIGN_OR_RETURN(Schema schema, Example1Schema());
  TableBuilder builder(schema);
  for (size_t i = 0; i < count; ++i) {
    const EmployeeRow& r = rows[i];
    CHARLES_RETURN_NOT_OK(builder.AppendRow(
        {Value(r.name), Value(r.gen), Value(r.edu), Value(r.exp), Value(r.salary),
         Value(r.bonus)}));
  }
  return builder.Finish();
}

}  // namespace

Result<Table> MakeExample1Source() {
  static const EmployeeRow kRows2016[] = {
      {"Anne", "F", "PhD", 2, 230000, 23000},
      {"Bob", "M", "PhD", 3, 250000, 25000},
      {"Amber", "F", "MS", 5, 160000, 16000},
      {"Allen", "M", "MS", 1, 130000, 13000},
      {"Cathy", "F", "BS", 2, 110000, 11000},
      {"Tom", "M", "MS", 4, 150000, 15000},
      {"James", "M", "BS", 3, 120000, 12000},
      {"Lucy", "F", "MS", 4, 150000, 15000},
      {"Frank", "M", "PhD", 1, 210000, 21000},
  };
  return BuildFrom(kRows2016, std::size(kRows2016));
}

Result<Table> MakeExample1Target() {
  static const EmployeeRow kRows2017[] = {
      {"Anne", "F", "PhD", 3, 230000, 25150},
      {"Bob", "M", "PhD", 4, 250000, 27250},
      {"Amber", "F", "MS", 6, 160000, 17440},
      {"Allen", "M", "MS", 2, 130000, 13790},
      {"Cathy", "F", "BS", 3, 110000, 11000},
      {"Tom", "M", "MS", 5, 150000, 16400},
      {"James", "M", "BS", 4, 120000, 12000},
      {"Lucy", "F", "MS", 5, 150000, 16400},
      {"Frank", "M", "PhD", 2, 210000, 23050},
  };
  return BuildFrom(kRows2017, std::size(kRows2017));
}

Policy MakeExample1Policy() {
  Policy policy;
  // R1: PhDs get 5% on last year's bonus plus a flat $1000.
  {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {1.05};
    model.intercept = 1000;
    policy.AddRule(MakeColumnCompare("edu", CompareOp::kEq, Value("PhD")),
                   LinearTransform::Linear("bonus", std::move(model)), "R1");
  }
  // R2: MS with at least 3 years of service: 4% plus $800.
  {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {1.04};
    model.intercept = 800;
    policy.AddRule(MakeAnd({MakeColumnCompare("edu", CompareOp::kEq, Value("MS")),
                            MakeColumnCompare("exp", CompareOp::kGe, Value(3))}),
                   LinearTransform::Linear("bonus", std::move(model)), "R2");
  }
  // R3: MS with under 3 years: 3% plus $400.
  {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {1.03};
    model.intercept = 400;
    policy.AddRule(MakeAnd({MakeColumnCompare("edu", CompareOp::kEq, Value("MS")),
                            MakeColumnCompare("exp", CompareOp::kLt, Value(3))}),
                   LinearTransform::Linear("bonus", std::move(model)), "R3");
  }
  return policy;
}

}  // namespace charles
