#ifndef CHARLES_WORKLOAD_MONTGOMERY_GEN_H_
#define CHARLES_WORKLOAD_MONTGOMERY_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "table/table.h"
#include "workload/policy.h"

namespace charles {

/// \brief Synthetic stand-in for the paper's demo dataset: Montgomery
/// County, MD employee salaries, 2016 → 2017.
///
/// The real dataset (data.montgomerycountymd.gov) is not available offline;
/// this generator reproduces its schema — Department, Department Name,
/// Division, Gender, Base Salary, Overtime Pay, Longevity Pay, Grade — plus
/// an employee_id key, with realistic marginals (≈9k active permanent
/// employees, department-skewed salaries, grade-correlated longevity pay).
/// Unlike the real data, the 2016→2017 evolution follows a *known* policy,
/// so recovery quality is measurable.
struct MontgomeryGenOptions {
  int64_t num_rows = 9000;
  uint64_t seed = 2016;
};

/// Schema: employee_id:int64 (key), department:string (3-letter code),
/// department_name:string, division:string, gender:string, base_salary:double,
/// overtime_pay:double, longevity_pay:double, grade:int64.
Result<Table> GenerateMontgomery2016(const MontgomeryGenOptions& options);

/// \brief The latent 2017 pay policy on `base_salary`:
///  - public-safety departments (POL, FRS, COR): 4% raise + $750,
///  - grade ≥ 25 elsewhere: 3% raise + $500,
///  - grade < 25 elsewhere: 2% raise.
Policy MakeMontgomeryPayPolicy();

/// Applies the pay policy (with optional noise knobs) to a 2016 snapshot.
Result<Table> GenerateMontgomery2017(const Table& snapshot_2016,
                                     const PolicyApplicationOptions& options = {});

}  // namespace charles

#endif  // CHARLES_WORKLOAD_MONTGOMERY_GEN_H_
