#include "workload/policy.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace charles {

Policy& Policy::AddRule(ExprPtr condition, LinearTransform transform, std::string label) {
  if (label.empty()) label = "R" + std::to_string(rules_.size() + 1);
  rules_.push_back(Rule{std::move(condition), std::move(transform), std::move(label)});
  return *this;
}

Result<std::vector<RowSet>> Policy::RuleRows(const Table& source) const {
  std::vector<RowSet> out;
  out.reserve(rules_.size());
  std::vector<bool> claimed(static_cast<size_t>(source.num_rows()), false);
  for (const Rule& rule : rules_) {
    CHARLES_ASSIGN_OR_RETURN(RowSet matched, FilterRows(source, *rule.condition));
    std::vector<int64_t> fresh;
    for (int64_t row : matched) {
      if (!claimed[static_cast<size_t>(row)]) {
        claimed[static_cast<size_t>(row)] = true;
        fresh.push_back(row);
      }
    }
    out.emplace_back(std::move(fresh));
  }
  return out;
}

Result<Table> Policy::Apply(const Table& source,
                            const PolicyApplicationOptions& options) const {
  if (rules_.empty()) return Status::InvalidArgument("Policy has no rules");
  const std::string& target_attr = rules_[0].transform.target_attribute();
  for (const Rule& rule : rules_) {
    if (rule.transform.target_attribute() != target_attr) {
      return Status::InvalidArgument("Policy rules disagree on the target attribute");
    }
  }
  CHARLES_ASSIGN_OR_RETURN(int target_col, source.schema().FieldIndex(target_attr));

  Table target = source;  // value copy; cells overwritten below
  Rng rng(options.seed);
  CHARLES_ASSIGN_OR_RETURN(std::vector<RowSet> per_rule, RuleRows(source));
  for (size_t r = 0; r < rules_.size(); ++r) {
    const Rule& rule = rules_[r];
    const RowSet& rows = per_rule[r];
    if (rows.empty()) continue;
    CHARLES_ASSIGN_OR_RETURN(std::vector<double> values,
                             rule.transform.Apply(source, rows));
    for (int64_t i = 0; i < rows.size(); ++i) {
      if (options.unchanged_fraction > 0.0 &&
          rng.Bernoulli(options.unchanged_fraction)) {
        continue;  // exemption: row keeps its old value
      }
      double v = values[static_cast<size_t>(i)];
      if (options.noise_stddev > 0.0) v += rng.Normal(0.0, options.noise_stddev);
      if (options.round_to > 0.0) v = std::round(v / options.round_to) * options.round_to;
      CHARLES_RETURN_NOT_OK(target.SetValue(rows[i], target_col, Value(v)));
    }
  }
  return target;
}

std::string Policy::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += "  " + rule.label + ": " + rule.condition->ToString() + "  →  " +
           rule.transform.ToString() + "\n";
  }
  return out;
}

std::string RecoveryReport::ToString() const {
  return "precision=" + FormatDouble(rule_precision, 3) +
         " recall=" + FormatDouble(rule_recall, 3) + " f1=" + FormatDouble(f1, 3) +
         " coef_err=" + FormatDouble(mean_coefficient_error, 4) +
         " matched=" + std::to_string(matched_rules);
}

namespace {

double Jaccard(const RowSet& a, const RowSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  int64_t intersection = a.Intersect(b).size();
  int64_t union_size = a.size() + b.size() - intersection;
  return union_size > 0
             ? static_cast<double>(intersection) / static_cast<double>(union_size)
             : 0.0;
}

/// Relative coefficient distance between two transforms over the union of
/// their feature sets; no-change pairs score 0, mixed pairs 1.
double CoefficientError(const LinearTransform& a, const LinearTransform& b) {
  if (a.is_no_change() && b.is_no_change()) return 0.0;
  if (a.is_no_change() != b.is_no_change()) {
    // A no-change rule can legitimately be mined as "×1.0 + 0"; measure the
    // linear side against identity when its feature is the target itself.
    const LinearTransform& linear = a.is_no_change() ? b : a;
    const LinearModel& m = linear.model();
    double err = std::abs(m.intercept);
    double scale = 1.0;
    for (size_t i = 0; i < m.coefficients.size(); ++i) {
      double expected =
          m.feature_names[i] == linear.target_attribute() ? 1.0 : 0.0;
      err += std::abs(m.coefficients[i] - expected);
      scale += std::abs(expected);
    }
    return err / scale;
  }
  const LinearModel& ma = a.model();
  const LinearModel& mb = b.model();
  // Align coefficients by feature name.
  double err = 0.0;
  double scale = 0.0;
  for (size_t i = 0; i < ma.feature_names.size(); ++i) {
    double ca = ma.coefficients[i];
    double cb = 0.0;
    for (size_t j = 0; j < mb.feature_names.size(); ++j) {
      if (mb.feature_names[j] == ma.feature_names[i]) {
        cb = mb.coefficients[j];
        break;
      }
    }
    err += std::abs(ca - cb);
    scale += std::abs(ca);
  }
  for (size_t j = 0; j < mb.feature_names.size(); ++j) {
    bool seen = std::find(ma.feature_names.begin(), ma.feature_names.end(),
                          mb.feature_names[j]) != ma.feature_names.end();
    if (!seen) {
      err += std::abs(mb.coefficients[j]);
    }
  }
  // Intercepts compared on the magnitude scale of the data they move.
  double intercept_scale = std::max({std::abs(ma.intercept), std::abs(mb.intercept), 1.0});
  err += std::abs(ma.intercept - mb.intercept) / intercept_scale;
  scale += 1.0;
  return err / std::max(scale, 1e-12);
}

}  // namespace

Result<RecoveryReport> EvaluateRecovery(const Policy& truth, const ChangeSummary& summary,
                                        const Table& source,
                                        const RecoveryOptions& options) {
  CHARLES_ASSIGN_OR_RETURN(std::vector<RowSet> rule_rows, truth.RuleRows(source));
  // Implicit "everything else unchanged" rule: rows no planted rule touches.
  RowSet covered;
  for (const RowSet& rows : rule_rows) covered = covered.Union(rows);
  RowSet untouched = covered.Complement(source.num_rows());

  const auto& cts = summary.cts();
  std::vector<bool> ct_used(cts.size(), false);
  RecoveryReport report;
  double total_coef_err = 0.0;

  auto match_one = [&](const RowSet& rows, const LinearTransform& expected) -> bool {
    double best_jaccard = 0.0;
    int best_ct = -1;
    for (size_t i = 0; i < cts.size(); ++i) {
      if (ct_used[i]) continue;
      double j = Jaccard(rows, cts[i].rows);
      if (j > best_jaccard) {
        best_jaccard = j;
        best_ct = static_cast<int>(i);
      }
    }
    if (best_ct < 0 || best_jaccard < options.min_partition_jaccard) return false;
    const ConditionalTransform& ct = cts[static_cast<size_t>(best_ct)];
    // Functional check: the transforms must agree on the rows both govern.
    RowSet shared = rows.Intersect(ct.rows);
    if (shared.empty()) return false;
    Result<std::vector<double>> want = expected.Apply(source, shared);
    Result<std::vector<double>> got = ct.transform.Apply(source, shared);
    if (!want.ok() || !got.ok()) return false;
    double err = 0.0;
    double scale = 0.0;
    for (size_t i = 0; i < want->size(); ++i) {
      err += std::abs((*want)[i] - (*got)[i]);
      scale += std::abs((*want)[i]);
    }
    err /= static_cast<double>(want->size());
    scale = std::max(scale / static_cast<double>(want->size()), 1e-12);
    if (err / scale > options.transform_tolerance) return false;
    ct_used[static_cast<size_t>(best_ct)] = true;
    total_coef_err += CoefficientError(expected, ct.transform);
    ++report.matched_rules;
    return true;
  };

  int effective_rules = 0;
  for (size_t r = 0; r < truth.rules().size(); ++r) {
    if (rule_rows[r].empty()) continue;  // vacuous rule: nothing to recover
    ++effective_rules;
    match_one(rule_rows[r], truth.rules()[r].transform);
  }
  if (!untouched.empty()) {
    ++effective_rules;
    match_one(untouched, LinearTransform::NoChange(summary.target_attribute()));
  }

  int used = static_cast<int>(std::count(ct_used.begin(), ct_used.end(), true));
  report.rule_recall = effective_rules > 0
                           ? static_cast<double>(report.matched_rules) /
                                 static_cast<double>(effective_rules)
                           : 1.0;
  report.rule_precision =
      !cts.empty() ? static_cast<double>(used) / static_cast<double>(cts.size()) : 0.0;
  report.f1 = (report.rule_precision + report.rule_recall > 0)
                  ? 2.0 * report.rule_precision * report.rule_recall /
                        (report.rule_precision + report.rule_recall)
                  : 0.0;
  report.mean_coefficient_error =
      report.matched_rules > 0
          ? total_coef_err / static_cast<double>(report.matched_rules)
          : 0.0;
  return report;
}

}  // namespace charles
