#include "workload/billionaires_gen.h"

#include <cmath>

#include "common/random.h"
#include "table/table_builder.h"

namespace charles {

Result<Table> GenerateBillionaires(const BillionairesGenOptions& options) {
  if (options.num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  CHARLES_ASSIGN_OR_RETURN(Schema schema,
                           Schema::Make({
                               Field{"person_id", TypeKind::kInt64, false},
                               Field{"name", TypeKind::kString, true},
                               Field{"industry", TypeKind::kString, true},
                               Field{"country", TypeKind::kString, true},
                               Field{"age", TypeKind::kInt64, true},
                               Field{"net_worth", TypeKind::kDouble, true},
                           }));
  static const std::vector<std::string> kIndustries = {
      "Technology", "Finance", "Energy", "Retail", "Manufacturing", "Healthcare"};
  static const std::vector<std::string> kCountries = {
      "United States", "China", "Germany", "India", "France", "Brazil", "Japan"};
  Rng rng(options.seed);
  TableBuilder builder(schema);
  for (int64_t i = 0; i < options.num_rows; ++i) {
    std::string industry = rng.Choice(kIndustries);
    std::string country = rng.Choice(kCountries);
    int64_t age = rng.UniformInt(28, 95);
    // Pareto-ish wealth: most near $1B, a long tail of mega-fortunes.
    double net_worth = 1.0 / std::pow(rng.Uniform(0.005, 1.0), 0.7);
    net_worth = std::round(net_worth * 10.0) / 10.0;  // Forbes reports 0.1B steps
    CHARLES_RETURN_NOT_OK(builder.AppendRow(
        {Value(i), Value("Person " + std::to_string(i)), Value(industry),
         Value(country), Value(age), Value(net_worth)}));
  }
  return builder.Finish();
}

Policy MakeMarketPolicy() {
  Policy policy;
  {
    LinearModel model;
    model.feature_names = {"net_worth"};
    model.coefficients = {1.25};
    model.intercept = 0;
    policy.AddRule(MakeColumnCompare("industry", CompareOp::kEq, Value("Technology")),
                   LinearTransform::Linear("net_worth", std::move(model)), "B1");
  }
  {
    LinearModel model;
    model.feature_names = {"net_worth"};
    model.coefficients = {1.1};
    model.intercept = 0.5;
    policy.AddRule(MakeColumnCompare("industry", CompareOp::kEq, Value("Finance")),
                   LinearTransform::Linear("net_worth", std::move(model)), "B2");
  }
  {
    LinearModel model;
    model.feature_names = {"net_worth"};
    model.coefficients = {0.9};
    model.intercept = 0;
    policy.AddRule(MakeColumnCompare("industry", CompareOp::kEq, Value("Energy")),
                   LinearTransform::Linear("net_worth", std::move(model)), "B3");
  }
  {
    LinearModel model;
    model.feature_names = {"net_worth"};
    model.coefficients = {1.05};
    model.intercept = 0;
    policy.AddRule(MakeTrue(), LinearTransform::Linear("net_worth", std::move(model)),
                   "B4");
  }
  return policy;
}

}  // namespace charles
