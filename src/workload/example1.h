#ifndef CHARLES_WORKLOAD_EXAMPLE1_H_
#define CHARLES_WORKLOAD_EXAMPLE1_H_

#include "common/result.h"
#include "table/table.h"
#include "workload/policy.h"

namespace charles {

/// \brief The paper's Figure 1 toy data, verbatim.
///
/// Nine employees with (name, gen, edu, exp, salary, bonus); the 2016
/// snapshot pays a flat 10% bonus, the 2017 snapshot applies the latent
/// policy of Example 1 (R1–R3) and increments everyone's experience.

/// Figure 1a — the 2016 snapshot.
Result<Table> MakeExample1Source();

/// Figure 1b — the 2017 snapshot.
Result<Table> MakeExample1Target();

/// The ground-truth policy {R1, R2, R3} of Example 1 as a Policy over the
/// 2016 snapshot (targets `bonus`; BS employees fall through unchanged).
Policy MakeExample1Policy();

}  // namespace charles

#endif  // CHARLES_WORKLOAD_EXAMPLE1_H_
