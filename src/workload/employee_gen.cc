#include "workload/employee_gen.h"

#include <cmath>

#include "common/random.h"
#include "table/table_builder.h"

namespace charles {

Result<Table> GenerateEmployees(const EmployeeGenOptions& options) {
  if (options.num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  std::vector<Field> fields = {
      Field{"emp_id", TypeKind::kInt64, false},
      Field{"gender", TypeKind::kString, true},
      Field{"edu", TypeKind::kString, true},
      Field{"dept", TypeKind::kString, true},
      Field{"exp", TypeKind::kInt64, true},
      Field{"salary", TypeKind::kDouble, true},
      Field{"bonus", TypeKind::kDouble, true},
  };
  for (int i = 0; i < options.num_decoy_numeric; ++i) {
    fields.push_back(Field{"decoy_num_" + std::to_string(i), TypeKind::kDouble, true});
  }
  for (int i = 0; i < options.num_decoy_categorical; ++i) {
    fields.push_back(Field{"decoy_cat_" + std::to_string(i), TypeKind::kString, true});
  }
  CHARLES_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));

  static const std::vector<std::string> kGenders = {"F", "M"};
  static const std::vector<std::string> kEdu = {"BS", "MS", "PhD"};
  static const std::vector<std::string> kDepts = {"Engineering", "Sales", "HR",
                                                  "Finance", "Operations"};
  Rng rng(options.seed);
  TableBuilder builder(schema);
  for (int64_t i = 0; i < options.num_rows; ++i) {
    std::string gender = rng.Choice(kGenders);
    // Education mix: 40% BS, 40% MS, 20% PhD.
    double edu_draw = rng.Uniform();
    std::string edu = edu_draw < 0.4 ? "BS" : (edu_draw < 0.8 ? "MS" : "PhD");
    std::string dept = rng.Choice(kDepts);
    int64_t exp = rng.UniformInt(0, 30);
    double base = edu == "BS" ? 70000 : (edu == "MS" ? 100000 : 140000);
    double salary = base + 2500.0 * static_cast<double>(exp) + rng.Normal(0, 8000);
    salary = std::round(salary / 100.0) * 100.0;  // payroll rounds to $100
    if (salary < 40000) salary = 40000;
    double bonus = std::round(salary * 0.10);

    std::vector<Value> row = {Value(i),      Value(gender), Value(edu), Value(dept),
                              Value(exp),    Value(salary), Value(bonus)};
    for (int d = 0; d < options.num_decoy_numeric; ++d) {
      row.push_back(Value(rng.Uniform(0.0, 1000.0)));
    }
    for (int d = 0; d < options.num_decoy_categorical; ++d) {
      row.push_back(Value("cat" + std::to_string(rng.UniformInt(0, 7))));
    }
    CHARLES_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

Policy MakeEmployeeBonusPolicy() {
  Policy policy;
  {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {1.05};
    model.intercept = 1000;
    policy.AddRule(MakeColumnCompare("edu", CompareOp::kEq, Value("PhD")),
                   LinearTransform::Linear("bonus", std::move(model)), "R1");
  }
  {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {1.04};
    model.intercept = 800;
    policy.AddRule(MakeAnd({MakeColumnCompare("edu", CompareOp::kEq, Value("MS")),
                            MakeColumnCompare("exp", CompareOp::kGe, Value(3))}),
                   LinearTransform::Linear("bonus", std::move(model)), "R2");
  }
  {
    LinearModel model;
    model.feature_names = {"bonus"};
    model.coefficients = {1.03};
    model.intercept = 400;
    policy.AddRule(MakeAnd({MakeColumnCompare("edu", CompareOp::kEq, Value("MS")),
                            MakeColumnCompare("exp", CompareOp::kLt, Value(3))}),
                   LinearTransform::Linear("bonus", std::move(model)), "R3");
  }
  return policy;
}

Result<Policy> MakeSegmentedSalaryPolicy(int segments) {
  if (segments < 2 || segments > 6) {
    return Status::OutOfRange("segments must be in [2, 6]");
  }
  // Experience runs 0..30; cut it into `segments` equal bands. Band i gets
  // salary × (1 + 0.01·(i+1)) + 100·(i+1).
  Policy policy;
  double band = 31.0 / static_cast<double>(segments);
  for (int i = 0; i < segments; ++i) {
    int64_t lo = static_cast<int64_t>(std::floor(band * i));
    int64_t hi = static_cast<int64_t>(std::floor(band * (i + 1)));
    ExprPtr condition;
    if (i == segments - 1) {
      condition = MakeColumnCompare("exp", CompareOp::kGe, Value(lo));
    } else if (i == 0) {
      condition = MakeColumnCompare("exp", CompareOp::kLt, Value(hi));
    } else {
      condition = MakeAnd({MakeColumnCompare("exp", CompareOp::kGe, Value(lo)),
                           MakeColumnCompare("exp", CompareOp::kLt, Value(hi))});
    }
    LinearModel model;
    model.feature_names = {"salary"};
    model.coefficients = {1.0 + 0.01 * static_cast<double>(i + 1)};
    model.intercept = 100.0 * static_cast<double>(i + 1);
    policy.AddRule(std::move(condition),
                   LinearTransform::Linear("salary", std::move(model)),
                   "S" + std::to_string(i + 1));
  }
  return policy;
}

}  // namespace charles
