#ifndef CHARLES_WORKLOAD_POLICY_H_
#define CHARLES_WORKLOAD_POLICY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/summary.h"
#include "core/transform.h"
#include "expr/expr.h"
#include "table/table.h"

namespace charles {

/// \brief Options controlling how a ground-truth policy is materialized into
/// a target snapshot.
struct PolicyApplicationOptions {
  /// Gaussian noise added to every transformed value.
  double noise_stddev = 0.0;
  /// Fraction of policy-covered rows randomly exempted (left unchanged),
  /// simulating exceptions the latent policy did not reach.
  double unchanged_fraction = 0.0;
  /// Round transformed values to this granularity (0.01 = cents, 1 = whole
  /// units, 0 = no rounding).
  double round_to = 0.0;
  uint64_t seed = 7;
};

/// \brief A latent update policy: an ordered list of conditional
/// transformations with first-match-wins semantics.
///
/// The workload generators use Policy to synthesize target snapshots with a
/// *known* ground truth, which is what lets the benchmarks measure recovery
/// quality (the real datasets' true policies are unknowable).
class Policy {
 public:
  struct Rule {
    ExprPtr condition;
    LinearTransform transform;
    std::string label;  ///< e.g. "R1" for reporting.
  };

  Policy& AddRule(ExprPtr condition, LinearTransform transform, std::string label = "");

  const std::vector<Rule>& rules() const { return rules_; }
  int num_rules() const { return static_cast<int>(rules_.size()); }

  /// \brief Applies the policy to a source snapshot, producing the target.
  ///
  /// Rows matched by no rule keep their old value. Noise/exemptions/rounding
  /// per `options`.
  Result<Table> Apply(const Table& source, const PolicyApplicationOptions& options = {}) const;

  /// Rows each rule governs under first-match-wins, on the given table.
  Result<std::vector<RowSet>> RuleRows(const Table& source) const;

  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
};

/// \brief Recovery quality of a mined summary against the planted policy.
struct RecoveryReport {
  /// Fraction of summary CTs that match a planted rule (partition Jaccard ≥
  /// the threshold and functionally equivalent transformation).
  double rule_precision = 0.0;
  /// Fraction of planted rules matched by some summary CT.
  double rule_recall = 0.0;
  double f1 = 0.0;
  /// Mean relative coefficient distance over matched (rule, CT) pairs —
  /// informational; matching itself is functional, so a constant rule mined
  /// for a single-row partition matches despite different coefficients.
  double mean_coefficient_error = 0.0;
  int matched_rules = 0;

  std::string ToString() const;
};

/// \brief Options for EvaluateRecovery.
struct RecoveryOptions {
  /// Minimum Jaccard overlap between a CT's partition and a rule's rows.
  double min_partition_jaccard = 0.9;
  /// A (rule, CT) pair matches when their transformations' predictions agree
  /// on the shared rows within this relative mean absolute error.
  double transform_tolerance = 0.01;
};

/// \brief Greedy partition-overlap matching between planted rules and mined
/// CTs.
///
/// A rule matches a CT when (1) their row sets overlap with Jaccard ≥
/// min_partition_jaccard and (2) the two transformations are *functionally*
/// equivalent on the shared rows (relative prediction MAE ≤
/// transform_tolerance). Functional matching is deliberate: on small or
/// collinear partitions many coefficient vectors describe the same update,
/// and any of them is a correct recovery.
Result<RecoveryReport> EvaluateRecovery(const Policy& truth, const ChangeSummary& summary,
                                        const Table& source,
                                        const RecoveryOptions& options = {});

}  // namespace charles

#endif  // CHARLES_WORKLOAD_POLICY_H_
