#include "expr/expr.h"

#include <algorithm>
#include <charconv>

#include "common/logging.h"

namespace charles {

std::string_view CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

std::string QuoteLiteral(const Value& v) {
  if (v.kind() == TypeKind::kDouble) {
    // Shortest representation that parses back to the same double: literals
    // must survive print -> parse exactly (Value::ToString's display rounding
    // would corrupt round-trips).
    char buffer[32];
    auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v.dbl());
    CHARLES_CHECK(ec == std::errc());
    return std::string(buffer, end);
  }
  if (v.kind() != TypeKind::kString) return v.ToString();
  std::string out = "'";
  for (char c : v.str()) {
    if (c == '\'') out += '\'';  // escape by doubling
    out += c;
  }
  out += "'";
  return out;
}

class TrueExpr final : public Expr {
 public:
  TrueExpr() : Expr(Kind::kTrue) {}
  Result<Value> Evaluate(const Table&, int64_t) const override { return Value(true); }
  std::string ToString() const override { return "TRUE"; }
  int NumDescriptors() const override { return 0; }
  bool Equals(const Expr& other) const override { return other.kind() == Kind::kTrue; }
  Status ValidateAgainst(const Schema&) const override { return Status::OK(); }
  void CollectColumns(std::vector<std::string>*) const override {}
  void CollectLiterals(std::vector<Value>*) const override {}
};

class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(std::string name) : Expr(Kind::kColumnRef), name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  Result<Value> Evaluate(const Table& table, int64_t row) const override {
    return table.GetValueByName(row, name_);
  }
  std::string ToString() const override { return name_; }
  int NumDescriptors() const override { return 0; }
  bool Equals(const Expr& other) const override {
    return other.kind() == Kind::kColumnRef &&
           static_cast<const ColumnRefExpr&>(other).name_ == name_;
  }
  Status ValidateAgainst(const Schema& schema) const override {
    return schema.FieldIndex(name_).status();
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }
  void CollectLiterals(std::vector<Value>*) const override {}

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : Expr(Kind::kLiteral), value_(std::move(value)) {}
  const Value& value() const { return value_; }

  Result<Value> Evaluate(const Table&, int64_t) const override { return value_; }
  std::string ToString() const override { return QuoteLiteral(value_); }
  int NumDescriptors() const override { return 0; }
  bool Equals(const Expr& other) const override {
    if (other.kind() != Kind::kLiteral) return false;
    const auto& rhs = static_cast<const LiteralExpr&>(other);
    if (value_.is_null() || rhs.value_.is_null()) {
      return value_.is_null() && rhs.value_.is_null();
    }
    return value_ == rhs.value_;
  }
  Status ValidateAgainst(const Schema&) const override { return Status::OK(); }
  void CollectColumns(std::vector<std::string>*) const override {}
  void CollectLiterals(std::vector<Value>* out) const override { out->push_back(value_); }

 private:
  Value value_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kComparison), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Evaluate(const Table& table, int64_t row) const override {
    CHARLES_ASSIGN_OR_RETURN(Value left, lhs_->Evaluate(table, row));
    CHARLES_ASSIGN_OR_RETURN(Value right, rhs_->Evaluate(table, row));
    if (left.is_null() || right.is_null()) return Value(false);
    // Ordered comparisons across incompatible types are a type error;
    // equality across them is simply false.
    bool comparable = (IsNumeric(left.kind()) && IsNumeric(right.kind())) ||
                      left.kind() == right.kind();
    if (!comparable) {
      if (op_ == CompareOp::kEq) return Value(false);
      if (op_ == CompareOp::kNe) return Value(true);
      return Status::TypeError("cannot order " + std::string(TypeKindName(left.kind())) +
                               " against " + std::string(TypeKindName(right.kind())));
    }
    int cmp = left.Compare(right);
    switch (op_) {
      case CompareOp::kEq:
        return Value(cmp == 0);
      case CompareOp::kNe:
        return Value(cmp != 0);
      case CompareOp::kLt:
        return Value(cmp < 0);
      case CompareOp::kLe:
        return Value(cmp <= 0);
      case CompareOp::kGt:
        return Value(cmp > 0);
      case CompareOp::kGe:
        return Value(cmp >= 0);
    }
    return Status::Internal("bad CompareOp");
  }

  std::string ToString() const override {
    return lhs_->ToString() + " " + std::string(CompareOpSymbol(op_)) + " " +
           rhs_->ToString();
  }
  int NumDescriptors() const override { return 1; }
  bool Equals(const Expr& other) const override {
    if (other.kind() != Kind::kComparison) return false;
    const auto& rhs = static_cast<const ComparisonExpr&>(other);
    return op_ == rhs.op_ && lhs_->Equals(*rhs.lhs_) && rhs_->Equals(*rhs.rhs_);
  }
  Status ValidateAgainst(const Schema& schema) const override {
    CHARLES_RETURN_NOT_OK(lhs_->ValidateAgainst(schema));
    return rhs_->ValidateAgainst(schema);
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  void CollectLiterals(std::vector<Value>* out) const override {
    lhs_->CollectLiterals(out);
    rhs_->CollectLiterals(out);
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NaryLogicalExpr final : public Expr {
 public:
  NaryLogicalExpr(Kind kind, std::vector<ExprPtr> operands)
      : Expr(kind), operands_(std::move(operands)) {
    CHARLES_CHECK(kind == Kind::kAnd || kind == Kind::kOr);
    CHARLES_CHECK_GE(operands_.size(), 2u);
  }
  const std::vector<ExprPtr>& operands() const { return operands_; }

  Result<Value> Evaluate(const Table& table, int64_t row) const override {
    bool is_and = kind() == Kind::kAnd;
    for (const ExprPtr& operand : operands_) {
      CHARLES_ASSIGN_OR_RETURN(Value v, operand->Evaluate(table, row));
      if (v.kind() != TypeKind::kBool) {
        return Status::TypeError("logical operand is not boolean: " + operand->ToString());
      }
      if (is_and && !v.boolean()) return Value(false);
      if (!is_and && v.boolean()) return Value(true);
    }
    return Value(is_and);
  }

  std::string ToString() const override {
    std::string joiner = kind() == Kind::kAnd ? " AND " : " OR ";
    std::string out;
    for (size_t i = 0; i < operands_.size(); ++i) {
      if (i > 0) out += joiner;
      const Expr& op = *operands_[i];
      // Parenthesize nested logical nodes of the other polarity for clarity.
      bool needs_parens = op.kind() == Kind::kAnd || op.kind() == Kind::kOr;
      if (needs_parens) {
        out += "(" + op.ToString() + ")";
      } else {
        out += op.ToString();
      }
    }
    return out;
  }
  int NumDescriptors() const override {
    int total = 0;
    for (const ExprPtr& op : operands_) total += op->NumDescriptors();
    return total;
  }
  bool Equals(const Expr& other) const override {
    if (other.kind() != kind()) return false;
    const auto& rhs = static_cast<const NaryLogicalExpr&>(other);
    if (operands_.size() != rhs.operands_.size()) return false;
    for (size_t i = 0; i < operands_.size(); ++i) {
      if (!operands_[i]->Equals(*rhs.operands_[i])) return false;
    }
    return true;
  }
  Status ValidateAgainst(const Schema& schema) const override {
    for (const ExprPtr& op : operands_) CHARLES_RETURN_NOT_OK(op->ValidateAgainst(schema));
    return Status::OK();
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    for (const ExprPtr& op : operands_) op->CollectColumns(out);
  }
  void CollectLiterals(std::vector<Value>* out) const override {
    for (const ExprPtr& op : operands_) op->CollectLiterals(out);
  }

 private:
  std::vector<ExprPtr> operands_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : Expr(Kind::kNot), operand_(std::move(operand)) {}

  Result<Value> Evaluate(const Table& table, int64_t row) const override {
    CHARLES_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(table, row));
    if (v.kind() != TypeKind::kBool) {
      return Status::TypeError("NOT operand is not boolean: " + operand_->ToString());
    }
    return Value(!v.boolean());
  }
  std::string ToString() const override {
    bool needs_parens = operand_->kind() == Kind::kAnd || operand_->kind() == Kind::kOr ||
                        operand_->kind() == Kind::kComparison ||
                        operand_->kind() == Kind::kIn;
    if (needs_parens) return "NOT (" + operand_->ToString() + ")";
    return "NOT " + operand_->ToString();
  }
  int NumDescriptors() const override { return operand_->NumDescriptors(); }
  bool Equals(const Expr& other) const override {
    return other.kind() == Kind::kNot &&
           operand_->Equals(*static_cast<const NotExpr&>(other).operand_);
  }
  Status ValidateAgainst(const Schema& schema) const override {
    return operand_->ValidateAgainst(schema);
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    operand_->CollectColumns(out);
  }
  void CollectLiterals(std::vector<Value>* out) const override {
    operand_->CollectLiterals(out);
  }

 private:
  ExprPtr operand_;
};

class InExpr final : public Expr {
 public:
  InExpr(std::string column, std::vector<Value> values)
      : Expr(Kind::kIn), column_(std::move(column)), values_(std::move(values)) {}

  Result<Value> Evaluate(const Table& table, int64_t row) const override {
    CHARLES_ASSIGN_OR_RETURN(Value cell, table.GetValueByName(row, column_));
    if (cell.is_null()) return Value(false);
    for (const Value& v : values_) {
      if (!v.is_null() && cell == v) return Value(true);
    }
    return Value(false);
  }
  std::string ToString() const override {
    std::string out = column_ + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += QuoteLiteral(values_[i]);
    }
    out += ")";
    return out;
  }
  int NumDescriptors() const override { return 1; }
  bool Equals(const Expr& other) const override {
    if (other.kind() != Kind::kIn) return false;
    const auto& rhs = static_cast<const InExpr&>(other);
    return column_ == rhs.column_ && values_ == rhs.values_;
  }
  Status ValidateAgainst(const Schema& schema) const override {
    return schema.FieldIndex(column_).status();
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(column_);
  }
  void CollectLiterals(std::vector<Value>* out) const override {
    for (const Value& v : values_) out->push_back(v);
  }

 private:
  std::string column_;
  std::vector<Value> values_;
};

}  // namespace

ExprPtr MakeTrue() { return std::make_shared<TrueExpr>(); }

ExprPtr MakeColumnRef(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}

ExprPtr MakeLiteral(Value value) { return std::make_shared<LiteralExpr>(std::move(value)); }

ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  CHARLES_CHECK(lhs != nullptr && rhs != nullptr);
  return std::make_shared<ComparisonExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr MakeColumnCompare(std::string column, CompareOp op, Value value) {
  return MakeComparison(op, MakeColumnRef(std::move(column)),
                        MakeLiteral(std::move(value)));
}

namespace {
ExprPtr MakeNaryLogical(Expr::Kind kind, std::vector<ExprPtr> operands) {
  // Flatten same-kind children so (a AND b) AND c prints as a AND b AND c.
  std::vector<ExprPtr> flat;
  for (ExprPtr& op : operands) {
    CHARLES_CHECK(op != nullptr);
    if (op->kind() == kind) {
      const auto& nested = static_cast<const NaryLogicalExpr&>(*op);
      flat.insert(flat.end(), nested.operands().begin(), nested.operands().end());
    } else if (op->kind() == Expr::Kind::kTrue && kind == Expr::Kind::kAnd) {
      continue;  // TRUE is the AND identity
    } else {
      flat.push_back(std::move(op));
    }
  }
  if (flat.empty()) return MakeTrue();
  if (flat.size() == 1) return flat[0];
  return std::make_shared<NaryLogicalExpr>(kind, std::move(flat));
}
}  // namespace

ExprPtr MakeAnd(std::vector<ExprPtr> operands) {
  return MakeNaryLogical(Expr::Kind::kAnd, std::move(operands));
}

ExprPtr MakeOr(std::vector<ExprPtr> operands) {
  return MakeNaryLogical(Expr::Kind::kOr, std::move(operands));
}

ExprPtr MakeNot(ExprPtr operand) {
  CHARLES_CHECK(operand != nullptr);
  return std::make_shared<NotExpr>(std::move(operand));
}

ExprPtr MakeIn(std::string column, std::vector<Value> values) {
  return std::make_shared<InExpr>(std::move(column), std::move(values));
}

Result<std::vector<bool>> EvaluateMask(const Table& table, const Expr& predicate) {
  CHARLES_RETURN_NOT_OK(predicate.ValidateAgainst(table.schema()));
  std::vector<bool> mask(static_cast<size_t>(table.num_rows()), false);
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    CHARLES_ASSIGN_OR_RETURN(Value v, predicate.Evaluate(table, row));
    if (v.kind() != TypeKind::kBool) {
      return Status::TypeError("predicate does not evaluate to bool: " +
                               predicate.ToString());
    }
    mask[static_cast<size_t>(row)] = v.boolean();
  }
  return mask;
}

Result<RowSet> FilterRows(const Table& table, const Expr& predicate) {
  CHARLES_ASSIGN_OR_RETURN(std::vector<bool> mask, EvaluateMask(table, predicate));
  return RowSet::FromMask(mask);
}

}  // namespace charles
