#ifndef CHARLES_EXPR_PARSER_H_
#define CHARLES_EXPR_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "expr/expr.h"

namespace charles {

/// \brief Parses the condition mini-language into an Expr.
///
/// Grammar (case-insensitive keywords):
///
///   expr        := or_expr
///   or_expr     := and_expr ( OR and_expr )*
///   and_expr    := unary ( AND unary )*
///   unary       := NOT unary | primary
///   primary     := '(' expr ')' | TRUE | predicate
///   predicate   := operand cmp operand | identifier IN '(' literal-list ')'
///   operand     := identifier | literal
///   cmp         := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
///   literal     := number | 'single-quoted string' | true | false | NULL
///   identifier  := [A-Za-z_][A-Za-z0-9_.]* or `backquoted name`
///
/// The printer (Expr::ToString) emits this grammar, so
/// ParseExpr(e->ToString())->Equals(*e) holds for every constructible tree.
Result<ExprPtr> ParseExpr(std::string_view input);

}  // namespace charles

#endif  // CHARLES_EXPR_PARSER_H_
