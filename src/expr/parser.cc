#include "expr/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace charles {

namespace {

enum class TokenType {
  kIdentifier,
  kNumber,
  kString,
  kOperator,  // = == != <> < <= > >=
  kLParen,
  kRParen,
  kComma,
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      size_t start = pos_;
      char c = input_[pos_];
      if (c == '(') {
        tokens.push_back({TokenType::kLParen, "(", start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenType::kRParen, ")", start});
        ++pos_;
      } else if (c == ',') {
        tokens.push_back({TokenType::kComma, ",", start});
        ++pos_;
      } else if (c == '\'') {
        CHARLES_ASSIGN_OR_RETURN(Token t, LexString());
        tokens.push_back(std::move(t));
      } else if (c == '`') {
        CHARLES_ASSIGN_OR_RETURN(Token t, LexQuotedIdentifier());
        tokens.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 ((c == '-' || c == '+') && pos_ + 1 < input_.size() &&
                  (std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])) ||
                   input_[pos_ + 1] == '.'))) {
        tokens.push_back(LexNumber());
      } else if (IsOperatorChar(c)) {
        CHARLES_ASSIGN_OR_RETURN(Token t, LexOperator());
        tokens.push_back(std::move(t));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else {
        return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                       "' at position " + std::to_string(pos_));
      }
    }
    tokens.push_back({TokenType::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  static bool IsOperatorChar(char c) {
    return c == '=' || c == '!' || c == '<' || c == '>';
  }

  Result<Token> LexString() {
    size_t start = pos_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\'') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
          text += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{TokenType::kString, std::move(text), start};
      }
      text += c;
      ++pos_;
    }
    return Status::InvalidArgument("unterminated string literal at position " +
                                   std::to_string(start));
  }

  Result<Token> LexQuotedIdentifier() {
    size_t start = pos_;
    ++pos_;  // opening backquote
    std::string text;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '`') {
        ++pos_;
        return Token{TokenType::kIdentifier, std::move(text), start};
      }
      text += c;
      ++pos_;
    }
    return Status::InvalidArgument("unterminated quoted identifier at position " +
                                   std::to_string(start));
  }

  Token LexNumber() {
    size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E' ||
            ((input_[pos_] == '-' || input_[pos_] == '+') &&
             (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return Token{TokenType::kNumber, std::string(input_.substr(start, pos_ - start)),
                 start};
  }

  Result<Token> LexOperator() {
    size_t start = pos_;
    char c = input_[pos_];
    char next = pos_ + 1 < input_.size() ? input_[pos_ + 1] : '\0';
    std::string op;
    if (c == '=' && next == '=') {
      op = "==";
    } else if (c == '!' && next == '=') {
      op = "!=";
    } else if (c == '<' && next == '>') {
      op = "<>";
    } else if (c == '<' && next == '=') {
      op = "<=";
    } else if (c == '>' && next == '=') {
      op = ">=";
    } else if (c == '=' || c == '<' || c == '>') {
      op = std::string(1, c);
    } else {
      return Status::InvalidArgument("unknown operator at position " +
                                     std::to_string(start));
    }
    pos_ += op.size();
    return Token{TokenType::kOperator, std::move(op), start};
  }

  Token LexIdentifier() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '.')) {
      ++pos_;
    }
    return Token{TokenType::kIdentifier, std::string(input_.substr(start, pos_ - start)),
                 start};
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    CHARLES_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Current().type != TokenType::kEnd) {
      return Status::InvalidArgument("trailing input at position " +
                                     std::to_string(Current().position));
    }
    return expr;
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  bool CurrentIsKeyword(std::string_view keyword) const {
    return Current().type == TokenType::kIdentifier &&
           EqualsIgnoreCase(Current().text, keyword);
  }

  Result<ExprPtr> ParseOr() {
    CHARLES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    std::vector<ExprPtr> operands{lhs};
    while (CurrentIsKeyword("OR")) {
      Advance();
      CHARLES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      operands.push_back(std::move(rhs));
    }
    if (operands.size() == 1) return operands[0];
    return MakeOr(std::move(operands));
  }

  Result<ExprPtr> ParseAnd() {
    CHARLES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    std::vector<ExprPtr> operands{lhs};
    while (CurrentIsKeyword("AND")) {
      Advance();
      CHARLES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      operands.push_back(std::move(rhs));
    }
    if (operands.size() == 1) return operands[0];
    return MakeAnd(std::move(operands));
  }

  Result<ExprPtr> ParseUnary() {
    if (CurrentIsKeyword("NOT")) {
      Advance();
      CHARLES_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeNot(std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Current().type == TokenType::kLParen) {
      Advance();
      CHARLES_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      if (Current().type != TokenType::kRParen) {
        return Status::InvalidArgument("expected ')' at position " +
                                       std::to_string(Current().position));
      }
      Advance();
      return inner;
    }
    if (CurrentIsKeyword("TRUE") && PeekIsEndOfPredicate()) {
      Advance();
      return MakeTrue();
    }
    return ParsePredicate();
  }

  /// TRUE is both a literal and the universal condition; treat a bare TRUE
  /// not followed by a comparison operator as the universal condition.
  bool PeekIsEndOfPredicate() const {
    const Token& next = tokens_[index_ + 1];
    return next.type != TokenType::kOperator;
  }

  Result<ExprPtr> ParsePredicate() {
    CHARLES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
    if (CurrentIsKeyword("IN")) {
      if (lhs->kind() != Expr::Kind::kColumnRef) {
        return Status::InvalidArgument("IN requires a column on the left");
      }
      Advance();
      if (Current().type != TokenType::kLParen) {
        return Status::InvalidArgument("expected '(' after IN");
      }
      Advance();
      std::vector<Value> values;
      while (true) {
        CHARLES_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        values.push_back(std::move(v));
        if (Current().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Current().type != TokenType::kRParen) {
        return Status::InvalidArgument("expected ')' to close IN list");
      }
      Advance();
      std::string column = lhs->ToString();
      return MakeIn(std::move(column), std::move(values));
    }
    if (Current().type != TokenType::kOperator) {
      return Status::InvalidArgument("expected comparison operator at position " +
                                     std::to_string(Current().position));
    }
    std::string op_text = Current().text;
    Advance();
    CHARLES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
    CompareOp op;
    if (op_text == "=" || op_text == "==") {
      op = CompareOp::kEq;
    } else if (op_text == "!=" || op_text == "<>") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator '" + op_text + "'");
    }
    return MakeComparison(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseOperand() {
    const Token& token = Current();
    switch (token.type) {
      case TokenType::kIdentifier: {
        if (EqualsIgnoreCase(token.text, "true")) {
          Advance();
          return MakeLiteral(Value(true));
        }
        if (EqualsIgnoreCase(token.text, "false")) {
          Advance();
          return MakeLiteral(Value(false));
        }
        if (EqualsIgnoreCase(token.text, "null")) {
          Advance();
          return MakeLiteral(Value::Null());
        }
        std::string name = token.text;
        Advance();
        return MakeColumnRef(std::move(name));
      }
      case TokenType::kNumber:
      case TokenType::kString: {
        CHARLES_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        return MakeLiteral(std::move(v));
      }
      default:
        return Status::InvalidArgument("expected operand at position " +
                                       std::to_string(token.position));
    }
  }

  Result<Value> ParseLiteralValue() {
    const Token& token = Current();
    if (token.type == TokenType::kString) {
      std::string text = token.text;
      Advance();
      return Value(std::move(text));
    }
    if (token.type == TokenType::kNumber) {
      std::string text = token.text;
      Advance();
      if (auto i = ParseInt64(text)) return Value(*i);
      if (auto d = ParseDouble(text)) return Value(*d);
      return Status::InvalidArgument("bad numeric literal '" + text + "'");
    }
    if (token.type == TokenType::kIdentifier) {
      if (EqualsIgnoreCase(token.text, "true")) {
        Advance();
        return Value(true);
      }
      if (EqualsIgnoreCase(token.text, "false")) {
        Advance();
        return Value(false);
      }
      if (EqualsIgnoreCase(token.text, "null")) {
        Advance();
        return Value::Null();
      }
    }
    return Status::InvalidArgument("expected literal at position " +
                                   std::to_string(token.position));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpr(std::string_view input) {
  Lexer lexer(input);
  CHARLES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace charles
