#ifndef CHARLES_EXPR_EXPR_H_
#define CHARLES_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/row_set.h"
#include "table/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace charles {

class Expr;
/// Expressions are immutable and freely shared between conditional
/// transformations, summaries, and model trees.
using ExprPtr = std::shared_ptr<const Expr>;

/// Comparison operators of the condition language.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpSymbol(CompareOp op);

/// \brief A node of the condition AST.
///
/// Conditions are the "why" half of a conditional transformation
/// (`edu = 'PhD' AND exp < 3`). The AST supports column references, literals,
/// the six comparisons, AND/OR/NOT, IN-lists, and the constant TRUE (the
/// everything-partition used by single-CT summaries).
///
/// NULL semantics are deliberately two-valued: any comparison touching a NULL
/// evaluates to false, and NOT flips that result. This matches what an
/// analyst expects from partition predicates (a NULL cell belongs to no
/// value-based partition) and keeps partitions complementary.
class Expr {
 public:
  enum class Kind { kTrue, kColumnRef, kLiteral, kComparison, kAnd, kOr, kNot, kIn };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Evaluates the node on one row. Predicates yield bool Values; operands
  /// yield their cell/literal value.
  virtual Result<Value> Evaluate(const Table& table, int64_t row) const = 0;

  /// Renders the canonical textual form, parseable by ParseExpr.
  virtual std::string ToString() const = 0;

  /// Number of descriptors (comparison/IN leaves) — the paper's condition
  /// complexity measure.
  virtual int NumDescriptors() const = 0;

  /// Structural equality (same tree, same values).
  virtual bool Equals(const Expr& other) const = 0;

  /// Verifies every referenced column exists in the schema.
  virtual Status ValidateAgainst(const Schema& schema) const = 0;

  /// Appends referenced column names (with repetition) to `out`.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  /// Appends every literal value appearing in the tree (comparison operands,
  /// IN-list members) to `out`. Drives the normality score of conditions.
  virtual void CollectLiterals(std::vector<Value>* out) const = 0;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// \name Factory functions (the only way to build nodes).
/// @{
ExprPtr MakeTrue();
ExprPtr MakeColumnRef(std::string name);
ExprPtr MakeLiteral(Value value);
ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs);
/// Convenience: column <op> literal.
ExprPtr MakeColumnCompare(std::string column, CompareOp op, Value value);
/// Conjunction; flattens nested ANDs, returns TRUE for empty input, the sole
/// operand for singleton input.
ExprPtr MakeAnd(std::vector<ExprPtr> operands);
/// Disjunction with the symmetric conveniences of MakeAnd (empty -> TRUE).
ExprPtr MakeOr(std::vector<ExprPtr> operands);
ExprPtr MakeNot(ExprPtr operand);
/// Membership test against a literal list.
ExprPtr MakeIn(std::string column, std::vector<Value> values);
/// @}

/// Evaluates a predicate over every row, returning the satisfying RowSet.
/// TypeError if the expression does not yield booleans.
Result<RowSet> FilterRows(const Table& table, const Expr& predicate);

/// Evaluates a predicate over every row into a bool mask.
Result<std::vector<bool>> EvaluateMask(const Table& table, const Expr& predicate);

}  // namespace charles

#endif  // CHARLES_EXPR_EXPR_H_
