#include "table/table.h"

#include <gtest/gtest.h>

#include "table/key_index.h"
#include "table/table_builder.h"

namespace charles {
namespace {

Schema PeopleSchema() {
  return Schema::Make({
                          Field{"id", TypeKind::kInt64, false},
                          Field{"name", TypeKind::kString, true},
                          Field{"score", TypeKind::kDouble, true},
                      })
      .ValueOrDie();
}

Table PeopleTable() {
  TableBuilder builder(PeopleSchema());
  CHARLES_CHECK_OK(builder.AppendRow({Value(1), Value("ann"), Value(10.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value(2), Value("bob"), Value(20.0)}));
  CHARLES_CHECK_OK(builder.AppendRow({Value(3), Value("cat"), Value(30.0)}));
  return builder.Finish().ValueOrDie();
}

TEST(TableBuilderTest, BuildsTable) {
  Table t = PeopleTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.GetValue(1, 1), Value("bob"));
}

TEST(TableBuilderTest, RejectsWrongArity) {
  TableBuilder builder(PeopleSchema());
  EXPECT_TRUE(builder.AppendRow({Value(1)}).IsInvalidArgument());
  EXPECT_EQ(builder.num_rows(), 0);
}

TEST(TableBuilderTest, RejectsTypeMismatchWithoutPartialWrite) {
  TableBuilder builder(PeopleSchema());
  EXPECT_TRUE(builder.AppendRow({Value("x"), Value("y"), Value(1.0)}).IsTypeError());
  // The failed row must not have been partially appended.
  ASSERT_TRUE(builder.AppendRow({Value(1), Value("ok"), Value(1.0)}).ok());
  Table t = builder.Finish().ValueOrDie();
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableBuilderTest, RejectsNullInNotNullColumn) {
  TableBuilder builder(PeopleSchema());
  EXPECT_TRUE(
      builder.AppendRow({Value::Null(), Value("x"), Value(1.0)}).IsInvalidArgument());
}

TEST(TableBuilderTest, IntWidensToDouble) {
  TableBuilder builder(PeopleSchema());
  ASSERT_TRUE(builder.AppendRow({Value(1), Value("x"), Value(42)}).ok());
  Table t = builder.Finish().ValueOrDie();
  EXPECT_EQ(t.GetValue(0, 2), Value(42.0));
}

TEST(TableTest, MakeValidatesColumnTypes) {
  std::vector<Column> cols;
  cols.emplace_back(TypeKind::kString);  // wrong: schema says int64
  cols.emplace_back(TypeKind::kString);
  cols.emplace_back(TypeKind::kDouble);
  EXPECT_TRUE(Table::Make(PeopleSchema(), std::move(cols)).status().IsTypeError());
}

TEST(TableTest, MakeValidatesColumnCount) {
  EXPECT_TRUE(Table::Make(PeopleSchema(), {}).status().IsInvalidArgument());
}

TEST(TableTest, GetValueByName) {
  Table t = PeopleTable();
  EXPECT_EQ(*t.GetValueByName(0, "score"), Value(10.0));
  EXPECT_TRUE(t.GetValueByName(0, "missing").status().IsNotFound());
  EXPECT_TRUE(t.GetValueByName(99, "score").status().IsOutOfRange());
}

TEST(TableTest, SetValueTypeChecked) {
  Table t = PeopleTable();
  ASSERT_TRUE(t.SetValue(0, 2, Value(99.0)).ok());
  EXPECT_EQ(t.GetValue(0, 2), Value(99.0));
  EXPECT_TRUE(t.SetValue(0, 2, Value("bad")).IsTypeError());
  EXPECT_TRUE(t.SetValue(0, 9, Value(1.0)).IsOutOfRange());
}

TEST(TableTest, TakeSelectsRows) {
  Table t = PeopleTable();
  Table taken = t.Take(RowSet({0, 2})).ValueOrDie();
  EXPECT_EQ(taken.num_rows(), 2);
  EXPECT_EQ(taken.GetValue(1, 1), Value("cat"));
  EXPECT_TRUE(t.Take(RowSet({5})).status().IsOutOfRange());
}

TEST(TableTest, SelectColumnsReorders) {
  Table t = PeopleTable();
  Table projected = t.SelectColumns({2, 0}).ValueOrDie();
  EXPECT_EQ(projected.num_columns(), 2);
  EXPECT_EQ(projected.schema().field(0).name, "score");
  EXPECT_EQ(projected.GetValue(0, 1), Value(1));
  EXPECT_TRUE(t.SelectColumns({7}).status().IsOutOfRange());
}

TEST(TableTest, ColumnAsDoubles) {
  Table t = PeopleTable();
  EXPECT_EQ(*t.ColumnAsDoubles("score"), (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_TRUE(t.ColumnAsDoubles("name").status().IsTypeError());
}

TEST(TableTest, EqualsDeepComparison) {
  EXPECT_TRUE(PeopleTable().Equals(PeopleTable()));
  Table other = PeopleTable();
  ASSERT_TRUE(other.SetValue(0, 2, Value(11.0)).ok());
  EXPECT_FALSE(PeopleTable().Equals(other));
}

TEST(TableTest, GetRowMaterializes) {
  std::vector<Value> row = PeopleTable().GetRow(1);
  EXPECT_EQ(row, (std::vector<Value>{Value(2), Value("bob"), Value(20.0)}));
}

TEST(TableTest, ToStringContainsHeaderAndData) {
  std::string text = PeopleTable().ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("bob"), std::string::npos);
}

TEST(KeyIndexTest, BuildAndLookup) {
  Table t = PeopleTable();
  KeyIndex index = KeyIndex::Build(t, {"id"}).ValueOrDie();
  EXPECT_EQ(index.size(), 3);
  EXPECT_EQ(*index.Lookup(RowKey{{Value(2)}}), 1);
  EXPECT_TRUE(index.Lookup(RowKey{{Value(99)}}).status().IsNotFound());
}

TEST(KeyIndexTest, CompositeKeys) {
  Table t = PeopleTable();
  KeyIndex index = KeyIndex::Build(t, {"id", "name"}).ValueOrDie();
  EXPECT_EQ(*index.Lookup(RowKey{{Value(3), Value("cat")}}), 2);
  EXPECT_TRUE(index.Lookup(RowKey{{Value(3), Value("dog")}}).status().IsNotFound());
}

TEST(KeyIndexTest, DuplicateKeysRejected) {
  TableBuilder builder(PeopleSchema());
  ASSERT_TRUE(builder.AppendRow({Value(1), Value("a"), Value(1.0)}).ok());
  ASSERT_TRUE(builder.AppendRow({Value(1), Value("b"), Value(2.0)}).ok());
  Table t = builder.Finish().ValueOrDie();
  EXPECT_TRUE(KeyIndex::Build(t, {"id"}).status().IsAlreadyExists());
}

TEST(KeyIndexTest, NullKeysRejected) {
  TableBuilder builder(PeopleSchema());
  ASSERT_TRUE(builder.AppendRow({Value(1), Value::Null(), Value(1.0)}).ok());
  Table t = builder.Finish().ValueOrDie();
  EXPECT_TRUE(KeyIndex::Build(t, {"name"}).status().IsInvalidArgument());
}

TEST(KeyIndexTest, MissingKeyColumnRejected) {
  EXPECT_TRUE(KeyIndex::Build(PeopleTable(), {"nope"}).status().IsNotFound());
  EXPECT_TRUE(KeyIndex::Build(PeopleTable(), {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace charles
