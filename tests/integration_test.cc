/// \file
/// End-to-end property sweeps: plant a policy, synthesize the target
/// snapshot, run the full pipeline, and check that the planted semantics are
/// recovered — across dataset sizes, seeds, policy shapes, and data domains.

#include <gtest/gtest.h>

#include "core/charles.h"
#include "workload/billionaires_gen.h"
#include "workload/employee_gen.h"
#include "workload/example1.h"
#include "workload/montgomery_gen.h"

namespace charles {
namespace {

/// Parameters of one planted-recovery scenario.
struct Scenario {
  const char* name;
  int64_t rows;
  uint64_t seed;
  int segments;  // 0 = the Example-1 bonus policy, else a segmented policy
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string(info.param.name) + "_" + std::to_string(info.param.rows) + "r_s" +
         std::to_string(info.param.seed);
}

class PlantedPolicyRecovery : public ::testing::TestWithParam<Scenario> {};

TEST_P(PlantedPolicyRecovery, TopSummaryRecoversPlantedRules) {
  const Scenario& scenario = GetParam();
  EmployeeGenOptions gen;
  gen.num_rows = scenario.rows;
  gen.seed = scenario.seed;
  Table source = GenerateEmployees(gen).ValueOrDie();

  Policy policy;
  std::string target_attr;
  if (scenario.segments == 0) {
    policy = MakeEmployeeBonusPolicy();
    target_attr = "bonus";
  } else {
    policy = MakeSegmentedSalaryPolicy(scenario.segments).ValueOrDie();
    target_attr = "salary";
  }
  Table target = policy.Apply(source).ValueOrDie();

  CharlesOptions options;
  options.target_attribute = target_attr;
  options.key_columns = {"emp_id"};
  if (scenario.segments > 3) options.tree_max_depth = 5;  // deep bands need depth
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());
  const ChangeSummary& top = result.summaries[0];

  // The planted policy is exactly representable: the winner must be exact.
  EXPECT_GT(top.scores().accuracy, 0.999) << top.ToString();

  RecoveryOptions recovery_options;
  recovery_options.min_partition_jaccard = 0.95;
  RecoveryReport recovery =
      EvaluateRecovery(policy, top, source, recovery_options).ValueOrDie();
  EXPECT_DOUBLE_EQ(recovery.rule_recall, 1.0) << top.ToString();
  EXPECT_DOUBLE_EQ(recovery.rule_precision, 1.0) << top.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedPolicyRecovery,
    ::testing::Values(Scenario{"bonus", 300, 1, 0}, Scenario{"bonus", 1000, 2, 0},
                      Scenario{"bonus", 3000, 3, 0}, Scenario{"bonus", 1000, 99, 0},
                      Scenario{"bands", 1000, 4, 2}, Scenario{"bands", 1000, 5, 3},
                      Scenario{"bands", 1500, 6, 4}, Scenario{"bands", 2000, 7, 5}),
    ScenarioName);

/// Property: the pipeline is invariant to row order — shuffling both
/// snapshots identically must produce the same top summary semantics.
TEST(PipelineInvariance, RowOrderDoesNotMatter) {
  EmployeeGenOptions gen;
  gen.num_rows = 500;
  Table source = GenerateEmployees(gen).ValueOrDie();
  Table target = MakeEmployeeBonusPolicy().Apply(source).ValueOrDie();

  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  SummaryList base = SummarizeChanges(source, target, options).ValueOrDie();

  // Reverse the source rows (and shuffle the target differently — alignment
  // is by key, not position).
  std::vector<int64_t> reversed;
  for (int64_t i = source.num_rows() - 1; i >= 0; --i) reversed.push_back(i);
  // RowSet sorts indices, so build the reversed table row by row instead.
  TableBuilder source_builder(source.schema());
  for (int64_t i = source.num_rows() - 1; i >= 0; --i) {
    CHARLES_CHECK_OK(source_builder.AppendRow(source.GetRow(i)));
  }
  Table reversed_source = source_builder.Finish().ValueOrDie();
  SummaryList shuffled = SummarizeChanges(reversed_source, target, options).ValueOrDie();

  EXPECT_DOUBLE_EQ(base.summaries[0].scores().accuracy,
                   shuffled.summaries[0].scores().accuracy);
  EXPECT_EQ(base.summaries[0].num_cts(), shuffled.summaries[0].num_cts());
  // Condition/transform text must agree (partitions are key-aligned).
  EXPECT_EQ(base.summaries[0].Signature(), shuffled.summaries[0].Signature());
}

/// Property: applying the mined summary via its SQL rendering semantics
/// (first-match CASE) reproduces exactly what Apply() computes.
TEST(PipelineInvariance, SummaryApplyIsIdempotentOnExactPolicies) {
  Table source = MakeExample1Source().ValueOrDie();
  Table target = MakeExample1Target().ValueOrDie();
  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"name"};
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  const ChangeSummary& top = result.summaries[0];
  std::vector<double> once = top.Apply(source).ValueOrDie();
  std::vector<double> y_new = *target.ColumnAsDoubles("bonus");
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once[i], y_new[i], 1e-6);
  }
}

/// Property: every summary the engine returns satisfies structural
/// invariants — disjoint partitions covering all rows, coverage bookkeeping
/// consistent, scores in [0, 1].
class SummaryInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SummaryInvariants, HoldForEveryReturnedSummary) {
  EmployeeGenOptions gen;
  gen.num_rows = 400;
  gen.seed = GetParam();
  gen.num_decoy_numeric = 2;
  Table source = GenerateEmployees(gen).ValueOrDie();
  PolicyApplicationOptions apply;
  apply.noise_stddev = 25.0;
  apply.seed = GetParam();
  Table target = MakeEmployeeBonusPolicy().Apply(source, apply).ValueOrDie();

  CharlesOptions options;
  options.target_attribute = "bonus";
  options.key_columns = {"emp_id"};
  options.top_n = 50;
  SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
  ASSERT_FALSE(result.summaries.empty());

  for (const ChangeSummary& summary : result.summaries) {
    const ScoreBreakdown& scores = summary.scores();
    EXPECT_GE(scores.accuracy, 0.0);
    EXPECT_LE(scores.accuracy, 1.0);
    EXPECT_GE(scores.interpretability, 0.0);
    EXPECT_LE(scores.interpretability, 1.0);
    EXPECT_NEAR(scores.score,
                options.alpha * scores.accuracy +
                    (1 - options.alpha) * scores.interpretability,
                1e-12);

    RowSet all_rows;
    int64_t total = 0;
    for (const ConditionalTransform& ct : summary.cts()) {
      EXPECT_FALSE(ct.rows.empty());
      EXPECT_NEAR(ct.coverage, ct.rows.Coverage(source.num_rows()), 1e-12);
      // Conditions faithfully describe their partitions.
      RowSet filtered = FilterRows(source, *ct.condition).ValueOrDie();
      EXPECT_EQ(filtered, ct.rows) << ct.condition->ToString();
      all_rows = all_rows.Union(ct.rows);
      total += ct.rows.size();
    }
    EXPECT_EQ(all_rows, RowSet::All(source.num_rows()));  // cover
    EXPECT_EQ(total, source.num_rows());                  // disjoint
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryInvariants, ::testing::Values(11, 22, 33, 44));

/// Cross-domain smoke: every bundled generator round-trips through the whole
/// pipeline with an exact-recovery result.
TEST(CrossDomain, AllGeneratorsRecoverTheirPolicies) {
  {
    MontgomeryGenOptions gen;
    gen.num_rows = 800;
    Table source = GenerateMontgomery2016(gen).ValueOrDie();
    Table target = GenerateMontgomery2017(source).ValueOrDie();
    CharlesOptions options;
    options.target_attribute = "base_salary";
    options.key_columns = {"employee_id"};
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    EXPECT_GT(result.summaries[0].scores().accuracy, 0.999);
  }
  {
    BillionairesGenOptions gen;
    gen.num_rows = 600;
    Table source = GenerateBillionaires(gen).ValueOrDie();
    Table target = MakeMarketPolicy().Apply(source).ValueOrDie();
    CharlesOptions options;
    options.target_attribute = "net_worth";
    options.key_columns = {"person_id"};
    SummaryList result = SummarizeChanges(source, target, options).ValueOrDie();
    EXPECT_GT(result.summaries[0].scores().accuracy, 0.99);
  }
}

}  // namespace
}  // namespace charles
