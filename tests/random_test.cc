#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace charles {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Uniform() != b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ChoiceReturnsMember) {
  Rng rng(9);
  std::vector<std::string> items = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& pick = rng.Choice(items);
    EXPECT_TRUE(pick == "a" || pick == "b" || pick == "c");
  }
}

}  // namespace
}  // namespace charles
